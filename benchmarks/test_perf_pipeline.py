"""Perf benchmark for the pipeline's batched RWA rounds.

A scheduling round of 64 concurrent orders on the 32-PoP Waxman
backbone, planned serially (one ``plan()`` + channel claim per order,
the pre-pipeline controller's behavior) versus in one ``plan_batch()``
call.  The acceptance bar is >= 2x orders/sec for the batched round;
the equivalence assertion proves the speedup is not bought with
different answers.  ``benchmarks/pipeline_report.py`` emits the same
measurement as ``BENCH_pipeline.json``.
"""

from benchmarks.harness import print_rows
from benchmarks.pipeline_report import collect_measurements


def test_perf_pipeline_batched_round(benchmark):
    results = benchmark.pedantic(
        lambda: collect_measurements(), rounds=1, iterations=1
    )

    print_rows(
        "Pipeline: serial vs batched round planning (64 orders, 32 PoPs)",
        [
            ["path", "orders/sec"],
            ["serial", f"{results['serial_orders_per_sec']:.0f}"],
            ["batched", f"{results['batch_orders_per_sec']:.0f}"],
            ["speedup", f"{results['speedup']:.2f}x"],
        ],
    )
    benchmark.extra_info.update(
        {
            "speedup": results["speedup"],
            "plans_identical": results["plans_identical"],
        }
    )

    # The batch must answer exactly like the serial path...
    assert results["plans_identical"], results
    assert results["planned"] > 0
    # ...and clear the 2x throughput bar at 64 concurrent orders.
    assert results["speedup"] >= 2.0, results
