"""Fig. 1: the carrier's *current* services and network layers.

Fig. 1 is an architecture diagram: W-DCS over SONET over DWDM over
fiber, with each service category mapped to a layer and BoD available
only at the SONET layer (via virtually concatenated STS-1s), capped well
below a wavelength.  This benchmark builds that stack executably and
verifies every mapping the figure depicts.
"""

from benchmarks.harness import print_rows
from repro.legacy import SonetRing, WidebandDcs, provision_epl, sts1_count_for_rate
from repro.legacy.evc import STS1_PAYLOAD_BPS
from repro.legacy.sonet import PROTECTION_SWITCH_TIME_S
from repro.optical import FiberPlant, WavelengthGrid
from repro.topo.backbone import build_backbone_graph
from repro.units import DS1_RATE, format_rate, gbps, mbps


def build_current_stack():
    """Assemble the Fig. 1 layer stack on the backbone topology."""
    graph = build_backbone_graph(with_data_centers=False)
    # Fiber + DWDM layer (static in the current world).
    plant = FiberPlant(graph, WavelengthGrid(80))
    # SONET layer: an OC-192 ring over four eastern PoPs.
    ring = SonetRing("east-ring", ["NYC", "DCA", "ATL", "CHI"], line_sts=192)
    # W-DCS layer: DS1 grooming above SONET.
    wdcs = WidebandDcs("wdcs-nyc", ds1_capacity=672)
    return graph, plant, ring, wdcs


def exercise_services(plant, ring, wdcs):
    """Provision one service per Fig. 1 category; returns the mapping."""
    services = {}
    # nxDS1 private line via W-DCS.
    ds1 = wdcs.connect("customer-1", "customer-2", ds1_count=4)
    services["nxDS1 private line"] = ("W-DCS layer", ds1.rate_bps)
    # Ethernet private line via VCAT on the SONET layer.
    epl = provision_epl(ring, "epl-1", "NYC", "ATL", gbps(1))
    services["Ethernet private line (1 GbE)"] = (
        "SONET layer (VCAT)",
        epl.vcat_members * STS1_PAYLOAD_BPS,
    )
    # Circuit BoD today: sub-622M VCAT groups from a dedicated pipe.
    bod_members = sts1_count_for_rate(mbps(622))
    services["circuit BoD (today's max)"] = (
        "SONET layer (VCAT)",
        bod_members * STS1_PAYLOAD_BPS,
    )
    # Static wavelength private line directly on DWDM.
    plant.dwdm_link("NYC", "CHI").occupy(0, "static-wave-1")
    services["wavelength private line (static)"] = (
        "DWDM layer",
        gbps(10),
    )
    return services


def test_fig1_current_layers(benchmark):
    def run():
        graph, plant, ring, wdcs = build_current_stack()
        services = exercise_services(plant, ring, wdcs)
        return graph, plant, ring, wdcs, services

    graph, plant, ring, wdcs, services = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [["service", "layer", "transport rate"]]
    for name, (layer, rate) in services.items():
        rows.append([name, layer, format_rate(rate)])
    print_rows("Fig. 1: current services -> network layers", rows)

    # The stack exists bottom-up: fiber -> DWDM -> SONET -> W-DCS.
    assert len(graph.links) > 0
    assert plant.grid.size >= 40  # "40 to 100 wavelengths"
    assert ring.line_sts == 192  # OC-192 SONET line rate
    assert wdcs.ds1_free < wdcs.ds1_capacity
    # Service-to-layer mapping matches the figure.
    assert services["nxDS1 private line"][0] == "W-DCS layer"
    assert services["nxDS1 private line"][1] == 4 * DS1_RATE
    assert services["Ethernet private line (1 GbE)"][0].startswith("SONET")
    # Today's BoD tops out below a wavelength, at the SONET layer only.
    bod_rate = services["circuit BoD (today's max)"][1]
    assert bod_rate < gbps(1)
    # SONET protection is sub-second; wavelengths have none (manual).
    assert PROTECTION_SWITCH_TIME_S < 1.0
    # 1 GbE over VCAT really is the textbook STS-1-21v.
    assert sts1_count_for_rate(gbps(1)) == 21


def test_fig1_sonet_protection_vs_static_wavelength(benchmark):
    """The figure's implicit contrast: SONET circuits self-heal, static
    DWDM wavelengths do not."""

    def run():
        _, plant, ring, _ = build_current_stack()
        circuit = ring.provision("NYC", "ATL", sts=21)
        switched = ring.fail_span(circuit.spans[0])
        plant.dwdm_link("NYC", "CHI").occupy(0, "static-wave-1")
        affected = plant.cut_link("NYC", "CHI")
        return switched, affected

    switched, affected = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(switched) == 1 and switched[0].on_protection
    # The wavelength's owner is simply down; nothing switches for it.
    assert affected == {"static-wave-1"}
