"""Perf benchmark for the sharded continental controller.

A constant 512-PoP topology planned as one monolithic 512-node shard
versus four 128-node region shards (plus the express shard), each run
process-parallel through the sweep engine.  The acceptance bar is
>= 2x orders/sec for the 4-shard deployment; the determinism assertion
proves both job counts of every config produce byte-identical
aggregates.  ``benchmarks/shard_report.py`` emits the full measurement
(including the 16-shard point and latency percentiles) as
``BENCH_shard.json``.
"""

from benchmarks.harness import print_rows
from benchmarks.shard_report import collect_measurements


def test_perf_shard_planning(benchmark):
    results = benchmark.pedantic(
        lambda: collect_measurements(
            total_orders=64, configs=((1, 512), (4, 128))
        ),
        rounds=1,
        iterations=1,
    )

    mono, sharded = results
    speedup = (
        sharded["process_parallel_orders_per_sec"]
        / mono["process_parallel_orders_per_sec"]
    )
    print_rows(
        "Shard: monolithic 512-PoP vs 4x128 process-parallel planning",
        [
            ["config", "orders/sec (parallel)", "p95 latency (ms)"],
            [
                "1 x 512",
                f"{mono['process_parallel_orders_per_sec']:.1f}",
                f"{mono['plan_latency_p95_ms']:.2f}",
            ],
            [
                "4 x 128",
                f"{sharded['process_parallel_orders_per_sec']:.1f}",
                f"{sharded['plan_latency_p95_ms']:.2f}",
            ],
            ["speedup", f"{speedup:.2f}x", ""],
        ],
    )
    benchmark.extra_info.update(
        {
            "speedup": speedup,
            "deterministic": mono["deterministic"]
            and sharded["deterministic"],
        }
    )

    # Same aggregate regardless of worker processes...
    assert mono["deterministic"], mono
    assert sharded["deterministic"], sharded
    assert mono["planned"] > 0 and sharded["planned"] > 0
    # ...and the 4-shard deployment clears the 2x throughput bar.
    assert speedup >= 2.0, results
