"""Perf benchmark for the sharded continental controller.

A constant 512-PoP topology planned as one monolithic 512-node shard
versus four 128-node region shards (plus the express shard), each run
process-parallel through the sweep engine — with per-trial rebuilds
(the historical mode) and on the persistent
:class:`repro.shard.workers.ShardWorkerPool`.  The acceptance bars:
>= 2x orders/sec for the rebuild 4-shard deployment over the rebuild
monolith, and pooled throughput >= single-process at 4 shards (the
regression guard for the rebuild-overhead inversion the pool fixes).
The determinism assertions prove every mode of every config produces
identical plans.  ``benchmarks/shard_report.py`` emits the full
measurement (including the 16-shard point and latency percentiles) as
``BENCH_shard.json``.
"""

from benchmarks.harness import print_rows
from benchmarks.shard_report import collect_measurements


def test_perf_shard_planning(benchmark):
    results = benchmark.pedantic(
        lambda: collect_measurements(
            total_orders=64, configs=((1, 512), (4, 128))
        ),
        rounds=1,
        iterations=1,
    )

    mono, sharded = results
    speedup = (
        sharded["process_parallel_orders_per_sec"]
        / mono["process_parallel_orders_per_sec"]
    )
    print_rows(
        "Shard: monolithic 512-PoP vs 4x128 process-parallel planning",
        [
            [
                "config",
                "orders/sec (rebuild)",
                "orders/sec (pooled)",
                "p95 latency (ms)",
            ],
            [
                "1 x 512",
                f"{mono['process_parallel_orders_per_sec']:.1f}",
                f"{mono['pooled_orders_per_sec']:.1f}",
                f"{mono['plan_latency_p95_ms']:.2f}",
            ],
            [
                "4 x 128",
                f"{sharded['process_parallel_orders_per_sec']:.1f}",
                f"{sharded['pooled_orders_per_sec']:.1f}",
                f"{sharded['plan_latency_p95_ms']:.2f}",
            ],
            ["speedup", f"{speedup:.2f}x", "", ""],
        ],
    )
    benchmark.extra_info.update(
        {
            "speedup": speedup,
            "deterministic": mono["deterministic"]
            and sharded["deterministic"],
            "pooled_deterministic": mono["pooled_deterministic"]
            and sharded["pooled_deterministic"],
        }
    )

    # Same aggregate regardless of worker processes...
    assert mono["deterministic"], mono
    assert sharded["deterministic"], sharded
    assert mono["planned"] > 0 and sharded["planned"] > 0
    # ...and the 4-shard deployment clears the 2x throughput bar.
    assert speedup >= 2.0, results
    # The persistent pool plans the identical projection...
    assert mono["pooled_deterministic"], mono
    assert sharded["pooled_deterministic"], sharded
    # ...and at 4 shards beats single-process — the guard against the
    # rebuild-overhead inversion BENCH_shard.json used to record.
    assert (
        sharded["pooled_orders_per_sec"]
        >= sharded["single_process_orders_per_sec"]
    ), results
