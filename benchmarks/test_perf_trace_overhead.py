"""Tracing overhead on the RWA fast path (PR 1 perf harness).

The observability layer must be effectively free when disabled (the
default) and cheap when enabled: a single flag check on the disabled
path, one span allocation per plan on the enabled path.  This benchmark
re-runs the PR 1 cold+warm plan sweep three ways — no tracer, disabled
tracer, enabled tracer — and asserts the enabled run stays within 5%
of the untraced baseline (the disabled run within noise).
"""

import gc
import statistics
import time

from benchmarks.harness import print_rows
from benchmarks.perf_report import RATE_BPS, build_graphs, demand_pairs
from repro.core.inventory import InventoryDatabase
from repro.core.rwa import RwaEngine
from repro.errors import NoPathError, WavelengthBlockedError
from repro.obs.trace import Tracer

#: Sweeps per measurement: the first is cold (fresh cache), the rest
#: warm — the same cold/warm mix the PR 1 harness exercises.
SWEEP_ROUNDS = 3

#: Paired repetitions.  Within one repetition all three modes run back
#: to back (rotating order), and each repetition yields overhead
#: *ratios* against its own baseline — so slow drift (thermal, noisy
#: neighbours) cancels instead of polluting a min- or mean-of-times.
REPEATS = 11

#: The three wirings under test.
MODES = (
    ("baseline", lambda: None),
    ("disabled", lambda: Tracer()),
    ("enabled", lambda: Tracer(enabled=True)),
)


def _sweep_once(tracer) -> float:
    """Seconds for one full cold+warm plan sweep over all topologies."""
    total = 0.0
    for graph in build_graphs().values():
        inventory = InventoryDatabase(graph)
        engine = RwaEngine(inventory, tracer=tracer)
        pairs = demand_pairs(graph)
        start = time.perf_counter()
        for _ in range(SWEEP_ROUNDS):
            for source, dest in pairs:
                try:
                    engine.plan(source, dest, RATE_BPS)
                except (NoPathError, WavelengthBlockedError):
                    pass
        total += time.perf_counter() - start
    return total


def test_perf_tracing_overhead(benchmark):
    def measure():
        for _, make_tracer in MODES:  # untimed warm-up pass
            _sweep_once(make_tracer())
        ratios = {mode: [] for mode, _ in MODES if mode != "baseline"}
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for rep in range(REPEATS):
                rotation = rep % len(MODES)
                times = {}
                for mode, make_tracer in (
                    MODES[rotation:] + MODES[:rotation]
                ):
                    times[mode] = _sweep_once(make_tracer())
                for mode in ratios:
                    ratios[mode].append(times[mode] / times["baseline"])
        finally:
            if gc_was_enabled:
                gc.enable()
        return {mode: statistics.median(r) for mode, r in ratios.items()}

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [["mode", "overhead vs baseline (median)"]]
    for mode, ratio in results.items():
        rows.append([mode, f"{ratio - 1.0:+.1%}"])
    print_rows("RWA plan sweep: tracing overhead", rows)
    benchmark.extra_info.update(
        {f"{mode}_ratio": ratio for mode, ratio in results.items()}
    )

    # Disabled (the default wiring) must be indistinguishable from no
    # tracer at all; enabled must stay under the 5% acceptance bar.
    assert results["disabled"] < 1.03, results
    assert results["enabled"] < 1.05, results


def test_traced_plans_match_untraced(benchmark):
    """Tracing must observe, never change, the planning answers."""

    def compare():
        mismatches = 0
        for graph in build_graphs().values():
            inventory = InventoryDatabase(graph)
            traced = RwaEngine(inventory, tracer=Tracer(enabled=True))
            plain = RwaEngine(inventory)
            for source, dest in demand_pairs(graph):
                if traced.plan(source, dest, RATE_BPS) != plain.plan(
                    source, dest, RATE_BPS
                ):
                    mismatches += 1
        return mismatches

    assert benchmark.pedantic(compare, rounds=1, iterations=1) == 0
