"""SLO remediation report: emits ``BENCH_slo.json``.

Replays the stock gray-failure plan (:func:`repro.slo.bench.
default_degradation_plan`) against the 12-city backbone workload twice —
remediation engine armed vs policies off — and records the comparison
the tentpole is judged on:

* **violation-minutes cut** — policy-on must accrue at most 1/3 of the
  policy-off SLA-violation minutes (the >= 3x acceptance bar);
* **headroom gate** — every reroute the engine took must have landed on
  a path whose worst post-claim link utilization stayed under 80%;
* **audit oracle** — the invariant auditor runs after *every* engine
  action in both runs and must stay clean;
* **empty-plan identity** — attaching the subsystem with an empty plan
  and no policies must leave the network fingerprint byte-identical to
  a run that never called ``enable_slo`` at all.

Determinism is gated by running the armed trial twice at the same seed
and requiring identical fingerprints and violation minutes.

Usage::

    PYTHONPATH=src python benchmarks/slo_report.py [output.json]

``main`` exits non-zero when any acceptance check fails.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List

from repro.faults.plan import DegradationPlan
from repro.slo.bench import (
    bring_up_workload,
    build_slo_network,
    network_fingerprint,
    run_slo_trial,
)

#: Default output path: the repository root.
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_slo.json"

#: The acceptance bar on the violation-minutes ratio.
REQUIRED_CUT = 3.0

#: The reroute headroom gate the engine enforces (and we re-assert).
UTILIZATION_GATE = 0.80


def empty_plan_identity(seed: int = 0) -> Dict[str, object]:
    """Fingerprint a bare run vs an empty-plan ``enable_slo`` run."""
    bare = build_slo_network(seed)
    bring_up_workload(bare)
    bare.run()
    attached = build_slo_network(seed)
    bring_up_workload(attached)
    runtime = attached.enable_slo(plan=DegradationPlan(), policies=())
    attached.run()
    return {
        "bare_fingerprint": network_fingerprint(bare),
        "attached_fingerprint": network_fingerprint(attached),
        "runtime_is_none": runtime is None,
        "identical": network_fingerprint(bare) == network_fingerprint(attached),
    }


def collect_measurements(seed: int = 0) -> Dict[str, object]:
    """Both trials, the determinism repeat, and the identity check."""
    policy_off = run_slo_trial(seed=seed, policy_on=False)
    policy_on = run_slo_trial(seed=seed, policy_on=True)
    repeat = run_slo_trial(seed=seed, policy_on=True)
    return {
        "policy_off": policy_off,
        "policy_on": policy_on,
        "deterministic": (
            policy_on["fingerprint"] == repeat["fingerprint"]
            and policy_on["violation_minutes"] == repeat["violation_minutes"]
        ),
        "empty_plan": empty_plan_identity(seed),
    }


def acceptance(measurements: Dict[str, object]) -> Dict[str, object]:
    """The acceptance block ``main`` gates on."""
    off = measurements["policy_off"]
    on = measurements["policy_on"]
    cut = off["violation_minutes"] / max(on["violation_minutes"], 1e-9)
    checks = {
        "violation_minutes_cut_3x": cut >= REQUIRED_CUT,
        "zero_audit_violations": (
            on["audit_violations"] == 0 and off["audit_violations"] == 0
        ),
        "reroutes_under_utilization_gate": (
            on["max_reroute_utilization"] < UTILIZATION_GATE
        ),
        "engine_acted": on["rerouted"] > 0,
        "deterministic": bool(measurements["deterministic"]),
        "empty_plan_identity": bool(measurements["empty_plan"]["identical"]),
    }
    return {
        "violation_minutes_cut": round(cut, 2),
        "required_cut": REQUIRED_CUT,
        "utilization_gate": UTILIZATION_GATE,
        "checks": checks,
        "ok": all(checks.values()),
    }


def write_report(path: Path, measurements: Dict[str, object]) -> None:
    report = {
        "benchmark": "slo-gray-failure-remediation",
        "schema_version": 1,
        "measurements": measurements,
        "acceptance": acceptance(measurements),
    }
    path.write_text(json.dumps(report, indent=2) + "\n")


def main(argv: List[str]) -> int:
    output = Path(argv[1]) if len(argv) > 1 else DEFAULT_OUTPUT
    measurements = collect_measurements()
    off = measurements["policy_off"]
    on = measurements["policy_on"]
    print(
        f"policy-off: {off['violation_minutes']:7.1f} SLA-violation min | "
        f"policy-on: {on['violation_minutes']:7.1f} min "
        f"({off['violation_minutes'] / max(on['violation_minutes'], 1e-9):.1f}x cut), "
        f"{on['rerouted']:g} reroute(s), {on['reverted']:g} revert(s), "
        f"max util {on['max_reroute_utilization']:.1%}"
    )
    gate = acceptance(measurements)
    for name, passed in sorted(gate["checks"].items()):
        print(f"  acceptance {name}: {'ok' if passed else 'FAILED'}")
    write_report(output, measurements)
    print(f"wrote {output}")
    return 0 if gate["ok"] else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
