"""X4: BoD economics vs static provisioning and store-and-forward.

The paper's motivation (§1): inter-DC demand is dominated by bursty
bulk transfers over a diurnal interactive floor, so statically leasing
peak capacity strands most of it.  We compare three ways to serve the
same workload:

* **static**: lease the peak, pay around the clock;
* **BoD (GRIPhoN)**: track demand hourly with 1G granularity, and run
  bulk jobs on on-demand wavelengths;
* **store-and-forward (NetStitcher-like)**: no new capacity, bulk data
  rides the leftover bandwidth of the static interactive pipes.
"""

import statistics

from benchmarks.harness import print_rows
from repro.baselines import StaticProvisioningPlan, StoreForwardScheduler
from repro.facade import build_griphon_testbed
from repro.units import GBPS, HOUR, TERABYTE, gbps, terabytes, transfer_time
from repro.workload import BulkTransferWorkload, InteractiveDemand


def interactive_capacity_hours():
    """Static vs demand-tracking capacity-hours for interactive load."""
    demand = InteractiveDemand(
        ("DC-EAST", "DC-WEST"), base_gbps=6.0, amplitude=0.6, peak_hour=20.0
    )
    series = demand.hourly_series(24)
    static = StaticProvisioningPlan(series, granularity_bps=gbps(10))
    tracking = demand.capacity_hours_tracking(24, granularity_bps=gbps(1))
    return static, tracking, series


def bulk_completion_bod(volume_bits, samples=3):
    """Request-to-done latency for a bulk job on a BoD wavelength."""
    times = []
    for i in range(samples):
        net = build_griphon_testbed(seed=500 + i, latency_cv=0.0)
        svc = net.service_for("csp")
        workload = BulkTransferWorkload(
            net.sim,
            net.streams,
            svc,
            premises=["PREMISES-A", "PREMISES-C"],
            rate_policy="wavelength",
        )
        record = workload.submit_job()
        record.volume_bits = volume_bits  # fixed-size job
        # Re-run the timing with the fixed volume: cancel nothing, the
        # watcher reads volume at completion scheduling time, so patch
        # before the connection comes up.
        net.run()
        times.append(record.completion_time)
    return statistics.fmean(times)


def bulk_completion_store_forward(volume_bits, series):
    """Completion over the leftover capacity of the static pipe."""
    static = StaticProvisioningPlan(series, granularity_bps=gbps(10))
    leftover = [static.leased_capacity_bps - d for d in series]
    scheduler = StoreForwardScheduler({"east-west": leftover})
    return scheduler.hop_completion_time("east-west", volume_bits)


def test_x4_capacity_hours(benchmark):
    def run():
        return interactive_capacity_hours()

    static, tracking, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    static_ch = static.capacity_hours() / (GBPS * 1)
    tracking_ch = tracking / (GBPS * 1)
    rows = [
        ["provisioning", "capacity-hours (G-h / day)", "utilization"],
        ["static peak lease", f"{static_ch:.0f}", f"{static.utilization():.0%}"],
        ["BoD hourly tracking", f"{tracking_ch:.0f}", "-"],
    ]
    print_rows("X4: interactive capacity-hours, static vs BoD", rows)
    benchmark.extra_info["static_gh"] = static_ch
    benchmark.extra_info["bod_gh"] = tracking_ch

    # BoD tracks demand, so it bills materially fewer capacity-hours.
    assert tracking < static.capacity_hours()
    assert tracking / static.capacity_hours() < 0.75
    # And static utilization is poor — the stranded-capacity motivation.
    assert static.utilization() <= 0.65


def test_x4_bulk_completion_times(benchmark):
    volume = terabytes(20)

    def run():
        _, _, series = interactive_capacity_hours()
        bod = bulk_completion_bod(volume)
        snf = bulk_completion_store_forward(volume, series)
        direct = transfer_time(volume, gbps(10))
        return bod, snf, direct

    bod, snf, direct = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["scheme", "20 TB completion (h)"],
        ["BoD 10G wavelength (GRIPhoN)", f"{bod / HOUR:.2f}"],
        ["store-and-forward on leftovers", f"{snf / HOUR:.2f}"],
        ["ideal dedicated 10G (lower bound)", f"{direct / HOUR:.2f}"],
    ]
    print_rows("X4: bulk transfer completion", rows)
    benchmark.extra_info["bod_h"] = bod / HOUR
    benchmark.extra_info["snf_h"] = snf / HOUR

    # BoD pays only the ~1 min setup over the dedicated lower bound.
    assert direct < bod < direct + 300
    # Store-and-forward needs no new capacity but is slower when the
    # leftover is thin (peak-provisioned pipe leaves ~4G on average
    # against BoD's dedicated 10G).
    assert snf > bod
    # Crossover intuition: with a *mostly idle* static pipe the leftover
    # approach can compete; check the factor is in a sane band, not huge.
    assert 1.2 < snf / bod < 6.0


def test_x4_blocking_under_load(benchmark):
    """BoD under heavy bulk load: some requests block (the carrier's
    pool is finite), which is the resource-planning hook for X5."""

    def run():
        net = build_griphon_testbed(seed=520, latency_cv=0.0)
        svc = net.service_for(
            "csp", max_connections=64, max_total_rate_gbps=10000
        )
        workload = BulkTransferWorkload(
            net.sim,
            net.streams,
            svc,
            premises=["PREMISES-A", "PREMISES-B", "PREMISES-C"],
            mean_volume_bits=40 * TERABYTE,
            rate_policy="wavelength",
        )
        for _ in range(30):
            workload.submit_job()
        net.run(until=12 * HOUR)
        return workload

    workload = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = workload.blocking_ratio()
    print_rows(
        "X4: blocking under simultaneous bulk load",
        [["jobs", "blocked"], [str(len(workload.records)), f"{ratio:.0%}"]],
    )
    assert 0.0 < ratio < 1.0  # finite pool: some block, some run
