"""X10: scaling behavior on generated carrier topologies.

The paper positions GRIPhoN for "the backbone network of a major
carrier", where "the eventual scale that must be managed" is a core
challenge (§1).  We sweep random Waxman-style backbones from 8 to 32
PoPs and measure what actually changes with scale:

* establishment time grows gently (more hops on average, a few seconds
  per hop — the Table 2 effect at network scale);
* RWA planning stays fast (k-shortest-path computation, not EMS time,
  so it is measured in microseconds of real time, not simulated time);
* blocking under a fixed per-node load stays controlled because
  resources scale with the network.

The sweep is declared as a :class:`~repro.sweep.spec.SweepSpec` (axis:
``node_count``) and driven through the scale-out engine; the network
factory is :func:`repro.sweep.studies.build_waxman_network`, which
shares its premises-attach and equipment-install steps with every other
experiment via :mod:`repro.topo.builders`.
"""

from benchmarks.harness import print_rows
from repro.sweep import run_sweep, x10_scaling_spec

NODE_COUNTS = (8, 16, 32)


def run_study(jobs: int = 1):
    return run_sweep(x10_scaling_spec(node_counts=NODE_COUNTS), jobs=jobs)


def test_x10_scaling_sweep(benchmark):
    result = benchmark.pedantic(run_study, rounds=1, iterations=1)
    assert not result.failed, [r.error for r in result.failed]
    grouped = result.grouped_values()
    by_nodes = {n: grouped[f"node_count={n}"] for n in NODE_COUNTS}

    rows = [["PoPs", "served", "blocked", "mean hops", "mean setup (s)"]]
    for n, stats in sorted(by_nodes.items()):
        rows.append(
            [
                str(n),
                f"{stats['served']:.0f}",
                f"{stats['blocked']:.0f}",
                f"{stats['mean_hops']:.1f}",
                f"{stats['mean_setup_s']:.1f}",
            ]
        )
    print_rows("X10: scaling on generated backbones", rows)
    benchmark.extra_info.update(
        {str(n): stats["mean_setup_s"] for n, stats in by_nodes.items()}
    )

    for stats in by_nodes.values():
        assert stats["served"] > 0
        # Setup stays in the ~1-2 minute band at every scale.
        assert 55 <= stats["mean_setup_s"] <= 150
    # Bigger networks mean longer average routes, never shorter setup
    # than the smallest network's floor.
    assert by_nodes[32]["mean_hops"] >= by_nodes[8]["mean_hops"] * 0.8
