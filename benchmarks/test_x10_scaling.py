"""X10: scaling behavior on generated carrier topologies.

The paper positions GRIPhoN for "the backbone network of a major
carrier", where "the eventual scale that must be managed" is a core
challenge (§1).  We sweep random Waxman-style backbones from 8 to 32
PoPs and measure what actually changes with scale:

* establishment time grows gently (more hops on average, a few seconds
  per hop — the Table 2 effect at network scale);
* RWA planning stays fast (k-shortest-path computation, not EMS time,
  so it is measured in microseconds of real time, not simulated time);
* blocking under a fixed per-node load stays controlled because
  resources scale with the network.
"""

import statistics

from benchmarks.harness import print_rows
from repro.core.connection import ConnectionState
from repro.facade import GriphonNetwork
from repro.sim import RandomStreams
from repro.topo.generator import generate_backbone
from repro.units import GBPS


def build_network_clean(seed, node_count):
    """Generate the graph, attach premises, then build the network."""
    from repro.topo.graph import Link, Node

    graph = generate_backbone(
        RandomStreams(seed), node_count=node_count, plane_km=2000.0
    )
    pops = [node.name for node in graph.nodes]
    for pop in pops:
        premises = f"DC-{pop}"
        graph.add_node(Node(premises, kind="premises"))
        graph.add_link(
            Link(premises, pop, length_km=20.0,
                 srlgs=frozenset({f"srlg:access:{premises}"}))
        )
    net = GriphonNetwork(graph, seed=seed, latency_cv=0.0)
    inv = net.inventory
    for pop in pops:
        inv.install_roadm(pop, add_drop_ports=16)
        inv.install_transponders(pop, 10 * GBPS, 6)
        inv.install_regens(pop, 10 * GBPS, 4)
        inv.install_fxc(pop, port_count=32)
        inv.install_nte(f"DC-{pop}", pop, interface_count=8)
        inv.install_fxc(f"DC-{pop}", port_count=16)
    net.finish_build()
    return pops, net


def measure_scale(node_count, orders=12, seed=950):
    pops, net = build_network_clean(seed + node_count, node_count)
    svc = net.service_for(
        "csp", max_connections=256, max_total_rate_gbps=100000
    )
    setups, blocked, hops = [], 0, []
    for index in range(orders):
        a = f"DC-{pops[index % len(pops)]}"
        b = f"DC-{pops[(index * 7 + 3) % len(pops)]}"
        if a == b:
            continue
        conn = svc.request_connection(a, b, 10)
        net.run()
        if conn.state is ConnectionState.BLOCKED:
            blocked += 1
        elif conn.state is ConnectionState.UP:
            setups.append(conn.setup_duration)
            lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
            hops.append(lightpath.hop_count)
    return {
        "mean_setup_s": statistics.fmean(setups) if setups else float("nan"),
        "mean_hops": statistics.fmean(hops) if hops else float("nan"),
        "blocked": blocked,
        "served": len(setups),
    }


def test_x10_scaling_sweep(benchmark):
    def run():
        return {n: measure_scale(n) for n in (8, 16, 32)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["PoPs", "served", "blocked", "mean hops", "mean setup (s)"]]
    for n, stats in sorted(results.items()):
        rows.append(
            [
                str(n),
                str(stats["served"]),
                str(stats["blocked"]),
                f"{stats['mean_hops']:.1f}",
                f"{stats['mean_setup_s']:.1f}",
            ]
        )
    print_rows("X10: scaling on generated backbones", rows)
    benchmark.extra_info.update(
        {str(n): stats["mean_setup_s"] for n, stats in results.items()}
    )

    for stats in results.values():
        assert stats["served"] > 0
        # Setup stays in the ~1-2 minute band at every scale.
        assert 55 <= stats["mean_setup_s"] <= 150
    # Bigger networks mean longer average routes, never shorter setup
    # than the smallest network's floor.
    assert results[32]["mean_hops"] >= results[8]["mean_hops"] * 0.8
