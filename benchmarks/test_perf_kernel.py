"""Perf microbenchmarks for the event-kernel hot path.

The optimized :meth:`Simulator.run` loop (locals-bound heap/pop, single
pop per event, inline trace check) versus a faithful replica of the
seed kernel's peek-then-step loop, plus the two new fast paths: lazy-
cancellation compaction and ``schedule_many`` batch loading.  The
measurement helpers live in ``benchmarks/sweep_report.py`` so the
assertions here and the committed ``BENCH_sweep.json`` share one
methodology.

Correctness of the new paths is covered by ``tests/test_sim_kernel.py``;
this file only asserts the perf shape: the optimized loop never loses,
and the cancel-heavy workload (where compaction skips popping dead
events one at a time) clears a real speedup bar.
"""

from benchmarks.harness import print_rows
from benchmarks.sweep_report import (
    SeedKernel,
    collect_kernel_measurements,
    load_cancel_heavy,
    load_timer_chains,
    measure_run,
)
from repro.sim.kernel import Simulator


def test_perf_kernel_loops(benchmark):
    results = benchmark.pedantic(
        collect_kernel_measurements, rounds=1, iterations=1
    )

    rows = [["workload", "before (ns/ev)", "after (ns/ev)", "speedup"]]
    for name, row in results.items():
        before = row.get("before_ns_per_event", row.get("loop_ns_per_event"))
        after = row.get(
            "after_ns_per_event", row.get("schedule_many_ns_per_event")
        )
        rows.append(
            [name, f"{before:.0f}", f"{after:.0f}", f"{row['speedup']:.2f}x"]
        )
    print_rows("Event kernel: seed loop vs optimized loop", rows)
    benchmark.extra_info.update(
        {name: row["speedup"] for name, row in results.items()}
    )

    # The common case must not regress (allow measurement noise)...
    assert results["timer_chain"]["speedup"] > 0.9, results["timer_chain"]
    # ...and the workloads the new paths exist for must clearly win.
    assert results["cancel_heavy"]["speedup"] > 1.2, results["cancel_heavy"]
    assert results["batch_schedule"]["speedup"] > 1.1, (
        results["batch_schedule"]
    )


def test_perf_kernel_same_event_counts(benchmark):
    """The speedup is not bought by firing fewer events."""

    def compare():
        mismatches = 0
        for build in (load_timer_chains, load_cancel_heavy):
            seed_sim = SeedKernel()
            total = build(seed_sim)
            seed_fired = seed_sim.run()
            new_sim = Simulator()
            assert build(new_sim) == total
            if new_sim.run() != seed_fired:
                mismatches += 1
            if seed_sim.now != new_sim.now:
                mismatches += 1
        return mismatches

    assert benchmark.pedantic(compare, rounds=1, iterations=1) == 0


def test_perf_cancel_heavy_fires_only_survivors():
    """Sanity-check the workload itself: 90% canceled, 10% fired."""
    sim = Simulator()
    total = load_cancel_heavy(sim, events=5_000)
    fired = sim.run()
    assert fired == total // 10
    _, elapsed_events = measure_run(
        lambda s: load_cancel_heavy(s, events=5_000), Simulator
    )
    assert elapsed_events == total
