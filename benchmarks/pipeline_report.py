"""Batched-RWA perf report: emits ``BENCH_pipeline.json``.

Measures planning throughput for a scheduling round of 64 concurrent
orders on the 32-PoP Waxman backbone, two ways:

* **serial** — what the controller does without the pipeline: one
  :meth:`RwaEngine.plan` call per order, occupying each plan's
  channels before the next call (the claim's effect on planning state);
* **batched** — one :meth:`RwaEngine.plan_batch` call for the whole
  round, sharing route lookups, liveness checks, regen segmentation,
  and free-channel scans across orders via the round's memos and
  shadow-claim overlay.

Demand is concentrated on a handful of hub PoPs — inter-data-center
traffic aggregates onto few sites (the paper's premise) — so a round
repeats source/destination pairs and the shared state pays off.  Both
paths must produce identical plans and errors; the report records the
check alongside the throughput numbers.

Usage::

    PYTHONPATH=src python benchmarks/pipeline_report.py [output.json]

The measurement helpers are also imported by
``benchmarks/test_perf_pipeline.py`` so the perf assertion and the
report share one methodology.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.core.inventory import InventoryDatabase
from repro.core.rwa import PlanRequest, RwaEngine
from repro.errors import GriphonError
from repro.sim.randomness import RandomStreams
from repro.topo.generator import generate_backbone
from repro.topo.graph import NetworkGraph
from repro.units import GBPS

#: Line rate every order requests.
RATE_BPS = 10 * GBPS

#: Concurrent orders per measured scheduling round.
ORDERS = 64

#: PoPs the demand concentrates on (data-center hubs).
HUBS = 8

#: Default output path: the repository root.
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"


def build_graph(seed: int = 2026) -> NetworkGraph:
    """The 32-PoP Waxman backbone (same seed as ``BENCH_rwa``'s)."""
    return generate_backbone(
        RandomStreams(seed + 1), node_count=32, plane_km=2000.0
    )


def order_pairs(graph: NetworkGraph, count: int = ORDERS) -> List[Tuple[str, str]]:
    """``count`` hub-concentrated source/destination pairs."""
    names = sorted(
        node.name for node in graph.nodes if node.kind == "roadm"
    )[:HUBS]
    pairs = []
    for index in range(count):
        a = names[index % len(names)]
        b = names[(index * 3 + 1) % len(names)]
        if a == b:
            b = names[(index * 3 + 2) % len(names)]
        pairs.append((a, b))
    return pairs


def _occupy(inventory: InventoryDatabase, plan, owner: str) -> List:
    """Occupy a plan's channels; returns undo thunks."""
    undo = []
    for segment in plan.segments:
        for u, v in zip(segment.nodes, segment.nodes[1:]):
            link = inventory.plant.dwdm_link(u, v)
            link.occupy(segment.channel, owner)
            undo.append(
                lambda link=link, ch=segment.channel, o=owner: link.release(ch, o)
            )
    return undo


def _outcome(plan_or_error) -> Tuple:
    """A comparable summary of one order's planning result."""
    if isinstance(plan_or_error, Exception):
        return ("error", str(plan_or_error))
    return (
        "plan",
        tuple(plan_or_error.path),
        tuple(s.channel for s in plan_or_error.segments),
        tuple(plan_or_error.regen_sites),
    )


def serial_round(
    engine: RwaEngine,
    inventory: InventoryDatabase,
    requests: List[PlanRequest],
) -> Tuple[List[Tuple], List]:
    """Plan a round one order at a time, claiming channels in between."""
    outcomes = []
    undo: List = []
    for index, request in enumerate(requests):
        try:
            plan = engine.plan(
                request.source, request.destination, request.rate_bps
            )
        except GriphonError as exc:
            outcomes.append(_outcome(exc))
            continue
        undo.extend(_occupy(inventory, plan, f"bench-{index}"))
        outcomes.append(_outcome(plan))
    return outcomes, undo


def batch_round(
    engine: RwaEngine, requests: List[PlanRequest]
) -> List[Tuple]:
    """Plan a round in one ``plan_batch`` call (no inventory mutation)."""
    return [
        _outcome(item.plan if item.error is None else item.error)
        for item in engine.plan_batch(requests)
    ]


def collect_measurements(
    seed: int = 2026, orders: int = ORDERS, rounds: int = 5
) -> Dict[str, object]:
    """Serial-vs-batched round throughput on the 32-PoP backbone."""
    graph = build_graph(seed)
    inventory = InventoryDatabase(graph)
    engine = RwaEngine(inventory)
    requests = [
        PlanRequest(a, b, RATE_BPS) for a, b in order_pairs(graph, orders)
    ]

    # Equivalence first (also primes the route cache for both paths).
    serial_outcomes, undo = serial_round(engine, inventory, requests)
    for release in reversed(undo):
        release()
    batch_outcomes = batch_round(engine, requests)
    plans_identical = serial_outcomes == batch_outcomes

    serial_total = 0.0
    for _ in range(rounds):
        start = time.perf_counter()
        _, undo = serial_round(engine, inventory, requests)
        serial_total += time.perf_counter() - start
        for release in reversed(undo):
            release()

    batch_total = 0.0
    for _ in range(rounds):
        start = time.perf_counter()
        batch_round(engine, requests)
        batch_total += time.perf_counter() - start

    serial_ops = orders * rounds / serial_total
    batch_ops = orders * rounds / batch_total
    planned = sum(1 for o in serial_outcomes if o[0] == "plan")
    return {
        "topology": "waxman-32pop",
        "orders": orders,
        "rounds": rounds,
        "planned": planned,
        "errors": orders - planned,
        "plans_identical": plans_identical,
        "serial_orders_per_sec": serial_ops,
        "batch_orders_per_sec": batch_ops,
        "speedup": batch_ops / serial_ops,
    }


def write_report(path: Path, results: Dict[str, object]) -> None:
    """Serialize the measurements (plus context) as JSON."""
    report = {
        "benchmark": "pipeline-batched-rwa",
        "schema_version": 1,
        "rate_gbps": RATE_BPS / GBPS,
        "results": [results],
    }
    path.write_text(json.dumps(report, indent=2) + "\n")


def main(argv: List[str]) -> int:
    output = Path(argv[1]) if len(argv) > 1 else DEFAULT_OUTPUT
    results = collect_measurements()
    write_report(output, results)
    print(
        f"waxman-32pop, {results['orders']} orders: "
        f"serial {results['serial_orders_per_sec']:8.0f} orders/s, "
        f"batched {results['batch_orders_per_sec']:8.0f} orders/s, "
        f"speedup {results['speedup']:.1f}x, "
        f"plans identical: {results['plans_identical']}"
    )
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
