"""Sharded-controller perf report: emits ``BENCH_shard.json``.

Measures order-planning throughput on a 512-PoP continental topology
at three shard counts — one monolithic 512-PoP region, 4 regions of
128 PoPs, and 16 regions of 32 PoPs — each as a ``shard-plan`` sweep
(:func:`repro.shard.bench.shard_plan_spec`) run two ways:

* **single-process** — every shard's workload planned serially in one
  process (``run_sweep(spec, jobs=1)``);
* **process-parallel** — one worker process per shard
  (``run_sweep(spec, jobs=len(units))``).

Total offered orders are held (approximately) constant across shard
counts, so orders/sec compares the same work.  The headline number is
the 4-shard process-parallel run against the 1-shard monolith: Yen's
k-shortest-path enumeration on the 512-node mesh is far more than 4x
the cost of the same enumeration on four 128-node meshes, so sharding
wins even before process parallelism — the report records both so the
two effects are separable.

Both runs of every config must produce byte-identical aggregates
(plans, fingerprints, counters); the report records that check, and the
CI determinism gate re-asserts it.

Per-order plan latency percentiles come from directly timed
``plan_batch`` calls on standalone units (build cost excluded), the
same workload the sweep plans.

Usage::

    PYTHONPATH=src python benchmarks/shard_report.py [output.json]

The measurement helpers are also imported by
``benchmarks/test_perf_shard.py`` so the perf assertion and the report
share one methodology.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List

from repro.shard.bench import (
    bench_workload,
    shard_plan_spec,
    shard_units,
)
from repro.shard.unit import build_express_unit, build_region_unit
from repro.sweep.engine import run_sweep
from repro.topo.hierarchy import EXPRESS

#: (regions, pops_per_region) at a constant 512 PoPs total.
CONFIGS = ((1, 512), (4, 128), (16, 32))

#: Total offered orders per config (split across units and rounds).
TOTAL_ORDERS = 128

#: Scheduling rounds per unit (occupancy accumulates between rounds).
ROUNDS = 2

#: Default output path: the repository root.
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_shard.json"


def _orders_per_round(regions: int, total_orders: int, rounds: int) -> int:
    """Split the offered load evenly over units and rounds."""
    return max(1, total_orders // (rounds * len(shard_units(regions))))


def _build_unit(unit_name: str, topology_seed: int, regions: int,
                pops_per_region: int):
    if unit_name == EXPRESS:
        return build_express_unit(regions, 2, pops_per_region)
    return build_region_unit(topology_seed, unit_name, pops_per_region)


def plan_latency_ms(
    topology_seed: int,
    regions: int,
    pops_per_region: int,
    rounds: int,
    orders_per_round: int,
) -> List[float]:
    """Directly timed per-order plan latencies (ms), every unit's rounds.

    Units are built outside the timed section; each sample is one
    ``plan_batch`` call's wall-clock divided by its order count.
    """
    samples: List[float] = []
    for unit_name in shard_units(regions):
        unit = _build_unit(unit_name, topology_seed, regions, pops_per_region)
        sequence = 0
        for requests in bench_workload(
            unit, topology_seed, rounds, orders_per_round
        ):
            start = time.perf_counter()
            items = unit.plan_batch(requests)
            elapsed = time.perf_counter() - start
            samples.append(elapsed * 1000.0 / len(requests))
            for item in items:
                if item.ok:
                    unit.occupy_plan(item.plan, f"bench-{sequence}")
                sequence += 1
    return samples


def _percentile(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def measure_config(
    regions: int,
    pops_per_region: int,
    topology_seed: int = 2026,
    total_orders: int = TOTAL_ORDERS,
    rounds: int = ROUNDS,
) -> Dict[str, object]:
    """One shard count's throughput, determinism check, and latency."""
    units = shard_units(regions)
    orders_per_round = _orders_per_round(regions, total_orders, rounds)
    spec = shard_plan_spec(
        topology_seed=topology_seed,
        regions=regions,
        pops_per_region=pops_per_region,
        rounds=rounds,
        orders_per_round=orders_per_round,
    )
    single = run_sweep(spec, jobs=1)
    parallel = run_sweep(spec, jobs=len(units))
    orders = sum(t.values["orders"] for t in single.results)
    planned = sum(t.values["planned"] for t in single.results)
    latencies = plan_latency_ms(
        topology_seed, regions, pops_per_region, rounds, orders_per_round
    )
    return {
        "regions": regions,
        "pops_per_region": pops_per_region,
        "total_pops": regions * pops_per_region,
        "units": len(units),
        "orders": orders,
        "planned": planned,
        "blocked": orders - planned,
        "single_process_orders_per_sec": orders / single.elapsed_s,
        "process_parallel_orders_per_sec": orders / parallel.elapsed_s,
        "deterministic": single.to_json() == parallel.to_json(),
        "plan_latency_p50_ms": _percentile(latencies, 0.50),
        "plan_latency_p95_ms": _percentile(latencies, 0.95),
        "plan_latency_mean_ms": statistics.fmean(latencies),
    }


def collect_measurements(
    topology_seed: int = 2026,
    total_orders: int = TOTAL_ORDERS,
    rounds: int = ROUNDS,
    configs=CONFIGS,
) -> List[Dict[str, object]]:
    """Measure every shard count at a constant 512-PoP scale."""
    return [
        measure_config(
            regions,
            pops_per_region,
            topology_seed=topology_seed,
            total_orders=total_orders,
            rounds=rounds,
        )
        for regions, pops_per_region in configs
    ]


def write_report(path: Path, results: List[Dict[str, object]]) -> None:
    """Serialize the measurements (plus context) as JSON."""
    baseline = results[0]["process_parallel_orders_per_sec"]
    report = {
        "benchmark": "shard-continental-planning",
        "schema_version": 1,
        "total_orders": TOTAL_ORDERS,
        "rounds": ROUNDS,
        "results": results,
        "speedup_vs_monolith": {
            str(row["regions"]): (
                row["process_parallel_orders_per_sec"] / baseline
            )
            for row in results
        },
    }
    path.write_text(json.dumps(report, indent=2) + "\n")


def main(argv: List[str]) -> int:
    output = Path(argv[1]) if len(argv) > 1 else DEFAULT_OUTPUT
    results = collect_measurements()
    baseline = results[0]["process_parallel_orders_per_sec"]
    for row in results:
        print(
            f"{row['regions']:>3} shard(s) x {row['pops_per_region']} PoPs: "
            f"single {row['single_process_orders_per_sec']:8.1f} orders/s, "
            f"parallel {row['process_parallel_orders_per_sec']:8.1f} orders/s "
            f"({row['process_parallel_orders_per_sec'] / baseline:5.1f}x), "
            f"p95 {row['plan_latency_p95_ms']:7.2f} ms, "
            f"deterministic: {row['deterministic']}"
        )
    write_report(output, results)
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
