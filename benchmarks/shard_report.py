"""Sharded-controller perf report: emits ``BENCH_shard.json``.

Measures order-planning throughput on a 512-PoP continental topology
at three shard counts — one monolithic 512-PoP region, 4 regions of
128 PoPs, and 16 regions of 32 PoPs — each as a ``shard-plan`` sweep
(:func:`repro.shard.bench.shard_plan_spec`) run three ways:

* **single-process** — every shard's workload planned serially in one
  process (``run_sweep(spec, jobs=1)``);
* **process-parallel (rebuild)** — one worker process per shard
  (``run_sweep(spec, jobs=len(units))``), paying a full unit rebuild
  and a cold route cache per trial — the historical mode whose
  overhead inverted the speedup (see :data:`SEED_INVERSION`);
* **worker pool** — one *persistent* worker per shard
  (:class:`repro.shard.workers.ShardWorkerPool` via
  ``run_sweep(spec, executor=pool)``): units build once, route caches
  stay warm.  The pool rows report the steady-state (warm) pass as
  ``process_parallel_orders_per_sec`` and the first (cold-cache) pass
  separately; worker spawn/build time is outside both, recorded as
  ``pool_spawn_s`` — the amortized cost of the resident layer.

Total offered orders are held (approximately) constant across shard
counts, so orders/sec compares the same work.

Determinism is gated two ways: the rebuild runs must produce
byte-identical aggregates at any job count, and the pooled runs must
match the single-process run on the simulation-determined projection
(:func:`repro.shard.bench.plan_projection` — plan fingerprints and
counts; route-cache counters are excluded because a warm cache
legitimately reports more hits while planning identical outcomes).

Per-order plan latency stats are computed over ONE per-plan sample
population: each offered order is timed as its own ``plan_batch`` call
against the round's shared planning context, and mean/p50/p95 all
summarize that same list (:func:`latency_stats`).  An earlier revision
averaged each unit-round's batch and mixed sub-populations, which let
the mean fall below the p50.

The ``acceptance`` block records the regression guard: pooled
process-parallel throughput must be >= single-process at >= 4 shards
(and >= 2x at 16), fixing the seed inversion it documents.  ``main``
exits non-zero when acceptance fails.

Usage::

    PYTHONPATH=src python benchmarks/shard_report.py [output.json]

The measurement helpers are also imported by
``benchmarks/test_perf_shard.py`` so the perf assertion and the report
share one methodology.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List

from repro.core.rwa import _PlanningRound
from repro.shard.bench import (
    bench_workload,
    plan_projection,
    shard_plan_spec,
    shard_units,
)
from repro.shard.unit import build_express_unit, build_region_unit
from repro.shard.workers import ShardWorkerPool, recipe_for_trial
from repro.sweep.engine import run_sweep
from repro.topo.hierarchy import EXPRESS

#: (regions, pops_per_region) at a constant 512 PoPs total.
CONFIGS = ((1, 512), (4, 128), (16, 32))

#: Total offered orders per config (split across units and rounds).
TOTAL_ORDERS = 128

#: Scheduling rounds per unit (occupancy accumulates between rounds).
ROUNDS = 2

#: Default output path: the repository root.
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_shard.json"

#: The pre-pool baseline this report's acceptance block fixes: with
#: per-trial rebuilds, process-"parallel" planning was *slower* than
#: single-process (BENCH_shard.json as of the PR 6 seed).
SEED_INVERSION = {
    "4": {
        "single_process_orders_per_sec": 193.7,
        "process_parallel_orders_per_sec": 135.5,
    },
    "16": {
        "single_process_orders_per_sec": 927.7,
        "process_parallel_orders_per_sec": 200.1,
    },
}


def _orders_per_round(regions: int, total_orders: int, rounds: int) -> int:
    """Split the offered load evenly over units and rounds."""
    return max(1, total_orders // (rounds * len(shard_units(regions))))


def _build_unit(unit_name: str, topology_seed: int, regions: int,
                pops_per_region: int):
    if unit_name == EXPRESS:
        return build_express_unit(regions, 2, pops_per_region)
    return build_region_unit(topology_seed, unit_name, pops_per_region)


def plan_latency_ms(
    topology_seed: int,
    regions: int,
    pops_per_region: int,
    rounds: int,
    orders_per_round: int,
) -> List[float]:
    """Directly timed per-plan latencies (ms): ONE sample per order.

    Units are built outside the timed sections.  Every offered order is
    planned as its own ``plan_batch([request])`` call against the
    round's shared :class:`_PlanningRound` — outcome-identical to the
    batched call (the overlay accumulates the same shadow-claims in the
    same order) but individually timed, so mean and percentiles
    summarize the same per-plan population.
    """
    samples: List[float] = []
    for unit_name in shard_units(regions):
        unit = _build_unit(unit_name, topology_seed, regions, pops_per_region)
        round_ctx = _PlanningRound()
        sequence = 0
        for requests in bench_workload(
            unit, topology_seed, rounds, orders_per_round
        ):
            round_ctx.reset()
            items = []
            for request in requests:
                start = time.perf_counter()
                item = unit.plan_batch([request], round_ctx=round_ctx)[0]
                samples.append((time.perf_counter() - start) * 1000.0)
                items.append(item)
            for item in items:
                if item.ok:
                    unit.occupy_plan(item.plan, f"bench-{sequence}")
                sequence += 1
    return samples


def _percentile(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def latency_stats(samples: List[float]) -> Dict[str, float]:
    """Mean/p50/p95 over one sample population — mutually consistent.

    All three summarize the *same* list, so ``p50 <= p95`` always, and
    the mean sits inside ``[min, max]`` of that list — the invariants
    the earlier mixed-population computation violated.
    """
    return {
        "plan_latency_p50_ms": _percentile(samples, 0.50),
        "plan_latency_p95_ms": _percentile(samples, 0.95),
        "plan_latency_mean_ms": statistics.fmean(samples),
    }


def measure_pooled(spec, single) -> Dict[str, object]:
    """Throughput of the same sweep on a persistent worker pool.

    Spawns one worker per unit (build time recorded as ``spawn_s``,
    excluded from throughput — the resident layer pays it once per
    deployment, not per sweep), then runs the sweep twice: the first
    pass planning with cold route caches, the second warm.  Both must
    match ``single`` on the simulation-determined projection.
    """
    recipes = {recipe_for_trial(t.params) for t in spec.trials()}
    spawn_start = time.perf_counter()
    with ShardWorkerPool(recipes) as pool:
        spawn_s = time.perf_counter() - spawn_start
        cold = run_sweep(spec, executor=pool)
        warm = run_sweep(spec, executor=pool)
        orders = sum(t.values["orders"] for t in warm.results)
        reference = plan_projection(single)
        deterministic = (
            plan_projection(cold) == reference
            and plan_projection(warm) == reference
        )
        hits = sum(t.values["route_cache_hits"] for t in warm.results)
        misses = sum(t.values["route_cache_misses"] for t in warm.results)
    return {
        "spawn_s": spawn_s,
        "cold_orders_per_sec": orders / cold.elapsed_s,
        "orders_per_sec": orders / warm.elapsed_s,
        "deterministic": deterministic,
        "warm_cache_hit_rate": hits / max(1, hits + misses),
    }


def measure_config(
    regions: int,
    pops_per_region: int,
    topology_seed: int = 2026,
    total_orders: int = TOTAL_ORDERS,
    rounds: int = ROUNDS,
) -> Dict[str, object]:
    """One shard count's throughput, determinism checks, and latency."""
    units = shard_units(regions)
    orders_per_round = _orders_per_round(regions, total_orders, rounds)
    spec = shard_plan_spec(
        topology_seed=topology_seed,
        regions=regions,
        pops_per_region=pops_per_region,
        rounds=rounds,
        orders_per_round=orders_per_round,
    )
    single = run_sweep(spec, jobs=1)
    parallel = run_sweep(spec, jobs=len(units))
    pooled = measure_pooled(spec, single)
    orders = sum(t.values["orders"] for t in single.results)
    planned = sum(t.values["planned"] for t in single.results)
    latencies = plan_latency_ms(
        topology_seed, regions, pops_per_region, rounds, orders_per_round
    )
    return {
        "regions": regions,
        "pops_per_region": pops_per_region,
        "total_pops": regions * pops_per_region,
        "units": len(units),
        "orders": orders,
        "planned": planned,
        "blocked": orders - planned,
        "single_process_orders_per_sec": orders / single.elapsed_s,
        "process_parallel_orders_per_sec": orders / parallel.elapsed_s,
        "deterministic": single.to_json() == parallel.to_json(),
        "pooled_orders_per_sec": pooled["orders_per_sec"],
        "pooled_cold_orders_per_sec": pooled["cold_orders_per_sec"],
        "pooled_spawn_s": pooled["spawn_s"],
        "pooled_deterministic": pooled["deterministic"],
        "pooled_warm_cache_hit_rate": pooled["warm_cache_hit_rate"],
        **latency_stats(latencies),
    }


def collect_measurements(
    topology_seed: int = 2026,
    total_orders: int = TOTAL_ORDERS,
    rounds: int = ROUNDS,
    configs=CONFIGS,
) -> List[Dict[str, object]]:
    """Measure every shard count at a constant 512-PoP scale."""
    return [
        measure_config(
            regions,
            pops_per_region,
            topology_seed=topology_seed,
            total_orders=total_orders,
            rounds=rounds,
        )
        for regions, pops_per_region in configs
    ]


def pooled_rows(results: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """The worker-pool rows: warm pooled throughput vs single-process."""
    return [
        {
            "backend": "pool",
            "regions": row["regions"],
            "pops_per_region": row["pops_per_region"],
            "units": row["units"],
            "orders": row["orders"],
            "single_process_orders_per_sec": (
                row["single_process_orders_per_sec"]
            ),
            "process_parallel_orders_per_sec": row["pooled_orders_per_sec"],
            "cold_process_parallel_orders_per_sec": (
                row["pooled_cold_orders_per_sec"]
            ),
            "pool_spawn_s": row["pooled_spawn_s"],
            "warm_cache_hit_rate": row["pooled_warm_cache_hit_rate"],
            "deterministic": row["pooled_deterministic"],
        }
        for row in results
    ]


def acceptance(results: List[Dict[str, object]]) -> Dict[str, object]:
    """The regression guard over the pooled rows.

    * pooled ``process_parallel_orders_per_sec`` >= single-process at
      every config with >= 4 shards (the inversion fix);
    * >= 2x single-process at 16 shards;
    * every pooled run byte-identical to single-process on the
      simulation-determined projection.
    """
    checks: Dict[str, bool] = {}
    for row in results:
        regions = int(row["regions"])
        if regions >= 4:
            checks[f"pooled_beats_single_at_{regions}_shards"] = bool(
                row["pooled_orders_per_sec"]
                >= row["single_process_orders_per_sec"]
            )
        if regions >= 16:
            checks[f"pooled_2x_single_at_{regions}_shards"] = bool(
                row["pooled_orders_per_sec"]
                >= 2.0 * row["single_process_orders_per_sec"]
            )
    checks["pool_deterministic"] = all(
        bool(row["pooled_deterministic"]) for row in results
    )
    return {
        "baseline_inversion_fixed": SEED_INVERSION,
        "checks": checks,
        "ok": all(checks.values()),
    }


def write_report(path: Path, results: List[Dict[str, object]]) -> None:
    """Serialize the measurements (plus context) as JSON."""
    baseline = results[0]["process_parallel_orders_per_sec"]
    report = {
        "benchmark": "shard-continental-planning",
        "schema_version": 2,
        "total_orders": TOTAL_ORDERS,
        "rounds": ROUNDS,
        "results": results,
        "pooled": pooled_rows(results),
        "acceptance": acceptance(results),
        "speedup_vs_monolith": {
            str(row["regions"]): (
                row["process_parallel_orders_per_sec"] / baseline
            )
            for row in results
        },
        "pooled_speedup_vs_monolith": {
            str(row["regions"]): row["pooled_orders_per_sec"] / baseline
            for row in results
        },
    }
    path.write_text(json.dumps(report, indent=2) + "\n")


def main(argv: List[str]) -> int:
    output = Path(argv[1]) if len(argv) > 1 else DEFAULT_OUTPUT
    results = collect_measurements()
    baseline = results[0]["process_parallel_orders_per_sec"]
    for row in results:
        print(
            f"{row['regions']:>3} shard(s) x {row['pops_per_region']} PoPs: "
            f"single {row['single_process_orders_per_sec']:8.1f} orders/s, "
            f"rebuild-parallel "
            f"{row['process_parallel_orders_per_sec']:8.1f} orders/s, "
            f"pooled {row['pooled_orders_per_sec']:8.1f} orders/s "
            f"({row['pooled_orders_per_sec'] / baseline:5.1f}x), "
            f"p95 {row['plan_latency_p95_ms']:7.2f} ms, "
            f"deterministic: {row['deterministic']}/"
            f"{row['pooled_deterministic']}"
        )
    write_report(output, results)
    gate = acceptance(results)
    for name, passed in sorted(gate["checks"].items()):
        print(f"  acceptance {name}: {'ok' if passed else 'FAILED'}")
    print(f"wrote {output}")
    return 0 if gate["ok"] else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
