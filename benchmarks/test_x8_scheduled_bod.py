"""X8: scheduled BoD — advance reservations and pool reclamation.

Two extension studies on the carrier's resource-pool economics:

* **advance reservations**: nightly backup windows booked ahead of time
  activate just before the window (covering the one-minute setup) and
  release at close, so three CSPs with staggered windows share the same
  transponders that static provisioning would have tripled;
* **reclamation**: OTN lines idled by departing circuits are garbage-
  collected after a holding time, returning wavelengths and OTs to the
  shared pool ("intelligent re-use of the pool of resources").
"""

from benchmarks.harness import print_rows
from repro.core.calendar import ReservationBook, ReservationState
from repro.core.connection import ConnectionState
from repro.core.reclamation import OtnLineReclaimer
from repro.facade import build_griphon_testbed
from repro.units import HOUR


def run_staggered_windows():
    """Three CSPs book the same capacity in back-to-back 2 h windows."""
    net = build_griphon_testbed(
        seed=800, latency_cv=0.0, ots_per_node_10g=4, nte_interfaces=12
    )
    book = ReservationBook(net.controller)
    reservations = []
    for index, customer in enumerate(("csp-a", "csp-b", "csp-c")):
        net.service_for(customer, max_connections=16,
                        max_total_rate_gbps=1000)
        for _ in range(4):  # each wants 4 x 10G in its window
            reservations.append(
                book.book(
                    customer,
                    "PREMISES-A",
                    "PREMISES-C",
                    10,
                    start=(1 + 2 * index) * HOUR,
                    end=(3 + 2 * index) * HOUR,
                )
            )
    net.run()
    return net, reservations


def test_x8_staggered_windows_share_the_pool(benchmark):
    net, reservations = benchmark.pedantic(
        run_staggered_windows, rounds=1, iterations=1
    )
    completed = [
        r for r in reservations if r.state is ReservationState.COMPLETED
    ]
    rows = [
        ["bookings", "completed", "OTs per node", "peak concurrent 10G"],
        [str(len(reservations)), str(len(completed)), "4", "4"],
    ]
    print_rows("X8: staggered backup windows on a shared pool", rows)

    # All 12 bookings (3 customers x 4) completed on a pool that could
    # hold only 4 concurrent 10G connections — calendar sharing works.
    assert len(completed) == len(reservations) == 12
    for reservation in completed:
        conn = reservation.connection
        assert conn is not None
        assert conn.state is ConnectionState.RELEASED
        # The connection is UP at the window start, or within a few
        # minutes of it when the previous window's teardown forces an
        # activation retry at the boundary.
        assert conn.up_at <= reservation.start + 5 * 60


def test_x8_activation_leads_window(benchmark):
    def run():
        net = build_griphon_testbed(seed=820, latency_cv=0.0)
        net.service_for("csp")
        book = ReservationBook(net.controller)
        reservation = book.book(
            "csp", "PREMISES-A", "PREMISES-C", 10,
            start=1 * HOUR, end=2 * HOUR,
        )
        net.run(until=1 * HOUR)
        return reservation

    reservation = benchmark.pedantic(run, rounds=1, iterations=1)
    lead = reservation.start - (
        reservation.connection.up_at - reservation.connection.setup_duration
    )
    print_rows(
        "X8: activation lead",
        [
            ["window start (s)", "connection up at (s)", "lead (s)"],
            [
                f"{reservation.start:.0f}",
                f"{reservation.connection.up_at:.1f}",
                f"{lead:.1f}",
            ],
        ],
    )
    assert reservation.connection.state is ConnectionState.UP
    assert reservation.connection.up_at <= reservation.start


def run_reclamation_cycle():
    """Sub-wavelength demand comes and goes; the reclaimer returns the
    idle OTN lines' wavelengths to the pool."""
    net = build_griphon_testbed(seed=840, latency_cv=0.0, nte_interfaces=12)
    svc = net.service_for("csp", max_connections=32)
    reclaimer = OtnLineReclaimer(net.controller, holding_time_s=1 * HOUR)
    reclaimer.schedule_periodic(
        interval_s=0.5 * HOUR, stop_at=net.sim.now + 12 * HOUR
    )
    connections = [
        svc.request_connection("PREMISES-A", "PREMISES-C", 1)
        for _ in range(4)
    ]
    net.run(until=1 * HOUR)
    lines_busy = len(net.inventory.otn_lines)
    for conn in connections:
        svc.teardown_connection(conn.connection_id)
    net.run(until=12 * HOUR)
    net.run()
    lines_after = len(net.inventory.otn_lines)
    lightpaths_after = len(net.inventory.lightpaths)
    return lines_busy, lines_after, lightpaths_after


def test_x8_reclamation_returns_wavelengths(benchmark):
    lines_busy, lines_after, lightpaths_after = benchmark.pedantic(
        run_reclamation_cycle, rounds=1, iterations=1
    )
    print_rows(
        "X8: OTN line reclamation",
        [
            ["lines while busy", "lines after reclamation", "lightpaths left"],
            [str(lines_busy), str(lines_after), str(lightpaths_after)],
        ],
    )
    assert lines_busy >= 1
    assert lines_after == 0
    assert lightpaths_after == 0
