"""X6: network re-grooming (paper §4, "Network re-grooming").

Connections provisioned while the best route was unavailable end up on
detours.  The re-grooming engine finds them and migrates them back via
bridge-and-roll: latency (fiber km) drops, load moves off the detour
links, and each customer sees only the ~50 ms roll hit.
"""

from benchmarks.harness import print_rows
from repro.core.connection import ConnectionState
from repro.core.regrooming import RegroomingEngine
from repro.facade import build_griphon_testbed


def run_regrooming():
    net = build_griphon_testbed(seed=700, latency_cv=0.0, nte_interfaces=12)
    svc = net.service_for("csp", max_connections=32)
    # Provision three A<->C connections while the direct span is down:
    # all of them detour via ROADM-III.
    net.controller.cut_link("ROADM-I", "ROADM-IV")
    connections = [
        svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        for _ in range(3)
    ]
    net.run()
    assert all(c.state is ConnectionState.UP for c in connections)
    graph = net.inventory.graph
    before_km = [
        graph.path_length_km(net.inventory.lightpaths[c.lightpath_ids[0]].path)
        for c in connections
    ]
    # The span is repaired; the shorter route is available again.
    net.controller.repair_link("ROADM-I", "ROADM-IV")
    engine = RegroomingEngine(net.controller)
    report = engine.run_pass()
    net.run()
    after_km = [
        graph.path_length_km(net.inventory.lightpaths[c.lightpath_ids[0]].path)
        for c in connections
    ]
    hits = [c.total_outage_s for c in connections]
    return report, before_km, after_km, hits


def test_x6_regrooming_pass(benchmark):
    report, before_km, after_km, hits = benchmark.pedantic(
        run_regrooming, rounds=1, iterations=1
    )
    rows = [["connection", "before (km)", "after (km)", "hit (ms)"]]
    for i, (b, a, h) in enumerate(zip(before_km, after_km, hits)):
        rows.append([f"conn-{i}", f"{b:g}", f"{a:g}", f"{h * 1000:.0f}"])
    print_rows("X6: re-grooming detoured connections", rows)
    benchmark.extra_info["migrated"] = len(report.migrated)

    assert report.scanned == 3
    # The 80-channel direct span can host all three migrations.
    assert len(report.migrated) == 3
    assert report.failures == {}
    assert all(a < b for a, b in zip(after_km, before_km))
    # Each migration cost only the roll hit.
    assert all(0 < h <= 0.1 for h in hits)


def test_x6_regrooming_respects_disjointness(benchmark):
    """A well-placed connection (no disjoint shorter path) is left alone."""

    def run():
        net = build_griphon_testbed(seed=720, latency_cv=0.0)
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        engine = RegroomingEngine(net.controller)
        report = engine.run_pass()
        net.run()
        return conn, report

    conn, report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.scanned == 1
    assert report.candidates == []
    assert conn.total_outage_s == 0.0
