"""Table 2: wavelength connection establishment time vs path length.

Paper (ten iterations each):

    hops   1 (I-IV)   2 (I-III-IV)   3 (I-II-III-IV)
    time   62.48 s    65.67 s        70.94 s

We regenerate the same three paths on the Fig. 4 testbed and check the
shape: ~60-70 s absolute scale, strictly monotone growth, and a few
seconds per added hop.  An ablation shows what parallelizing the EMS
steps (which the paper says nothing fundamental prevents) would buy.
"""

import pytest

from benchmarks.harness import (
    PAPER_TABLE2,
    mean_by_hops,
    print_rows,
    table2_measurements,
)


def test_table2_setup_time_vs_hops(benchmark):
    results = benchmark.pedantic(
        table2_measurements, kwargs={"iterations": 10}, rounds=1, iterations=1
    )
    means = mean_by_hops(results)
    rows = [["path length (hops)", "paper mean (s)", "measured mean (s)"]]
    for hops in sorted(means):
        rows.append(
            [str(hops), f"{PAPER_TABLE2[hops]:.2f}", f"{means[hops]:.2f}"]
        )
    print_rows("Table 2: establishment time vs ROADM path length", rows)
    benchmark.extra_info["means_s"] = {str(k): v for k, v in means.items()}

    # Shape assertions: monotone growth, right absolute scale, per-hop
    # increments of a few seconds, within 20% of the paper's numbers.
    assert means[1] < means[2] < means[3]
    for hops, paper_value in PAPER_TABLE2.items():
        assert means[hops] == pytest.approx(paper_value, rel=0.20)
    assert 2.0 < means[2] - means[1] < 10.0
    assert 2.0 < means[3] - means[2] < 10.0


def test_table2_ablation_parallel_ems(benchmark):
    """Ablation: per-stage parallel EMS execution cuts setup time.

    The paper notes the 60-70 s is not a physical limit; running the
    independent EMS steps (both laser tunings, both add/drops, all
    equalizations) concurrently is the obvious first optimization.
    """

    def run():
        sequential = mean_by_hops(table2_measurements(iterations=3))
        parallel = mean_by_hops(
            table2_measurements(iterations=3, parallel_ems=True)
        )
        return sequential, parallel

    sequential, parallel = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["hops", "sequential EMS (s)", "parallel EMS (s)"]]
    for hops in sorted(sequential):
        rows.append(
            [str(hops), f"{sequential[hops]:.2f}", f"{parallel[hops]:.2f}"]
        )
    print_rows("Table 2 ablation: sequential vs parallel EMS steps", rows)
    for hops in sequential:
        assert parallel[hops] < sequential[hops]
    # Laser tuning dominates the parallel critical path; the win is
    # roughly the serialized duplicate steps (~20 s at 1 hop).
    assert sequential[1] - parallel[1] > 10.0
