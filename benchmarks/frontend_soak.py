"""Frontend soak: bounded sim-hours of mixed workload under chaos.

The CI soak job's driver: an open-loop Zipf tenant fleet submits
through the async frontend for a bounded stretch of simulated hours
while :mod:`repro.faults` injects EMS faults (transients, timeouts)
into every setup underneath it.  Connections are cycled — torn down as
soon as they come up — so the run continuously exercises submit → edge
gates → pump → setup → teardown, including the saga rollbacks the
faults provoke.

The oracle is threefold, and the exit code reflects it:

* **conservation** — ``submitted == admitted + shed + throttled`` and
  every admitted order resolved to a typed outcome;
* **queue bounds** — the frontend queue never exceeded its capacity;
* **invariant audit** — after tearing every surviving connection down,
  :func:`repro.faults.audit_network` must find zero leaked or
  double-allocated resources.

Usage::

    PYTHONPATH=src python benchmarks/frontend_soak.py [report.json]
        [--sim-hours H] [--rate R] [--fault-rate P]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from repro.core.connection import ConnectionState
from repro.facade import build_griphon_testbed
from repro.faults import FaultPlan, FaultSpec, audit_network
from repro.frontend.clients import ClientFleet
from repro.units import HOUR
from repro.workload.tenants import TenantPopulation

#: Default bounded soak horizon, in simulated hours.
SIM_HOURS = 2.0

#: Connection states that hold resources and need a final teardown.
_TEARDOWN_STATES = frozenset(
    {
        ConnectionState.UP,
        ConnectionState.DEGRADED,
        ConnectionState.FAILED,
        ConnectionState.RESTORING,
    }
)


def run_soak(
    seed: int = 77,
    sim_hours: float = SIM_HOURS,
    arrival_rate: float = 0.5,
    fault_rate: float = 0.2,
    tenants: int = 5_000,
) -> dict:
    """One chaos soak; returns the report dict (see module docstring)."""
    plan = FaultPlan()
    for mode in ("transient", "timeout"):
        plan.add(FaultSpec(mode=mode, probability=fault_rate))
    net = build_griphon_testbed(seed=seed, latency_cv=0.0, fault_plan=plan)
    frontend = net.enable_frontend(
        queue_capacity=64, round_interval=0.01, bucket_rate=1.0,
        bucket_burst=8.0,
    )
    population = TenantPopulation(tenants)
    max_depth = {"value": 0}

    def cycle(ticket, event):
        if event == "admitted":
            max_depth["value"] = max(
                max_depth["value"], frontend.queue_depth()
            )
        elif event == "active" and ticket.order_ticket is not None:
            net.sim.schedule(
                0.0, frontend._intake.teardown, ticket.order_ticket
            )

    frontend.add_listener(cycle)
    fleet = ClientFleet(
        frontend,
        population,
        net.controller.admission,
        premises=["PREMISES-A", "PREMISES-B", "PREMISES-C"],
        streams=net.streams.spawn("fleet"),
        arrival_rate=arrival_rate,
        duration=sim_hours * HOUR,
    )
    fleet.start()
    net.run()

    # Final sweep: release every connection still holding resources.
    final_teardowns = 0
    for ticket in fleet.tickets:
        order = ticket.order_ticket
        if order is None or order.connection_id is None:
            continue
        connection = net.controller.connection(order.connection_id)
        if connection.state in _TEARDOWN_STATES:
            net.controller.teardown_connection(order.connection_id)
            final_teardowns += 1
    net.run()

    counters = net.metrics.counters()
    submitted = counters.get("frontend.submitted", 0.0)
    conserved = submitted == (
        counters.get("frontend.admitted", 0.0)
        + counters.get("frontend.shed", 0.0)
        + counters.get("frontend.throttled", 0.0)
    )
    audit = audit_network(net.controller)
    outcome_counts = dict(sorted(fleet.stats.outcomes.items()))
    return {
        "seed": seed,
        "sim_hours": sim_hours,
        "fault_rate": fault_rate,
        "submitted": fleet.stats.submitted,
        "resolved": fleet.stats.resolved(),
        "outcomes": outcome_counts,
        "setup_failures": outcome_counts.get("SetupFailed", 0)
        + outcome_counts.get("ServiceDegraded", 0),
        "faults_injected": sum(plan.injected_counts),
        "final_teardowns": final_teardowns,
        "max_queue_depth": max_depth["value"],
        "queue_capacity": frontend.capacity,
        "conserved": conserved,
        "all_resolved": fleet.stats.resolved() == fleet.stats.submitted,
        "audit_ok": audit.ok,
        "audit_summary": audit.summary(),
        "violations": [str(v) for v in audit.violations],
    }


def _healthy(report: dict) -> bool:
    """The soak's pass/fail verdict."""
    return bool(
        report["conserved"]
        and report["all_resolved"]
        and report["audit_ok"]
        and report["max_queue_depth"] <= report["queue_capacity"]
    )


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", nargs="?", default="SOAK_frontend.json")
    parser.add_argument("--sim-hours", type=float, default=SIM_HOURS)
    parser.add_argument("--rate", type=float, default=0.5)
    parser.add_argument("--fault-rate", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=77)
    args = parser.parse_args(argv[1:])
    report = run_soak(
        seed=args.seed,
        sim_hours=args.sim_hours,
        arrival_rate=args.rate,
        fault_rate=args.fault_rate,
    )
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"soak: {report['submitted']} orders over {report['sim_hours']}h "
        f"sim, faults {report['faults_injected']}, "
        f"outcomes {report['outcomes']}"
    )
    print(
        f"  conserved={report['conserved']}  "
        f"all_resolved={report['all_resolved']}  "
        f"audit: {report['audit_summary']}"
    )
    for violation in report["violations"]:
        print(f"    {violation}")
    print(f"wrote {args.output}")
    return 0 if _healthy(report) else 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
