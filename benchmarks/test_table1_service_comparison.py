"""Table 1: BoD service vision — today's reality vs the GRIPhoN proposal.

The paper's Table 1 is qualitative; we quantify each of its four rows by
actually running both worlds:

* provisioning time: manual weeks vs automated ~1 minute;
* rate configurability: today's <= 622 Mbps circuit BoD vs GRIPhoN's
  1 G - 40 G range on one platform;
* outage time after a fiber cut: manual 4-12 h, 1+1 ~50 ms (at 2x
  cost), GRIPhoN automated re-provisioning ~1 minute;
* maintenance impact: uncoordinated window vs bridge-and-roll ~50 ms.
"""

import statistics

import pytest

from benchmarks.harness import print_rows
from repro.baselines import ManualOperations
from repro.core.connection import ConnectionState
from repro.facade import build_griphon_testbed
from repro.sim import RandomStreams
from repro.units import HOUR, MINUTE, WEEK, format_duration, mbps


def run_comparison():
    streams = RandomStreams(21)
    manual = ManualOperations(streams)
    results = {}

    # Row 1+2: provisioning / rate range.
    results["manual_provisioning_s"] = statistics.fmean(
        manual.provisioning_time() for _ in range(10)
    )
    setups = []
    for i in range(5):
        net = build_griphon_testbed(seed=50 + i)
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        assert conn.state is ConnectionState.UP
        setups.append(conn.setup_duration)
    results["griphon_provisioning_s"] = statistics.fmean(setups)
    results["today_max_bod_rate_bps"] = mbps(622)

    # GRIPhoN rate range: smallest sub-wavelength to largest wavelength.
    net = build_griphon_testbed(seed=60)
    rates = net.controller.wavelength_rates()
    results["griphon_min_rate_bps"] = 1e9
    results["griphon_max_rate_bps"] = max(rates)

    # Row 3: outage after a fiber cut.
    results["manual_restore_s"] = statistics.fmean(
        manual.restoration_time() for _ in range(10)
    )
    outages = []
    for i in range(5):
        net = build_griphon_testbed(seed=70 + i)
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        net.controller.cut_link(lightpath.path[0], lightpath.path[1])
        net.run()
        assert conn.state is ConnectionState.UP
        outages.append(conn.total_outage_s)
    results["griphon_restore_s"] = statistics.fmean(outages)
    results["one_plus_one_restore_s"] = 0.050

    # Row 4: maintenance impact.
    results["manual_maintenance_impact_s"] = manual.maintenance_impact(4 * HOUR)
    hits = []
    for i in range(5):
        net = build_griphon_testbed(seed=80 + i)
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        net.maintenance.schedule(
            lightpath.path[0], lightpath.path[1], start_in=900,
            duration=4 * HOUR,
        )
        net.run()
        hits.append(conn.total_outage_s)
    results["griphon_maintenance_impact_s"] = statistics.fmean(hits)
    return results


def test_table1_service_comparison(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = [
        ["dimension", "today's reality", "GRIPhoN"],
        [
            "provisioning time",
            format_duration(results["manual_provisioning_s"]),
            format_duration(results["griphon_provisioning_s"]),
        ],
        [
            "configurable rates",
            "<= 622 Mbps",
            "1 Gbps - 40 Gbps (one platform)",
        ],
        [
            "outage after fiber cut",
            format_duration(results["manual_restore_s"]) + " (manual)",
            format_duration(results["griphon_restore_s"])
            + " (auto; 1+1: "
            + format_duration(results["one_plus_one_restore_s"])
            + " at 2x cost)",
        ],
        [
            "maintenance impact",
            format_duration(results["manual_maintenance_impact_s"]),
            format_duration(results["griphon_maintenance_impact_s"]),
        ],
    ]
    print_rows("Table 1: service vision vs reality vs GRIPhoN", rows)
    benchmark.extra_info.update(
        {k: v for k, v in results.items() if isinstance(v, float)}
    )

    # Provisioning: weeks vs about a minute (>1000x gap).
    assert results["manual_provisioning_s"] >= 2 * WEEK
    assert results["griphon_provisioning_s"] < 2 * MINUTE
    assert (
        results["manual_provisioning_s"] / results["griphon_provisioning_s"]
        > 1000
    )
    # Rates: GRIPhoN's ceiling is ~64x today's BoD ceiling.
    assert results["griphon_max_rate_bps"] > 60 * results["today_max_bod_rate_bps"]
    # Restoration: hours (manual) vs about a minute (GRIPhoN) vs ms (1+1).
    assert results["manual_restore_s"] >= 4 * HOUR
    assert results["griphon_restore_s"] < 3 * MINUTE
    assert results["one_plus_one_restore_s"] < 0.1
    assert (
        results["one_plus_one_restore_s"]
        < results["griphon_restore_s"]
        < results["manual_restore_s"]
    )
    # Maintenance: a 4 h window hurts for 4 h today, ~50 ms with GRIPhoN.
    assert results["manual_maintenance_impact_s"] == pytest.approx(4 * HOUR)
    assert results["griphon_maintenance_impact_s"] < 0.1
