"""X1: restoration-time comparison across mechanisms.

The paper's claims (§1, Table 1): for low-rate services restoration is
milliseconds (SONET APS; OTN shared mesh is sub-second); for full
wavelengths today the choices are expensive 1+1 (milliseconds, double
cost) or manual repair (4-12 hours); GRIPhoN adds automated wavelength
re-provisioning in about a minute at no standing resource cost.
"""

import statistics

from benchmarks.harness import print_rows
from repro.baselines import ManualOperations, OnePlusOneProtection
from repro.core.connection import ConnectionState
from repro.facade import build_griphon_testbed
from repro.legacy import SonetRing
from repro.legacy.sonet import PROTECTION_SWITCH_TIME_S
from repro.sim import RandomStreams
from repro.units import HOUR, MINUTE, format_duration


def measure_sonet():
    ring = SonetRing("r", ["A", "B", "C", "D"], line_sts=48)
    circuit = ring.provision("A", "B", sts=3)
    switched = ring.fail_span(circuit.spans[0])
    assert switched
    return PROTECTION_SWITCH_TIME_S


def measure_otn_mesh(samples=5):
    outages = []
    for i in range(samples):
        net = build_griphon_testbed(seed=300 + i, latency_cv=0.0)
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 1)
        net.run()
        circuit = net.inventory.circuits[conn.circuit_ids[0]]
        line = net.inventory.otn_lines[circuit.line_ids[0]]
        lightpath = net.inventory.lightpaths[
            net.controller._line_lightpath[line.line_id]
        ]
        net.controller.cut_link(lightpath.path[0], lightpath.path[1])
        net.run()
        outages.append(conn.total_outage_s)
    return statistics.fmean(outages)


def measure_one_plus_one(samples=5):
    outages = []
    for i in range(samples):
        net = build_griphon_testbed(seed=320 + i, latency_cv=0.0)
        protection = OnePlusOneProtection(
            net.inventory, net.controller.rwa, net.controller.provisioner
        )
        pair = protection.claim_pair("ROADM-I", "ROADM-IV", 10e9)
        net.inventory.plant.cut_link(pair.working.path[0], pair.working.path[1])
        outages.append(protection.on_failure(pair))
    return statistics.fmean(outages)


def measure_griphon(samples=5):
    outages = []
    for i in range(samples):
        net = build_griphon_testbed(seed=340 + i)
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        net.controller.cut_link(lightpath.path[0], lightpath.path[1])
        net.run()
        assert conn.state is ConnectionState.UP
        outages.append(conn.total_outage_s)
    return statistics.fmean(outages)


def measure_manual(samples=10):
    manual = ManualOperations(RandomStreams(55))
    return statistics.fmean(manual.restoration_time() for _ in range(samples))


def measure_ip_reroute(samples=5):
    outages = []
    for i in range(samples):
        net = build_griphon_testbed(seed=380 + i, latency_cv=0.0)
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 0.5)
        net.run()
        evc = net.controller.ip_layer.evcs[0]
        net.controller.cut_link(evc.path[0], evc.path[1])
        net.run()
        outages.append(conn.total_outage_s)
    return statistics.fmean(outages)


def test_x1_restoration_comparison(benchmark):
    def run():
        return {
            "SONET APS (legacy, low-rate)": measure_sonet(),
            "IP/EVC reroute (packet, <1G)": measure_ip_reroute(),
            "OTN shared mesh (GRIPhoN sub-wavelength)": measure_otn_mesh(),
            "1+1 protection (2x cost)": measure_one_plus_one(),
            "GRIPhoN wavelength re-provisioning": measure_griphon(),
            "manual repair (today's unprotected wavelength)": measure_manual(),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["mechanism", "mean outage"]]
    for name, outage in results.items():
        rows.append([name, format_duration(outage)])
    print_rows("X1: restoration time by mechanism", rows)
    benchmark.extra_info.update(
        {name: outage for name, outage in results.items()}
    )

    sonet = results["SONET APS (legacy, low-rate)"]
    ip = results["IP/EVC reroute (packet, <1G)"]
    mesh = results["OTN shared mesh (GRIPhoN sub-wavelength)"]
    opo = results["1+1 protection (2x cost)"]
    griphon = results["GRIPhoN wavelength re-provisioning"]
    manual = results["manual repair (today's unprotected wavelength)"]

    # Orders of magnitude, exactly as the paper lays them out.
    assert sonet < 1.0
    assert ip < 1.0
    assert mesh < 1.0
    assert opo < 0.1
    assert MINUTE / 2 < griphon < 3 * MINUTE
    assert 4 * HOUR <= manual <= 12 * HOUR
    # GRIPhoN restoration is "not as fast as 1+1" but "far faster than
    # repair of the underlying fault".
    assert opo < griphon < manual
    assert manual / griphon > 100


def test_x1_srlg_cut_hits_multiple_connections(benchmark):
    """A conduit cut (shared SRLG) takes down several links at once;
    restoration must avoid the whole risk group."""

    def run():
        net = build_griphon_testbed(seed=360, latency_cv=0.0)
        svc = net.service_for("csp")
        first = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        second = svc.request_connection("PREMISES-A", "PREMISES-B", 10)
        net.run()
        net.controller.cut_srlg("srlg:ROADM-I=ROADM-IV")
        net.run()
        return net, first, second

    net, first, second = benchmark.pedantic(run, rounds=1, iterations=1)
    assert first.state is ConnectionState.UP
    assert second.state is ConnectionState.UP
    for conn in (first, second):
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        links = {tuple(sorted(p)) for p in zip(lightpath.path, lightpath.path[1:])}
        assert ("ROADM-I", "ROADM-IV") not in links
