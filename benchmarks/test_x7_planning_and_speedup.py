"""X7: resource planning validation and the DWDM speedup frontier.

Two §4 research-challenge studies:

* **planning**: size the transponder pools with the Erlang-B planner,
  then drive the simulated network with the forecast load and check the
  realized blocking honors the target — while a half-sized pool visibly
  violates it ("accurate planning far more critical");
* **DWDM layer management**: the paper stresses the 60-70 s setup "is
  not constrained by any fundamental limitations"; we sweep a vendor
  speedup factor over the EMS/optical steps and chart the establishment
  time frontier down to seconds.
"""

from benchmarks.harness import print_rows
from repro.core.connection import ConnectionState
from repro.core.planning import DemandForecast, ResourcePlanner
from repro.ems.latency import LatencyModel
from repro.facade import build_griphon_testbed
from repro.sim import Process
from repro.units import HOUR, gbps


def drive_forecast_load(net, pairs, arrivals_per_hour, hold_hours, requests):
    """Offer Poisson-ish load matching the forecast; return blocking."""
    svc = net.service_for(
        "csp", max_connections=256, max_total_rate_gbps=100000
    )
    gap = 3600.0 / (arrivals_per_hour * len(pairs))
    blocked = 0
    for index in range(requests):
        a, b = pairs[index % len(pairs)]
        conn = svc.request_connection(a, b, 10)
        if conn.state is ConnectionState.BLOCKED:
            blocked += 1
        else:
            net.sim.schedule(
                hold_hours * HOUR, svc.teardown_connection, conn.connection_id
            )
        net.run(until=net.sim.now + gap)
    net.run()
    return blocked / requests


def run_planning_validation():
    pairs = [
        ("PREMISES-A", "PREMISES-B"),
        ("PREMISES-A", "PREMISES-C"),
        ("PREMISES-B", "PREMISES-C"),
    ]
    pops = {
        "PREMISES-A": "ROADM-I",
        "PREMISES-B": "ROADM-III",
        "PREMISES-C": "ROADM-IV",
    }
    arrivals_per_hour = 2.0  # per pair
    hold_hours = 1.0
    forecasts = [
        DemandForecast(pops[a], pops[b], arrivals_per_hour, hold_hours)
        for a, b in pairs
    ]
    net_for_graph = build_griphon_testbed(seed=0)
    planner = ResourcePlanner(net_for_graph.inventory.graph)
    pools = planner.size_pools(
        forecasts, target_blocking=0.02, restoration_headroom=0
    )
    planned_size = max(pools.values())

    realized = {}
    for label, size in (
        ("planned", planned_size),
        ("half-planned", max(1, planned_size // 2)),
    ):
        net = build_griphon_testbed(
            seed=740,
            latency_cv=0.0,
            ots_per_node_10g=size,
            nte_interfaces=16,
        )
        realized[label] = drive_forecast_load(
            net, pairs, arrivals_per_hour, hold_hours, requests=60
        )
    return planned_size, realized


def test_x7_planning_validation(benchmark):
    planned_size, realized = benchmark.pedantic(
        run_planning_validation, rounds=1, iterations=1
    )
    rows = [
        ["pool sizing", "OTs/node", "realized blocking"],
        ["Erlang-B planned (2% target)", str(planned_size),
         f"{realized['planned']:.1%}"],
        ["half the plan", str(max(1, planned_size // 2)),
         f"{realized['half-planned']:.1%}"],
    ]
    print_rows("X7: planner-sized pools vs realized blocking", rows)
    benchmark.extra_info.update(realized)

    # The planned pool keeps blocking near the target; note the sim's
    # deterministic arrival pattern is burstier than Poisson, so allow
    # modest slack above the 2% design point.
    assert realized["planned"] <= 0.10
    # Halving the pool visibly violates the target.
    assert realized["half-planned"] > realized["planned"]
    assert realized["half-planned"] > 0.10


def run_speedup_sweep():
    results = {}
    for speedup in (1, 2, 5, 10, 30):
        net = build_griphon_testbed(seed=760, latency_cv=0.0)
        fast = LatencyModel(net.streams, cv=0.0, speedup=float(speedup))
        net.controller.set_latency_model(fast)
        plan = net.controller.rwa.plan("ROADM-I", "ROADM-IV", gbps(10))
        lightpath = net.controller.provisioner.claim(plan)
        start = net.sim.now
        Process(net.sim, net.controller.provisioner.setup_workflow(lightpath))
        net.run()
        results[speedup] = net.sim.now - start
    return results


def test_x7_dwdm_speedup_frontier(benchmark):
    results = benchmark.pedantic(run_speedup_sweep, rounds=1, iterations=1)
    rows = [["vendor speedup", "establishment time (s)"]]
    for speedup, seconds in sorted(results.items()):
        rows.append([f"{speedup}x", f"{seconds:.2f}"])
    print_rows("X7: DWDM-layer speedup frontier (setup time)", rows)
    from repro.metrics import bar_chart

    print(
        bar_chart(
            [(f"{k}x", round(v, 2)) for k, v in sorted(results.items())],
            unit=" s",
        )
    )
    benchmark.extra_info.update({str(k): v for k, v in results.items()})

    ordered = [results[k] for k in sorted(results)]
    assert ordered == sorted(ordered, reverse=True)
    # Amplifier-settle physics (the `extra` term) does not scale with
    # vendor software, so the curve flattens above ~x30 rather than
    # reaching zero: "the entire system's dynamics [must] be considered".
    assert results[1] / results[30] < 31
    # The floor is the unscaled amplifier settle plus residual steps.
    assert results[30] > 0.3
