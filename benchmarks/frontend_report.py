"""Service-frontend load report: emits ``BENCH_frontend.json``.

Two experiment families over the async frontend
(:class:`~repro.frontend.BodFrontend` on the Fig. 4 testbed):

* **customer scale** — open-loop Zipf fleets of 10k / 100k / 1M
  simulated customers submitting through the edge, measuring sustained
  orders/sec (wall-clock processing rate) and the p99 frontend-submit →
  ACTIVE latency;
* **overload curve** — the same fleet at 1x..100x of a baseline
  arrival rate, measuring the shed/throttle split and proving the
  headline acceptance claim: under 10x overload the edge sheds with
  typed rejections while the *admitted*-order p99 stays within 2x of
  the unloaded run and the queue-depth gauge never exceeds its bound.

Active connections are torn down as soon as they come up, so the
backend cycles capacity and order-to-ACTIVE latency stays meaningful at
every load point.

Determinism: everything except the ``wall_clock`` section is a pure
function of the seed; the report carries a sha256 fingerprint over that
deterministic part, so two runs (or two machines) can be compared
byte-for-byte.

Usage::

    PYTHONPATH=src python benchmarks/frontend_report.py [output.json]
"""

from __future__ import annotations

import hashlib
import json
import sys
import time
from pathlib import Path
from typing import Dict, List

from repro import api
from repro.facade import build_griphon_testbed
from repro.frontend.clients import ClientFleet
from repro.workload.tenants import TenantPopulation

#: Customer-population tiers (the headline scale axis).
CUSTOMER_TIERS = (10_000, 100_000, 1_000_000)

#: Overload multipliers over ``BASE_RATE`` for the shed-rate curve.
OVERLOAD_FACTORS = (1, 2, 5, 10, 20, 50, 100)

#: Baseline (1x) open-loop arrival rate, submissions per sim-second.
BASE_RATE = 10.0

#: Sim-seconds of arrivals per measured run.
DURATION_S = 30.0

#: Default output path: the repository root.
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_frontend.json"


def _p99(samples: List[float]) -> float:
    ordered = sorted(samples)
    if not ordered:
        return float("nan")
    return ordered[max(0, int(len(ordered) * 0.99) - 1)]


def run_load(
    seed: int,
    customers: int,
    arrival_rate: float,
    duration_s: float = DURATION_S,
    burst_interval: float = None,
) -> Dict[str, object]:
    """One frontend load run; returns deterministic measurements.

    ``burst_interval`` turns the fleet into a thundering herd (all of a
    window's arrivals land on one instant) — the arrival shape that
    pressures the bounded queue.  The ``wall_s`` key (wall-clock
    seconds of the sim run) is the only nondeterministic value and is
    split out by the caller.
    """
    net = build_griphon_testbed(seed=seed, latency_cv=0.0)
    # A tight shed band (48/16 over a 64-deep queue) so the overload
    # curve shows the hysteresis machine engaging, not just the bucket.
    frontend = net.enable_frontend(
        queue_capacity=64, shed_high=48, shed_low=16,
        round_interval=0.01, bucket_rate=1.0, bucket_burst=8.0,
    )
    population = TenantPopulation(customers)
    max_depth = {"value": 0}

    def watch(ticket, event):
        if event == "admitted":
            max_depth["value"] = max(max_depth["value"], frontend.queue_depth())
        elif event == "active" and ticket.order_ticket is not None:
            # Cycle capacity: release the connection right after it is
            # up — scheduled, so the Active outcome resolves first.
            net.sim.schedule(
                0.0, frontend._intake.teardown, ticket.order_ticket
            )

    frontend.add_listener(watch)
    fleet = ClientFleet(
        frontend,
        population,
        net.controller.admission,
        premises=["PREMISES-A", "PREMISES-B", "PREMISES-C"],
        streams=net.streams.spawn("fleet"),
        arrival_rate=arrival_rate,
        duration=duration_s,
        burst_interval=burst_interval,
    )
    scheduled = fleet.start()
    start = time.perf_counter()
    events = net.run()
    wall_s = time.perf_counter() - start
    counters = net.metrics.counters()
    submitted = counters.get("frontend.submitted", 0.0)
    shed = counters.get("frontend.shed", 0.0)
    throttled = counters.get("frontend.throttled", 0.0)
    admitted = counters.get("frontend.admitted", 0.0)
    rejected_typed = all(
        isinstance(t.outcome, api.TERMINAL_OUTCOMES)
        for t in fleet.tickets
        if t.rejected
    )
    return {
        "customers": customers,
        "arrival_rate": arrival_rate,
        "duration_s": duration_s,
        "scheduled": scheduled,
        "submitted": submitted,
        "admitted": admitted,
        "shed": shed,
        "throttled": throttled,
        "active": counters.get("frontend.active", 0.0),
        "shed_rate": shed / submitted if submitted else 0.0,
        "throttle_rate": throttled / submitted if submitted else 0.0,
        "conserved": submitted == admitted + shed + throttled,
        "rejections_typed": rejected_typed,
        "registered_tenants": population.registered_count,
        "p99_order_to_active_s": _p99(fleet.stats.order_to_active),
        "max_queue_depth": max_depth["value"],
        "queue_capacity": frontend.capacity,
        "events": events,
        "wall_s": wall_s,
    }


def collect_measurements(seed: int = 2026) -> Dict[str, object]:
    """The full report: customer-scale tiers plus the overload curve."""
    tiers = []
    wall_clock = {"tiers": [], "overload": []}
    for customers in CUSTOMER_TIERS:
        run = run_load(seed, customers, arrival_rate=100.0)
        wall_s = run.pop("wall_s")
        tiers.append(run)
        wall_clock["tiers"].append(
            {
                "customers": customers,
                "wall_s": wall_s,
                "orders_per_sec_sustained": run["submitted"] / wall_s,
            }
        )
    overload = []
    for factor in OVERLOAD_FACTORS:
        run = run_load(seed, customers=10_000,
                       arrival_rate=BASE_RATE * factor,
                       burst_interval=1.0)
        wall_s = run.pop("wall_s")
        run["overload_factor"] = factor
        overload.append(run)
        wall_clock["overload"].append(
            {"overload_factor": factor, "wall_s": wall_s}
        )
    unloaded = overload[0]
    at_10x = next(r for r in overload if r["overload_factor"] == 10)
    acceptance = {
        "all_runs_conserved": all(
            r["conserved"] for r in tiers + overload
        ),
        "all_rejections_typed": all(
            r["rejections_typed"] for r in tiers + overload
        ),
        "sheds_under_10x": at_10x["shed"] + at_10x["throttled"] > 0,
        "p99_within_2x_unloaded": (
            at_10x["p99_order_to_active_s"]
            <= 2.0 * unloaded["p99_order_to_active_s"]
        ),
        "queue_depth_bounded": all(
            r["max_queue_depth"] <= r["queue_capacity"]
            for r in tiers + overload
        ),
    }
    return {
        "seed": seed,
        "topology": "testbed",
        "base_rate": BASE_RATE,
        "tiers": tiers,
        "overload_curve": overload,
        "acceptance": acceptance,
        "wall_clock": wall_clock,
    }


def fingerprint(results: Dict[str, object]) -> str:
    """sha256 over the deterministic part (wall clock excluded)."""
    deterministic = {
        key: value for key, value in results.items() if key != "wall_clock"
    }
    payload = json.dumps(deterministic, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()


def write_report(path: Path, results: Dict[str, object]) -> None:
    """Serialize the measurements (plus the fingerprint) as JSON."""
    report = {
        "benchmark": "frontend-load",
        "schema_version": 1,
        "fingerprint": fingerprint(results),
        **results,
    }
    path.write_text(json.dumps(report, indent=2) + "\n")


def main(argv: List[str]) -> int:
    output = Path(argv[1]) if len(argv) > 1 else DEFAULT_OUTPUT
    results = collect_measurements()
    write_report(output, results)
    for tier, wall in zip(results["tiers"], results["wall_clock"]["tiers"]):
        print(
            f"{tier['customers']:>9} customers: "
            f"{wall['orders_per_sec_sustained']:8.0f} orders/s sustained, "
            f"p99 order-to-ACTIVE {tier['p99_order_to_active_s']:6.2f}s, "
            f"{tier['registered_tenants']} tenants touched"
        )
    for run in results["overload_curve"]:
        print(
            f"  {run['overload_factor']:>3}x load: "
            f"shed {run['shed_rate']:6.1%}  "
            f"throttled {run['throttle_rate']:6.1%}  "
            f"p99 {run['p99_order_to_active_s']:6.2f}s  "
            f"max depth {run['max_queue_depth']}"
        )
    accepted = all(results["acceptance"].values())
    print(f"acceptance: {results['acceptance']} -> {accepted}")
    print(f"wrote {output}")
    return 0 if accepted else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
