"""X2: maintenance impact with and without bridge-and-roll.

"The bridge-and-roll results in an almost hitless movement of traffic
prior to scheduled maintenance" (§2.2).  We run the same 4-hour
maintenance window three ways and measure customer-visible outage:

* automated bridge-and-roll beforehand (GRIPhoN) — ~50 ms roll hit;
* no migration, automated restoration — about a minute of outage;
* no migration, no restoration (manual world) — the whole window.

A second benchmark checks the stated constraint: "the new wavelength
path has to be resource disjoint to the old path".
"""

import statistics

from benchmarks.harness import print_rows
from repro.core.connection import ConnectionState
from repro.errors import GriphonError
from repro.facade import build_griphon_testbed
from repro.units import HOUR, format_duration

WINDOW_S = 4 * HOUR


def impact_with_mode(seed, use_bridge_and_roll, auto_restore):
    net = build_griphon_testbed(
        seed=seed, latency_cv=0.0, auto_restore=auto_restore
    )
    svc = net.service_for("csp")
    conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
    net.run()
    lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
    net.maintenance.schedule(
        lightpath.path[0],
        lightpath.path[1],
        start_in=900,
        duration=WINDOW_S,
        use_bridge_and_roll=use_bridge_and_roll,
    )
    net.run()
    # In the manual world the outage ends when the window closes; make
    # sure accounting is closed out either way.
    if conn.outage_started_at is not None:
        conn.end_outage(net.sim.now)
    return conn.total_outage_s


def test_x2_maintenance_impact(benchmark):
    def run():
        modes = {
            "bridge-and-roll (GRIPhoN)": (True, True),
            "no migration, auto-restore": (False, True),
            "no migration, no restore (manual)": (False, False),
        }
        results = {}
        for name, (bridge, restore) in modes.items():
            samples = [
                impact_with_mode(400 + i, bridge, restore) for i in range(3)
            ]
            results[name] = statistics.fmean(samples)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["mode", "customer outage during 4 h window"]]
    for name, outage in results.items():
        rows.append([name, format_duration(outage)])
    print_rows("X2: maintenance impact", rows)
    benchmark.extra_info.update(results)

    bridge = results["bridge-and-roll (GRIPhoN)"]
    restore = results["no migration, auto-restore"]
    manual = results["no migration, no restore (manual)"]
    assert bridge < 0.1  # ~50 ms roll hit
    assert 30 < restore < 180  # a restoration's worth of outage
    assert manual >= WINDOW_S * 0.95  # the whole window hurts
    assert bridge < restore < manual
    # The paper's "almost hitless": 3+ orders of magnitude less impact.
    assert restore / bridge > 500


def test_x2_disjointness_constraint(benchmark):
    """Bridge-and-roll refuses a bridge that shares resources (links,
    nodes, SRLGs) with the old path; when no disjoint path exists the
    operation fails cleanly and the old path keeps carrying traffic."""

    def run():
        net = build_griphon_testbed(seed=420, latency_cv=0.0)
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        old = net.inventory.lightpaths[conn.lightpath_ids[0]]
        # Sever the alternatives so no disjoint bridge path exists.
        net.controller.auto_restore = False
        net.controller.cut_link("ROADM-I", "ROADM-III")
        net.controller.cut_link("ROADM-I", "ROADM-II")
        failed = None
        try:
            net.controller.bridge_and_roll(conn.connection_id)
        except GriphonError as exc:
            failed = str(exc)
        net.run()
        return net, conn, old, failed

    net, conn, old, failed = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows(
        "X2: disjointness constraint",
        [["bridge attempt"], [failed or "unexpectedly succeeded"]],
    )
    assert failed is not None
    # The original connection is untouched.
    assert conn.state is ConnectionState.UP
    assert conn.total_outage_s == 0.0
    assert conn.lightpath_ids == [old.lightpath_id]
