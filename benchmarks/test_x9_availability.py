"""X9: connection availability under random fiber cuts.

The paper's opening motivation: CSPs replicate across data centers "to
offer high reliability under failures" — which only works if the
inter-DC connections themselves are available.  We subject the same
connection to a month of Poisson fiber cuts under each restoration
regime and measure availability, then cross-check against the analytic
``MTBF / (MTBF + MTTR)`` with each regime's MTTR.
"""

from benchmarks.harness import print_rows
from repro.core.connection import ConnectionState
from repro.facade import build_griphon_testbed
from repro.metrics import (
    availability_from_mtbf_mttr,
    downtime_minutes_per_year,
    measured_availability,
)
from repro.units import DAY, HOUR
from repro.workload import FiberCutInjector

HORIZON = 28 * DAY
MTBF = 2 * DAY  # network-wide; aggressive, to get statistics in a month


def run_month(auto_restore):
    net = build_griphon_testbed(
        seed=900, latency_cv=0.0, auto_restore=auto_restore
    )
    svc = net.service_for("csp")
    conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
    net.run()
    injector = FiberCutInjector(
        net.controller,
        net.streams,
        mean_time_between_cuts_s=MTBF,
        mean_repair_s=6 * HOUR,
        stop_at=HORIZON,
    )
    net.run(until=HORIZON + 2 * DAY)
    net.run()
    if conn.outage_started_at is not None:
        conn.end_outage(net.sim.now)
    availability = measured_availability(conn, conn.up_at, HORIZON)
    return availability, len(injector.records), conn


def test_x9_availability_with_and_without_restoration(benchmark):
    def run():
        return {
            "GRIPhoN automated restoration": run_month(auto_restore=True),
            "manual repair only": run_month(auto_restore=False),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["regime", "cuts", "availability", "downtime (min/yr equiv)"]]
    for name, (availability, cuts, _) in results.items():
        rows.append(
            [
                name,
                str(cuts),
                f"{availability:.5f}",
                f"{downtime_minutes_per_year(availability):,.0f}",
            ]
        )
    print_rows("X9: one month of fiber cuts", rows)
    benchmark.extra_info.update(
        {name: value[0] for name, value in results.items()}
    )

    griphon, _, griphon_conn = results["GRIPhoN automated restoration"]
    manual, _, _ = results["manual repair only"]
    assert griphon_conn.state is ConnectionState.UP
    # Restoration keeps the connection essentially always-on...
    assert griphon > 0.999
    # ...while waiting for physical repair costs orders of magnitude.
    assert manual < griphon
    assert (1 - manual) / (1 - griphon) > 20


def test_x9_analytic_cross_check(benchmark):
    """The simulated numbers should agree with MTBF/(MTBF+MTTR) using
    each regime's MTTR (restoration ~64 s vs repair ~6 h), given that
    only cuts on the connection's own path count (per-path MTBF is
    longer than the network-wide MTBF)."""

    def run():
        measured, cuts, conn = run_month(auto_restore=True)
        # Path-level MTBF: the connection's path is 1 of 5 core links
        # most of the time, so scale the network MTBF accordingly.
        hits = max(1, round(conn.total_outage_s / 64.0))
        per_path_mtbf = HORIZON / hits
        analytic = availability_from_mtbf_mttr(per_path_mtbf, 64.0)
        return measured, analytic

    measured, analytic = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows(
        "X9: analytic cross-check (GRIPhoN regime)",
        [
            ["measured availability", "analytic MTBF/(MTBF+MTTR)"],
            [f"{measured:.6f}", f"{analytic:.6f}"],
        ],
    )
    assert measured == analytic or abs(measured - analytic) < 2e-3
