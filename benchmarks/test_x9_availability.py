"""X9: connection availability under random fiber cuts.

The paper's opening motivation: CSPs replicate across data centers "to
offer high reliability under failures" — which only works if the
inter-DC connections themselves are available.  We subject the same
connection to a month of Poisson fiber cuts under each restoration
regime and measure availability, then cross-check against the analytic
``MTBF / (MTBF + MTTR)`` with each regime's MTTR.

The study is now a Monte Carlo: four independent seeds per regime,
declared as a :class:`~repro.sweep.spec.SweepSpec` and driven through
the scale-out sweep engine (``griphon sweep x9 --jobs N`` regenerates
it from a shell; ``benchmarks/sweep_report.py`` measures the
serial-versus-parallel wall-clock on the same spec).
"""

from benchmarks.harness import print_rows
from repro.metrics import availability_from_mtbf_mttr, downtime_minutes_per_year
from repro.sweep import run_sweep, x9_availability_spec
from repro.units import DAY

HORIZON = 28 * DAY
REPEATS = 4

#: Restoration MTTR (seconds) for the analytic cross-check.
RESTORE_MTTR_S = 64.0


def run_study(jobs: int = 1):
    return run_sweep(
        x9_availability_spec(repeats=REPEATS, horizon_s=HORIZON), jobs=jobs
    )


def test_x9_availability_with_and_without_restoration(benchmark):
    result = benchmark.pedantic(run_study, rounds=1, iterations=1)
    assert not result.failed, [r.error for r in result.failed]
    grouped = result.grouped_values()
    griphon = grouped["auto_restore=True"]
    manual = grouped["auto_restore=False"]

    rows = [["regime", "cuts", "availability", "downtime (min/yr equiv)"]]
    for name, means in (
        ("GRIPhoN automated restoration", griphon),
        ("manual repair only", manual),
    ):
        rows.append(
            [
                name,
                f"{means['cuts']:.1f}",
                f"{means['availability']:.5f}",
                f"{downtime_minutes_per_year(means['availability']):,.0f}",
            ]
        )
    print_rows(
        f"X9: one month of fiber cuts ({REPEATS} seeds/regime)", rows
    )
    benchmark.extra_info.update(
        {
            "griphon": griphon["availability"],
            "manual": manual["availability"],
        }
    )

    # Every restoration trial ends with the connection up.
    restore_trials = [
        r for r in result.results if r.params["auto_restore"]
    ]
    assert all(r.values["up"] for r in restore_trials)
    # Restoration keeps the connection essentially always-on...
    assert griphon["availability"] > 0.999
    # ...while waiting for physical repair costs orders of magnitude.
    assert manual["availability"] < griphon["availability"]
    ratio = (1 - manual["availability"]) / (1 - griphon["availability"])
    assert ratio > 20


def test_x9_analytic_cross_check(benchmark):
    """The simulated numbers should agree with MTBF/(MTBF+MTTR) using
    each regime's MTTR (restoration ~64 s vs repair ~6 h), given that
    only cuts on the connection's own path count (per-path MTBF is
    longer than the network-wide MTBF)."""

    def run():
        result = run_study()
        checks = []
        for trial in result.results:
            if not trial.params["auto_restore"]:
                continue
            measured = trial.values["availability"]
            # Path-level MTBF: infer how many cuts actually hit the
            # connection's path from its total outage.
            hits = max(
                1, round(trial.values["total_outage_s"] / RESTORE_MTTR_S)
            )
            per_path_mtbf = HORIZON / hits
            analytic = availability_from_mtbf_mttr(
                per_path_mtbf, RESTORE_MTTR_S
            )
            checks.append((trial.trial_id, measured, analytic))
        return checks

    checks = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["trial", "measured", "analytic MTBF/(MTBF+MTTR)"]]
    for trial_id, measured, analytic in checks:
        rows.append([trial_id, f"{measured:.6f}", f"{analytic:.6f}"])
    print_rows("X9: analytic cross-check (GRIPhoN regime)", rows)
    assert checks
    for trial_id, measured, analytic in checks:
        assert measured == analytic or abs(measured - analytic) < 2e-3, trial_id
