"""Fig. 4 / §3: the GRIPhoN testbed and its headline measurements.

The testbed demonstration: wavelength connection establishment in
60-70 seconds ("orders of magnitude better than today's provisioning
time in the DWDM layer"), teardown in about 10 seconds, and a VoD
content-replication scenario across the three customer premises.
"""

import statistics

from benchmarks.harness import print_rows
from repro.core.connection import ConnectionState
from repro.facade import build_griphon_testbed
from repro.topo.testbed import TESTBED_PREMISES
from repro.units import WEEK, terabytes, transfer_time


def run_setup_teardown(iterations=10):
    setups, teardowns = [], []
    for i in range(iterations):
        net = build_griphon_testbed(seed=100 + i)
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        assert conn.state is ConnectionState.UP
        setups.append(conn.setup_duration)
        start = net.sim.now
        svc.teardown_connection(conn.connection_id)
        net.run()
        teardowns.append(net.sim.now - start)
    return setups, teardowns


def test_fig4_setup_60_to_70s_teardown_10s(benchmark):
    setups, teardowns = benchmark.pedantic(
        run_setup_teardown, rounds=1, iterations=1
    )
    rows = [
        ["measurement", "paper", "measured mean (s)"],
        ["wavelength establishment", "60-70 s", f"{statistics.fmean(setups):.2f}"],
        ["wavelength teardown", "~10 s", f"{statistics.fmean(teardowns):.2f}"],
    ]
    print_rows("Fig. 4 testbed: setup and teardown", rows)
    benchmark.extra_info["setup_mean_s"] = statistics.fmean(setups)
    benchmark.extra_info["teardown_mean_s"] = statistics.fmean(teardowns)
    # "ranges from 60 to 70 seconds" for the testbed's own paths; our
    # premises-attached paths add the FXC legs, so allow a little slack.
    assert 58 <= statistics.fmean(setups) <= 75
    assert all(55 <= s <= 80 for s in setups)
    # "Tearing down a wavelength connection takes around 10 seconds."
    assert 8 <= statistics.fmean(teardowns) <= 15
    # "orders of magnitude better than today's provisioning time".
    assert statistics.fmean(setups) < (2 * WEEK) / 1000


def test_fig4_forty_gig_upgrade_path(benchmark):
    """The testbed ran 'currently at 10 Gbps, with plans to go to
    40 Gbps'.  Establishment time is set by EMS/optical steps, not line
    rate, so a 40G wavelength comes up in the same 60-70 s band."""

    def run():
        times = {}
        for rate in (10, 40):
            net = build_griphon_testbed(seed=150, latency_cv=0.0)
            svc = net.service_for("csp")
            conn = svc.request_connection("PREMISES-A", "PREMISES-C", rate)
            net.run()
            assert conn.state is ConnectionState.UP
            times[rate] = conn.setup_duration
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows(
        "Fig. 4: establishment time by line rate",
        [
            ["line rate", "establishment (s)"],
            ["10 Gbps", f"{times[10]:.2f}"],
            ["40 Gbps", f"{times[40]:.2f}"],
        ],
    )
    assert 58 <= times[40] <= 75
    # Rate independence: the 40G setup is within a second of the 10G one.
    assert abs(times[40] - times[10]) < 1.0


def run_vod_replication():
    """The testbed's application: VoD content replication across the
    three premises.  Replicate a 40 TB library from PREMISES-A to both
    other sites over 10G connections, then release the capacity."""
    net = build_griphon_testbed(seed=200, latency_cv=0.0)
    svc = net.service_for("vod-provider")
    library_bits = terabytes(40)
    destinations = [p for p in TESTBED_PREMISES if p != "PREMISES-A"]
    connections = [
        svc.request_connection("PREMISES-A", dst, 10) for dst in destinations
    ]
    net.run()
    events = []
    for conn in connections:
        assert conn.state is ConnectionState.UP
        duration = transfer_time(library_bits, conn.rate_bps)
        net.sim.schedule(
            duration,
            lambda c=conn: events.append(
                svc.teardown_connection(c.connection_id)
            ),
        )
    net.run()
    return net, connections, library_bits


def test_fig4_vod_replication_scenario(benchmark):
    net, connections, library_bits = benchmark.pedantic(
        run_vod_replication, rounds=1, iterations=1
    )
    hours = net.sim.now / 3600
    print_rows(
        "Fig. 4: VoD replication A -> {B, C}",
        [
            ["replicas", "library", "wall-clock (h)"],
            [str(len(connections)), "40 TB", f"{hours:.2f}"],
        ],
    )
    assert all(c.state is ConnectionState.RELEASED for c in connections)
    # 40 TB at 10G is ~8.9 h; both replicas run in parallel.
    assert 8.5 <= hours <= 10.0
    # All capacity returned: no lightpaths remain.
    assert net.inventory.lightpaths == {}
