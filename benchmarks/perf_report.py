"""RWA fast-path perf report: emits ``BENCH_rwa.json``.

Measures per-call latency of :meth:`RwaEngine.plan` on the Fig. 4
testbed and on generated 16/32-PoP Waxman backbones, cold (route cache
disabled, every call pays Yen's k-shortest-paths) versus warm (cache
enabled and primed).  The JSON file gives future PRs a perf trajectory
to compare against.

Usage::

    PYTHONPATH=src python benchmarks/perf_report.py [output.json]

The measurement helpers are also imported by
``benchmarks/test_perf_rwa.py`` so the perf assertions and the report
share one methodology.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.core.inventory import InventoryDatabase
from repro.core.rwa import RwaEngine
from repro.errors import NoPathError, WavelengthBlockedError
from repro.sim.randomness import RandomStreams
from repro.topo.generator import generate_backbone
from repro.topo.graph import NetworkGraph
from repro.topo.testbed import build_testbed_graph
from repro.units import GBPS

#: Line rate every measured plan() call requests.
RATE_BPS = 10 * GBPS

#: Default output path: the repository root.
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_rwa.json"


def build_graphs(seed: int = 2026) -> Dict[str, NetworkGraph]:
    """The three measured topologies, keyed by report name."""
    return {
        "fig4-testbed": build_testbed_graph(),
        "waxman-16pop": generate_backbone(
            RandomStreams(seed), node_count=16, plane_km=2000.0
        ),
        "waxman-32pop": generate_backbone(
            RandomStreams(seed + 1), node_count=32, plane_km=2000.0
        ),
    }


def demand_pairs(graph: NetworkGraph, count: int = 24) -> List[Tuple[str, str]]:
    """A deterministic cycle of ROADM source/destination pairs."""
    names = sorted(node.name for node in graph.nodes if node.kind == "roadm")
    pairs = []
    for index in range(count):
        a = names[index % len(names)]
        b = names[(index * 7 + 3) % len(names)]
        if a != b:
            pairs.append((a, b))
    return pairs


def time_plans(
    engine: RwaEngine, pairs: List[Tuple[str, str]], rounds: int
) -> float:
    """Mean wall-clock seconds per plan() call over ``rounds`` sweeps."""
    calls = 0
    start = time.perf_counter()
    for _ in range(rounds):
        for source, dest in pairs:
            try:
                engine.plan(source, dest, RATE_BPS)
            except (NoPathError, WavelengthBlockedError):
                pass
            calls += 1
    return (time.perf_counter() - start) / calls


def measure_topology(
    name: str,
    graph: NetworkGraph,
    cold_rounds: int = 3,
    warm_rounds: int = 10,
) -> Dict[str, object]:
    """Cold-vs-warm plan latency on one topology.

    Cold and warm engines share one inventory (all channels dark), so
    the only difference between the two measurements is the route cache.
    """
    inventory = InventoryDatabase(graph)
    pairs = demand_pairs(graph)

    cold_engine = RwaEngine(inventory, route_cache_size=0)
    cold = time_plans(cold_engine, pairs, cold_rounds)

    warm_engine = RwaEngine(inventory)
    time_plans(warm_engine, pairs, 1)  # prime the cache
    warm = time_plans(warm_engine, pairs, warm_rounds)

    stats = warm_engine.route_cache.stats()
    return {
        "topology": name,
        "nodes": len(graph.nodes),
        "links": len(graph.links),
        "pairs": len(pairs),
        "cold_us_per_plan": cold * 1e6,
        "warm_us_per_plan": warm * 1e6,
        "speedup": cold / warm,
        "warm_hit_rate": stats["hit_rate"],
    }


def collect_measurements(
    seed: int = 2026, cold_rounds: int = 3, warm_rounds: int = 10
) -> Dict[str, Dict[str, object]]:
    """Run every topology's measurement; keyed by topology name."""
    return {
        name: measure_topology(name, graph, cold_rounds, warm_rounds)
        for name, graph in build_graphs(seed).items()
    }


def write_report(path: Path, results: Dict[str, Dict[str, object]]) -> None:
    """Serialize the measurements (plus context) as JSON."""
    report = {
        "benchmark": "rwa-fast-path",
        "schema_version": 1,
        "rate_gbps": RATE_BPS / GBPS,
        "results": list(results.values()),
    }
    path.write_text(json.dumps(report, indent=2) + "\n")


def main(argv: List[str]) -> int:
    output = Path(argv[1]) if len(argv) > 1 else DEFAULT_OUTPUT
    results = collect_measurements()
    write_report(output, results)
    for row in results.values():
        print(
            f"{row['topology']:>14}: cold {row['cold_us_per_plan']:9.1f} us/plan, "
            f"warm {row['warm_us_per_plan']:7.1f} us/plan, "
            f"speedup {row['speedup']:6.1f}x"
        )
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
