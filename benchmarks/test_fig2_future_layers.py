"""Fig. 2: the carrier's *future* services and network layers.

The future stack replaces SONET/W-DCS with the OTN layer: guaranteed-
bandwidth transport is categorized by rate — below 1 Gbps rides the IP
layer as EVCs, 1 Gbps up to the wavelength rate rides the OTN
sub-wavelength layer, and wavelength-rate private lines ride DWDM
directly.  The OTN layer switches at ODU0 (1.25 Gbps) and packs
wavelengths more efficiently than muxponders.
"""

from benchmarks.harness import print_rows
from repro.core.connection import ConnectionKind
from repro.core.controller import decompose_rate
from repro.facade import build_griphon_testbed
from repro.units import GBPS, ODU_LEVELS, format_rate, gbps, mbps


def categorize(rate_bps, wavelength_rates):
    """The Fig. 2 service category for a guaranteed-bandwidth rate."""
    if rate_bps < 1 * GBPS:
        return "IP layer (EVC)"
    waves, circuits = decompose_rate(rate_bps, wavelength_rates)
    if waves and circuits:
        return "composite (DWDM + OTN)"
    if waves:
        return "DWDM layer (wavelength private line)"
    return "OTN layer (Ethernet private line)"


def run_categorization():
    net = build_griphon_testbed(seed=5)
    rates = net.controller.wavelength_rates()
    sample_rates = [mbps(200), gbps(1), gbps(4), gbps(10), gbps(12), gbps(40)]
    return {rate: categorize(rate, rates) for rate in sample_rates}


def test_fig2_service_categorization(benchmark):
    mapping = benchmark.pedantic(run_categorization, rounds=1, iterations=1)
    rows = [["guaranteed-bandwidth rate", "future layer"]]
    for rate, layer in mapping.items():
        rows.append([format_rate(rate), layer])
    print_rows("Fig. 2: future services -> network layers", rows)
    assert mapping[mbps(200)] == "IP layer (EVC)"
    assert mapping[gbps(1)] == "OTN layer (Ethernet private line)"
    assert mapping[gbps(4)] == "OTN layer (Ethernet private line)"
    assert mapping[gbps(10)] == "DWDM layer (wavelength private line)"
    assert mapping[gbps(12)] == "composite (DWDM + OTN)"
    assert mapping[gbps(40)] == "DWDM layer (wavelength private line)"


def test_fig2_odu0_crossconnect_granularity(benchmark):
    """The OTN layer cross-connects at ODU0 = 1.25 Gbps carrying 1 GbE."""

    def run():
        net = build_griphon_testbed(seed=6, latency_cv=0.0)
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-B", 1)
        net.run()
        circuit = net.inventory.circuits[conn.circuit_ids[0]]
        return conn, circuit

    conn, circuit = benchmark.pedantic(run, rounds=1, iterations=1)
    assert conn.kind is ConnectionKind.SUBWAVELENGTH
    assert circuit.level.name == "ODU0"
    assert circuit.level.rate_bps == 1.25 * GBPS


def test_fig2_otn_subsecond_restoration(benchmark):
    """Fig. 2's OTN layer provides sub-second shared-mesh restoration
    'similar to today's SONET layer'."""

    def run():
        net = build_griphon_testbed(seed=7, latency_cv=0.0)
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 1)
        net.run()
        circuit = net.inventory.circuits[conn.circuit_ids[0]]
        line = net.inventory.otn_lines[circuit.line_ids[0]]
        lightpath_id = net.controller._line_lightpath[line.line_id]
        path = net.inventory.lightpaths[lightpath_id].path
        net.controller.cut_link(path[0], path[1])
        net.run()
        return conn

    conn = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows(
        "Fig. 2: OTN shared-mesh restoration",
        [["circuit outage (s)"], [f"{conn.total_outage_s:.3f}"]],
    )
    assert 0 < conn.total_outage_s < 1.0

    # ODU hierarchy sanity straight out of G.709.
    assert ODU_LEVELS["ODU0"].tributary_slots == 1
    assert ODU_LEVELS["ODU2"].tributary_slots == 8
