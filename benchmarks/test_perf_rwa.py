"""Perf microbenchmarks for the RWA fast path.

Cold (cache disabled) versus warm (generation-stamped route cache) plan
latency on the Fig. 4 testbed and on 16/32-PoP Waxman backbones — the
X10-style sweep scale.  The acceptance bar is a >= 3x warm-cache
speedup on the 32-PoP backbone; the property suite in
``tests/test_property_routecache.py`` separately proves cached and
uncached plans are identical.
"""

from benchmarks.harness import print_rows
from benchmarks.perf_report import (
    build_graphs,
    collect_measurements,
    demand_pairs,
    RATE_BPS,
)
from repro.core.inventory import InventoryDatabase
from repro.core.rwa import RwaEngine


def test_perf_rwa_cold_vs_warm(benchmark):
    results = benchmark.pedantic(
        lambda: collect_measurements(), rounds=1, iterations=1
    )

    rows = [["topology", "cold (us)", "warm (us)", "speedup", "hit rate"]]
    for row in results.values():
        rows.append(
            [
                row["topology"],
                f"{row['cold_us_per_plan']:.1f}",
                f"{row['warm_us_per_plan']:.1f}",
                f"{row['speedup']:.1f}x",
                f"{row['warm_hit_rate']:.0%}",
            ]
        )
    print_rows("RWA fast path: cold vs warm plan latency", rows)
    benchmark.extra_info.update(
        {name: row["speedup"] for name, row in results.items()}
    )

    # Every topology benefits; the 32-PoP backbone must clear the 3x bar.
    for row in results.values():
        assert row["speedup"] > 1.0, row
        assert row["warm_hit_rate"] > 0.5, row
    assert results["waxman-32pop"]["speedup"] >= 3.0, results["waxman-32pop"]


def test_perf_rwa_warm_plans_match_cold(benchmark):
    """The speedup is not bought with different answers."""

    def compare():
        mismatches = 0
        for graph in build_graphs().values():
            inventory = InventoryDatabase(graph)
            cached = RwaEngine(inventory)
            uncached = RwaEngine(inventory, route_cache_size=0)
            for source, dest in demand_pairs(graph):
                for _ in range(2):  # second sweep is a cache hit
                    if cached.plan(source, dest, RATE_BPS) != uncached.plan(
                        source, dest, RATE_BPS
                    ):
                        mismatches += 1
        return mismatches

    assert benchmark.pedantic(compare, rounds=1, iterations=1) == 0
