"""X3: OTN grooming vs muxponders — wavelength packing efficiency.

"Compared to using muxponders in the DWDM layer to provide
sub-wavelength connections, the OTN layer with its switching capability
can achieve more efficient packing of wavelengths" (§2.1).  Muxponders
are point-to-point: clients of *different* premises pairs can never
share a wavelength even when their routes overlap.  The OTN layer
switches ODU0s at every node, so circuits from different pairs pack
into the same wavelengths hop by hop.

We offer the same sub-wavelength demand set to both designs on the
backbone and count wavelengths consumed and average fill.
"""

import math
from collections import defaultdict

from benchmarks.harness import print_rows
from repro.core.grooming import GroomingEngine
from repro.core.inventory import InventoryDatabase
from repro.optical import WavelengthGrid
from repro.sim import RandomStreams
from repro.topo.backbone import build_backbone_graph
from repro.units import ODU_LEVELS

#: Sub-wavelength demand set: (src, dst, number of 1G circuits).  The
#: east-coast pairs share the NYC-DCA-ATL corridor, which is exactly
#: where grooming wins.
DEMANDS = [
    ("NYC", "ATL", 3),
    ("NYC", "DCA", 2),
    ("DCA", "ATL", 3),
    ("NYC", "MIA", 2),
    ("DCA", "MIA", 2),
    ("ATL", "MIA", 2),
    ("CHI", "ATL", 3),
    ("CHI", "STL", 2),
    ("STL", "ATL", 2),
]

MUXPONDER_CLIENTS_PER_WAVE = 10  # ten 1G clients on a 10G muxponder


def run_otn_grooming():
    """Route every demand through the OTN layer; count lines created."""
    inventory = InventoryDatabase(
        build_backbone_graph(with_data_centers=False), WavelengthGrid(80)
    )
    for node in list(inventory.graph.nodes):
        inventory.install_otn_switch(node.name, client_ports=64)

    def factory(a, b):
        return inventory.create_otn_line(a, b, level=ODU_LEVELS["ODU2"])

    engine = GroomingEngine(inventory, line_factory=factory)
    for src, dst, count in DEMANDS:
        for _ in range(count):
            engine.claim_circuit(src, dst, ODU_LEVELS["ODU0"])
    # Wavelength-links: each line spans one hop of the switch mesh.
    wavelength_links = len(inventory.otn_lines)
    fill = engine.mean_line_fill()
    return wavelength_links, fill


def run_muxponder_baseline():
    """Point-to-point muxponders: per-pair wavelengths, no sharing.

    Each pair needs ceil(n / 10) muxponder wavelengths, and each of
    those wavelengths occupies a channel on *every* hop of that pair's
    route — count wavelength-links for an apples-to-apples comparison.
    """
    graph = build_backbone_graph(with_data_centers=False)
    wavelength_links = 0
    used_capacity = 0.0
    provisioned = 0.0
    per_pair = defaultdict(int)
    for src, dst, count in DEMANDS:
        per_pair[(src, dst)] += count
    for (src, dst), clients in per_pair.items():
        waves = math.ceil(clients / MUXPONDER_CLIENTS_PER_WAVE)
        hops = len(graph.shortest_path(src, dst)) - 1
        wavelength_links += waves * hops
        used_capacity += clients * hops  # 1G-hops carried
        provisioned += waves * hops * MUXPONDER_CLIENTS_PER_WAVE
    fill = used_capacity / provisioned if provisioned else 0.0
    return wavelength_links, fill


def test_x3_grooming_efficiency(benchmark):
    def run():
        return run_otn_grooming(), run_muxponder_baseline()

    (otn_links, otn_fill), (mux_links, mux_fill) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        ["design", "wavelength-links lit", "mean fill"],
        ["OTN grooming (GRIPhoN)", str(otn_links), f"{otn_fill:.0%}"],
        ["muxponders (today)", str(mux_links), f"{mux_fill:.0%}"],
    ]
    print_rows("X3: wavelength packing efficiency", rows)
    benchmark.extra_info["otn_links"] = otn_links
    benchmark.extra_info["mux_links"] = mux_links

    # The paper's claim: OTN packs wavelengths more efficiently.
    assert otn_links < mux_links
    assert otn_fill > mux_fill
    # On this corridor-heavy demand set the win is substantial.
    assert mux_links / otn_links >= 1.5


def test_x3_ablation_no_grooming_fill(benchmark):
    """Ablation: first-fit (spread) vs best-fit (pack) line selection.

    Best-fit concentrates circuits on already-used wavelengths.  With
    spreading, adding a circuit per pair round-robins across lines and
    leaves every wavelength partly empty.
    """

    def run():
        inventory = InventoryDatabase(
            build_backbone_graph(with_data_centers=False), WavelengthGrid(80)
        )
        for node in list(inventory.graph.nodes):
            inventory.install_otn_switch(node.name, client_ports=64)

        def factory(a, b):
            return inventory.create_otn_line(a, b, level=ODU_LEVELS["ODU2"])

        engine = GroomingEngine(inventory, line_factory=factory)
        # Interleave demands so naive spreading would fragment.
        streams = RandomStreams(9)
        flattened = []
        for src, dst, count in DEMANDS:
            flattened.extend([(src, dst)] * count)
        order = sorted(
            flattened,
            key=lambda _: streams.uniform("x3:shuffle", 0, 1),
        )
        for src, dst in order:
            engine.claim_circuit(src, dst, ODU_LEVELS["ODU0"])
        return engine.wavelengths_consumed(), engine.mean_line_fill()

    links, fill = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows(
        "X3 ablation: best-fit packing under shuffled arrivals",
        [["lines", "mean fill"], [str(links), f"{fill:.0%}"]],
    )
    # Best-fit keeps consolidation even under shuffled arrival order.
    assert fill > 0.5
