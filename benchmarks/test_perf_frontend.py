"""Perf benchmark for the async service frontend under overload.

One unloaded run and one 10x thundering-herd run of the frontend load
harness (``benchmarks/frontend_report.py``'s methodology at reduced
duration).  The acceptance bars are the issue's headline claims: the
edge refuses with typed rejections under overload, the conservation law
holds, the queue-depth gauge stays bounded, and the admitted-order p99
order-to-ACTIVE at 10x stays within 2x of the unloaded run.
"""

from benchmarks.frontend_report import BASE_RATE, run_load
from benchmarks.harness import print_rows


def test_perf_frontend_overload(benchmark):
    def measure():
        unloaded = run_load(
            seed=2026, customers=10_000, arrival_rate=BASE_RATE,
            duration_s=20.0, burst_interval=1.0,
        )
        overloaded = run_load(
            seed=2026, customers=10_000, arrival_rate=BASE_RATE * 10,
            duration_s=20.0, burst_interval=1.0,
        )
        return unloaded, overloaded

    unloaded, overloaded = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    print_rows(
        "Frontend: unloaded vs 10x overload (10k tenants, testbed)",
        [
            ["load", "submitted", "admitted", "shed", "throttled", "p99 s"],
            [
                "1x",
                f"{unloaded['submitted']:.0f}",
                f"{unloaded['admitted']:.0f}",
                f"{unloaded['shed']:.0f}",
                f"{unloaded['throttled']:.0f}",
                f"{unloaded['p99_order_to_active_s']:.2f}",
            ],
            [
                "10x",
                f"{overloaded['submitted']:.0f}",
                f"{overloaded['admitted']:.0f}",
                f"{overloaded['shed']:.0f}",
                f"{overloaded['throttled']:.0f}",
                f"{overloaded['p99_order_to_active_s']:.2f}",
            ],
        ],
    )
    benchmark.extra_info.update(
        {
            "shed_rate_10x": overloaded["shed_rate"],
            "p99_unloaded_s": unloaded["p99_order_to_active_s"],
            "p99_10x_s": overloaded["p99_order_to_active_s"],
        }
    )

    for run in (unloaded, overloaded):
        assert run["conserved"], run
        assert run["rejections_typed"], run
        assert run["max_queue_depth"] <= run["queue_capacity"], run
    # Under 10x the edge must refuse load (shed and/or throttled)...
    assert overloaded["shed"] + overloaded["throttled"] > 0
    # ...while the admitted orders' p99 stays within 2x of unloaded.
    assert (
        overloaded["p99_order_to_active_s"]
        <= 2.0 * unloaded["p99_order_to_active_s"]
    )
