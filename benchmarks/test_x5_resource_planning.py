"""X5: network resource planning — transponder pool sizing.

"In order to support rapid connection provisioning and faster
restorations, the carrier must plan ahead, where and when to deploy the
spare resources (especially OTs). ... they need to forecast demand and
carefully manage the pool of GRIPhoN resources" (§4).  We sweep the
per-node transponder pool size against a multi-customer BoD request
load and measure blocking probability, then ablate the wavelength-
assignment policy (first-fit vs random).
"""

from benchmarks.harness import print_rows
from repro.core.connection import ConnectionState
from repro.facade import build_griphon_testbed
from repro.units import HOUR


def offered_load(net, requests=24, seed_tag=""):
    """Offer a fixed pattern of 10G requests from three CSPs; return the
    blocking ratio.  Connections hold for two hours then release."""
    customers = [
        net.service_for(f"csp-{i}{seed_tag}", max_connections=32,
                        max_total_rate_gbps=10000)
        for i in range(3)
    ]
    pairs = [
        ("PREMISES-A", "PREMISES-B"),
        ("PREMISES-A", "PREMISES-C"),
        ("PREMISES-B", "PREMISES-C"),
    ]
    blocked = 0
    for index in range(requests):
        svc = customers[index % len(customers)]
        a, b = pairs[index % len(pairs)]
        conn = svc.request_connection(a, b, 10)
        if conn.state is ConnectionState.BLOCKED:
            blocked += 1
        else:
            net.sim.schedule(
                2 * HOUR, svc.teardown_connection, conn.connection_id
            )
        # Requests arrive every 20 simulated minutes; connections hold
        # for two hours, so about six overlap at any time.
        net.run(until=net.sim.now + 1200)
    net.run()
    return blocked / requests


def test_x5_pool_sizing(benchmark):
    def run():
        results = {}
        for pool_size in (2, 4, 6, 10):
            net = build_griphon_testbed(
                seed=600 + pool_size,
                latency_cv=0.0,
                ots_per_node_10g=pool_size,
                nte_interfaces=12,
            )
            results[pool_size] = offered_load(net)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["10G OTs per node", "blocking probability"]]
    for pool_size, blocking in sorted(results.items()):
        rows.append([str(pool_size), f"{blocking:.0%}"])
    print_rows("X5: blocking vs transponder pool size", rows)
    benchmark.extra_info.update({str(k): v for k, v in results.items()})

    ordered = [results[k] for k in sorted(results)]
    # More OTs -> (weakly) less blocking, by a lot across the sweep.
    assert all(a >= b for a, b in zip(ordered, ordered[1:]))
    assert ordered[0] > 0.2  # an undersized pool visibly blocks
    assert ordered[-1] == 0.0  # a generous pool clears the load


def test_x5_customer_isolation_under_contention(benchmark):
    """One customer burning its quota never blocks another customer's
    admission — isolation is per-profile, capacity contention aside."""

    def run():
        net = build_griphon_testbed(seed=640, latency_cv=0.0)
        hog = net.service_for("hog", max_connections=2)
        victim = net.service_for("victim", max_connections=2)
        for _ in range(4):  # two admitted, two quota-blocked
            hog.request_connection("PREMISES-A", "PREMISES-B", 10)
        net.run()
        conn = victim.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        return hog, victim, conn

    hog, victim, conn = benchmark.pedantic(run, rounds=1, iterations=1)
    blocked_hog = [
        c for c in hog.connections() if c.state is ConnectionState.BLOCKED
    ]
    assert len(blocked_hog) == 2  # the hog hit its own quota
    assert conn.state is ConnectionState.UP  # the victim is untouched


def test_x5_ablation_first_fit_vs_random(benchmark):
    """Ablation: first-fit vs random wavelength assignment.

    The classic RWA result: on multi-hop routes with wavelength
    continuity, random assignment fragments the spectrum (a channel
    free on one hop but busy on the next is useless), so it blocks more
    demands than first-fit, which packs channels densely from the
    bottom.  A 6-node chain with mixed-length demands shows it.
    """
    from repro.core.inventory import InventoryDatabase
    from repro.core.rwa import RwaEngine
    from repro.errors import WavelengthBlockedError
    from repro.optical import WavelengthGrid
    from repro.sim import RandomStreams
    from repro.topo import Link, NetworkGraph, Node
    from repro.units import gbps

    def chain_inventory():
        graph = NetworkGraph()
        for i in range(6):
            graph.add_node(Node(f"N{i}"))
        for i in range(5):
            graph.add_link(Link(f"N{i}", f"N{i + 1}", length_km=100.0))
        return InventoryDatabase(graph, WavelengthGrid(8))

    def offered_demands():
        """A fixed mixed-length demand sequence at moderate load."""
        spans = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5),
                 (0, 2), (1, 3), (2, 4), (3, 5), (0, 3), (2, 5), (0, 5)]
        return spans * 2

    def blocking_for(policy, seed):
        streams = RandomStreams(seed)
        inventory = chain_inventory()
        engine = RwaEngine(
            inventory, k_paths=1, assignment=policy, streams=streams
        )
        blocked = 0
        total = 0
        for a, b in offered_demands():
            total += 1
            try:
                plan = engine.plan(f"N{a}", f"N{b}", gbps(10))
            except WavelengthBlockedError:
                blocked += 1
                continue
            owner = f"d{total}"
            for segment in plan.segments:
                for u, v in zip(segment.nodes, segment.nodes[1:]):
                    inventory.plant.dwdm_link(u, v).occupy(
                        segment.channel, owner
                    )
        return blocked / total

    def run():
        # First-fit is deterministic; average random over ten seeds.
        random_mean = sum(
            blocking_for("random", seed) for seed in range(10)
        ) / 10
        return {
            "first-fit": blocking_for("first-fit", 0),
            "random": random_mean,
        }

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["assignment policy", "blocking probability"]]
    for policy, blocking in ratios.items():
        rows.append([policy, f"{blocking:.0%}"])
    print_rows("X5 ablation: wavelength assignment policy", rows)
    benchmark.extra_info.update(ratios)
    assert ratios["first-fit"] <= ratios["random"]
