"""Scale-out engine perf report: emits ``BENCH_sweep.json``.

Two measurements, one file:

* **Sweep wall-clock** — the x9 availability Monte Carlo (scaled up to
  a two-year horizon so trial work dominates pool startup), run
  serially and through the process pool, with the byte-identity of the
  two aggregates verified.  The ≥3x speedup target assumes ≥8 usable
  cores; the report records ``usable_cpus`` so a 1-core CI container's
  ~1x is interpretable rather than alarming.
* **Kernel ns/event** — the tightened :meth:`Simulator.run` inner loop
  against a faithful replica of the seed kernel's loop (peek + step
  with property re-checks, no cancellation compaction, no batch
  scheduling), on three workloads: a timer-chain churn, a
  cancellation-heavy drain, and a batch pre-load.

Usage::

    PYTHONPATH=src python benchmarks/sweep_report.py [output.json] [--jobs N]

The measurement helpers are imported by ``benchmarks/test_perf_kernel.py``
so the perf assertions and the report share one methodology.
"""

from __future__ import annotations

import heapq
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sweep import run_sweep, x9_availability_spec
from repro.units import DAY

#: Default output path: the repository root.
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

#: The scaled-up x9 spec used for the wall-clock comparison.
SWEEP_REPEATS = 64
SWEEP_HORIZON_S = 730 * DAY


# -- the "before" kernel ------------------------------------------------------


class SeedKernel:
    """A faithful replica of the seed repository's event loop.

    Used as the before-side of the kernel microbenchmark: per-iteration
    ``heap[0]`` peek followed by a :meth:`step` that pops again and
    re-checks ``Event.canceled`` through the property, no lazy-
    cancellation compaction, one ``heappush`` per scheduled event, and
    a fresh ``time_source`` closure per call.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: List[Event] = []
        self._pending = 0

    @property
    def now(self) -> float:
        return self._now

    def _event_canceled(self) -> None:
        self._pending -= 1

    def schedule(self, delay, callback, *args, label=""):
        return self.schedule_at(self._now + delay, callback, *args, label=label)

    def schedule_at(self, time, callback, *args, label=""):
        event = Event(time, self._seq, callback, args, label, self._event_canceled)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._pending += 1
        return event

    def step(self) -> bool:
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.canceled:
                continue
            self._now = event.time
            self._pending -= 1
            event.fire()
            return True
        return False

    def run(self, until=None, max_events=10_000_000) -> int:
        fired = 0
        while self._heap:
            head = self._heap[0]
            if head.canceled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                break
            if fired >= max_events:
                raise RuntimeError("max_events")
            self.step()
            fired += 1
        if until is not None and until > self._now:
            self._now = until
        return fired


# -- kernel workloads ---------------------------------------------------------


def load_timer_chains(sim, chains: int = 32, hops: int = 2000) -> int:
    """Interleaved self-rescheduling timers: the kernel's common case."""

    def tick(remaining: int) -> None:
        if remaining:
            sim.schedule(1.0, tick, remaining - 1)

    for index in range(chains):
        sim.schedule(float(index) / chains, tick, hops - 1)
    return chains * hops


def load_cancel_heavy(
    sim, events: int = 120_000, keep_every: int = 10
) -> int:
    """Schedule a big horizon, cancel 90% of it, then drain the rest.

    Models workload generators that pre-schedule timelines and
    experiments that tear most of them down (teardown storms, aborted
    maintenance).  The optimized kernel compacts the heap once the dead
    events dominate; the seed kernel pops them one at a time.
    """
    scheduled = [
        sim.schedule(1.0 + (index % 977) * 0.5, _noop)
        for index in range(events)
    ]
    for index, event in enumerate(scheduled):
        if index % keep_every:
            event.cancel()
    return events


def _noop() -> None:
    return None


def measure_run(build, kernel_factory) -> Tuple[float, int]:
    """Wall-clock one workload on one kernel; returns (seconds, events)."""
    sim = kernel_factory()
    total = build(sim)
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start, total


def measure_kernel_workload(
    build, rounds: int = 3
) -> Dict[str, float]:
    """Best-of-``rounds`` ns/event, seed loop vs optimized loop."""
    before = min(
        measure_run(build, SeedKernel)[0] for _ in range(rounds)
    )
    after = min(
        measure_run(build, Simulator)[0] for _ in range(rounds)
    )
    _, events = measure_run(build, Simulator)
    return {
        "events": events,
        "before_ns_per_event": before / events * 1e9,
        "after_ns_per_event": after / events * 1e9,
        "speedup": before / after,
    }


def measure_batch_schedule(
    count: int = 100_000, rounds: int = 3
) -> Dict[str, float]:
    """Loading ``count`` events: schedule_at loop vs one schedule_many."""

    def load_loop() -> float:
        sim = Simulator()
        start = time.perf_counter()
        for index in range(count):
            sim.schedule_at(float(index % 4096), _noop)
        return time.perf_counter() - start

    def load_batch() -> float:
        sim = Simulator()
        entries = [(float(index % 4096), _noop) for index in range(count)]
        start = time.perf_counter()
        sim.schedule_many(entries)
        return time.perf_counter() - start

    loop = min(load_loop() for _ in range(rounds))
    batch = min(load_batch() for _ in range(rounds))
    return {
        "events": count,
        "loop_ns_per_event": loop / count * 1e9,
        "schedule_many_ns_per_event": batch / count * 1e9,
        "speedup": loop / batch,
    }


def collect_kernel_measurements(rounds: int = 3) -> Dict[str, Dict[str, float]]:
    """All kernel microbenchmarks, keyed by workload name."""
    return {
        "timer_chain": measure_kernel_workload(load_timer_chains, rounds),
        "cancel_heavy": measure_kernel_workload(load_cancel_heavy, rounds),
        "batch_schedule": measure_batch_schedule(rounds=rounds),
    }


# -- sweep wall-clock ---------------------------------------------------------


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def measure_sweep_speedup(
    jobs: int = 8,
    repeats: int = SWEEP_REPEATS,
    horizon_s: float = SWEEP_HORIZON_S,
) -> Dict[str, object]:
    """Serial vs parallel wall-clock on the scaled-up x9 study."""
    spec = x9_availability_spec(repeats=repeats, horizon_s=horizon_s)

    start = time.perf_counter()
    serial = run_sweep(spec, jobs=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_sweep(spec, jobs=jobs, timeout_s=900.0)
    parallel_s = time.perf_counter() - start

    return {
        "study": spec.name,
        "trials": len(serial.results),
        "repeats": repeats,
        "horizon_days": horizon_s / DAY,
        "jobs": jobs,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "aggregates_identical": serial.to_json() == parallel.to_json(),
        "failed_trials": len(serial.failed) + len(parallel.failed),
    }


def write_report(
    path: Path, sweep: Dict[str, object], kernel: Dict[str, Dict[str, float]]
) -> None:
    """Serialize the measurements (plus host context) as JSON."""
    report = {
        "benchmark": "sweep-engine",
        "schema_version": 1,
        "host": {
            "cpu_count": os.cpu_count(),
            "usable_cpus": usable_cpus(),
        },
        "sweep": sweep,
        "kernel": kernel,
        "notes": (
            "speedup target (>=3x at jobs=8) assumes >=8 usable cores; "
            "on fewer cores the sweep is CPU-bound and the ratio "
            "approaches 1x while aggregates stay byte-identical"
        ),
    }
    path.write_text(json.dumps(report, indent=2) + "\n")


def main(argv: List[str]) -> int:
    output = DEFAULT_OUTPUT
    jobs: Optional[int] = None
    args = list(argv[1:])
    while args:
        arg = args.pop(0)
        if arg == "--jobs":
            jobs = int(args.pop(0))
        else:
            output = Path(arg)
    if jobs is None:
        jobs = 8

    kernel = collect_kernel_measurements()
    for name, row in kernel.items():
        before = row.get("before_ns_per_event", row.get("loop_ns_per_event"))
        after = row.get(
            "after_ns_per_event", row.get("schedule_many_ns_per_event")
        )
        print(
            f"kernel {name:>15}: before {before:8.1f} ns/event, "
            f"after {after:8.1f} ns/event, speedup {row['speedup']:5.2f}x"
        )

    sweep = measure_sweep_speedup(jobs=jobs)
    print(
        f"sweep {sweep['study']}: {sweep['trials']} trials, "
        f"serial {sweep['serial_s']:.2f}s, "
        f"jobs={sweep['jobs']} {sweep['parallel_s']:.2f}s, "
        f"speedup {sweep['speedup']:.2f}x "
        f"(usable cpus: {usable_cpus()}), "
        f"identical={sweep['aggregates_identical']}"
    )

    write_report(output, sweep, kernel)
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
