"""Global re-optimization report: emits ``BENCH_optimize.json``.

Runs the fragmentation benchmark (:func:`repro.optimize.bench.
run_optimize_trial`) twice per seed on a 64-PoP generated backbone —
with a global re-optimization cycle vs the greedy first-fit baseline —
and records the comparison the tentpole is judged on:

* **wavelength reclaim** — re-optimization must reduce the number of
  distinct wavelengths in use by >= 15% versus the fragmented greedy
  state (or, failing that, cut the load ramp's blocking probability at
  least 2x);
* **migration safety** — zero invariant-audit violations across every
  executed move, zero connections dropped during migration, and no
  saga rollback triggered;
* **determinism** — repeating the re-optimized trial at the same seed
  must reproduce the assignment fingerprint byte-for-byte.

Usage::

    PYTHONPATH=src python benchmarks/optimize_report.py [output.json]

``main`` exits non-zero when any acceptance check fails.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List

from repro.optimize.bench import run_optimize_trial

#: Default output path: the repository root.
DEFAULT_OUTPUT = (
    Path(__file__).resolve().parent.parent / "BENCH_optimize.json"
)

#: The acceptance bars.
REQUIRED_RECLAIM = 0.15
REQUIRED_BLOCKING_CUT = 2.0

#: Seeds averaged for the headline numbers.
SEEDS = (1, 2, 3)


def collect_measurements() -> Dict[str, object]:
    """Both arms per seed, plus the determinism repeat."""
    trials = []
    for seed in SEEDS:
        optimized = run_optimize_trial(seed=seed, reoptimize=True)
        baseline = run_optimize_trial(seed=seed, reoptimize=False)
        trials.append({"optimized": optimized, "baseline": baseline})
    repeat = run_optimize_trial(seed=SEEDS[0], reoptimize=True)
    return {
        "trials": trials,
        "deterministic": (
            trials[0]["optimized"]["fingerprint"] == repeat["fingerprint"]
        ),
    }


def acceptance(measurements: Dict[str, object]) -> Dict[str, object]:
    """The acceptance block ``main`` gates on."""
    trials = measurements["trials"]
    reclaims = []
    blocking_cuts = []
    audit_violations = 0
    dropped = 0
    rollbacks = 0
    moves = 0
    for trial in trials:
        optimized = trial["optimized"]
        baseline = trial["baseline"]
        fragmented = optimized["wavelengths_fragmented"]
        if fragmented:
            reclaims.append(
                optimized["wavelengths_reclaimed"] / fragmented
            )
        blocking_cuts.append(
            baseline["blocking_probability"]
            / max(optimized["blocking_probability"], 1e-9)
        )
        audit_violations += optimized["audit_violations"]
        dropped += optimized["dropped_survivors"]
        rollbacks += int(optimized["rollback_triggered"])
        moves += optimized["moves_completed"]
    mean_reclaim = sum(reclaims) / len(reclaims) if reclaims else 0.0
    best_blocking_cut = max(blocking_cuts) if blocking_cuts else 0.0
    checks = {
        "reclaim_15pct_or_blocking_2x": (
            mean_reclaim >= REQUIRED_RECLAIM
            or best_blocking_cut >= REQUIRED_BLOCKING_CUT
        ),
        "zero_audit_violations": audit_violations == 0,
        "zero_dropped_connections": dropped == 0,
        "no_rollbacks": rollbacks == 0,
        "planner_acted": moves > 0,
        "deterministic": bool(measurements["deterministic"]),
    }
    return {
        "mean_wavelength_reclaim": round(mean_reclaim, 4),
        "required_reclaim": REQUIRED_RECLAIM,
        "best_blocking_cut": round(best_blocking_cut, 2),
        "required_blocking_cut": REQUIRED_BLOCKING_CUT,
        "moves_completed": moves,
        "checks": checks,
        "ok": all(checks.values()),
    }


def write_report(path: Path, measurements: Dict[str, object]) -> None:
    report = {
        "benchmark": "optimize-global-reoptimization",
        "schema_version": 1,
        "measurements": measurements,
        "acceptance": acceptance(measurements),
    }
    path.write_text(json.dumps(report, indent=2) + "\n")


def main(argv: List[str]) -> int:
    output = Path(argv[1]) if len(argv) > 1 else DEFAULT_OUTPUT
    measurements = collect_measurements()
    for trial in measurements["trials"]:
        optimized = trial["optimized"]
        baseline = trial["baseline"]
        print(
            f"seed {optimized['seed']}: "
            f"{optimized['wavelengths_fragmented']} -> "
            f"{optimized['wavelengths_optimized']} wavelengths "
            f"({optimized['wavelengths_reclaimed']} reclaimed, "
            f"{optimized['moves_completed']} move(s)) | "
            f"blocking {baseline['blocking_probability']:.3f} greedy vs "
            f"{optimized['blocking_probability']:.3f} re-optimized"
        )
    gate = acceptance(measurements)
    print(
        f"mean reclaim {gate['mean_wavelength_reclaim']:.1%} "
        f"(bar {REQUIRED_RECLAIM:.0%})"
    )
    for name, passed in sorted(gate["checks"].items()):
        print(f"  acceptance {name}: {'ok' if passed else 'FAILED'}")
    write_report(output, measurements)
    print(f"wrote {output}")
    return 0 if gate["ok"] else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
