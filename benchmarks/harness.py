"""Shared helpers for the experiment benchmarks.

Each benchmark regenerates one of the paper's tables or figures.  The
helpers here run the simulated measurements; the benchmark functions
time them, print the regenerated rows (visible with ``pytest -s`` and
stored in ``benchmark.extra_info``), and assert the paper's *shape* —
who wins, by roughly what factor, and how trends run.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional, Tuple

from repro.facade import GriphonNetwork, build_griphon_testbed
from repro.sim import Process
from repro.units import gbps

#: Table 2 of the paper: mean wavelength-connection establishment time
#: (seconds) by ROADM-layer path length, over ten iterations.
PAPER_TABLE2 = {1: 62.48, 2: 65.67, 3: 70.94}

#: Link exclusions that force each Table 2 path on the Fig. 4 testbed.
TABLE2_EXCLUSIONS: Dict[int, List[Tuple[str, str]]] = {
    1: [],
    2: [("ROADM-I", "ROADM-IV")],
    3: [("ROADM-I", "ROADM-IV"), ("ROADM-I", "ROADM-III")],
}


def measure_setup_time(
    net: GriphonNetwork,
    hops: int,
    rate_gbps: float = 10.0,
    teardown: bool = True,
) -> float:
    """One wavelength-connection establishment on a Table 2 path.

    Plans ROADM-I -> ROADM-IV with the exclusions that force the
    requested hop count, claims it, runs the full EMS workflow, and
    returns the elapsed simulated seconds.  Optionally tears the
    connection down again so repeated measurements see a clean network.
    """
    controller = net.controller
    plan = controller.rwa.plan(
        "ROADM-I",
        "ROADM-IV",
        gbps(rate_gbps),
        excluded_links=TABLE2_EXCLUSIONS[hops],
    )
    assert plan.hop_count == hops
    lightpath = controller.provisioner.claim(plan)
    start = net.sim.now
    Process(net.sim, controller.provisioner.setup_workflow(lightpath))
    net.run()
    elapsed = net.sim.now - start
    if teardown:
        Process(net.sim, controller.provisioner.teardown_workflow(lightpath))
        net.run()
    return elapsed


def table2_measurements(
    seed: int = 11,
    iterations: int = 10,
    parallel_ems: bool = False,
    speedup: Optional[float] = None,
) -> Dict[int, List[float]]:
    """Ten establishment times per Table 2 path length."""
    results: Dict[int, List[float]] = {1: [], 2: [], 3: []}
    for hops in results:
        for i in range(iterations):
            net = build_griphon_testbed(
                seed=seed + i, parallel_ems=parallel_ems
            )
            if speedup is not None:
                # Rebuild the latency model with the speedup applied.
                from repro.ems.latency import LatencyModel

                net.controller.set_latency_model(
                    LatencyModel(net.streams, speedup=speedup)
                )
            results[hops].append(measure_setup_time(net, hops, teardown=False))
    return results


def mean_by_hops(results: Dict[int, List[float]]) -> Dict[int, float]:
    """Mean establishment time per hop count."""
    return {hops: statistics.fmean(samples) for hops, samples in results.items()}


def print_rows(title: str, rows: List[List[str]]) -> None:
    """Render a small results table to stdout (visible with -s)."""
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    print(f"\n=== {title} ===")
    for row in rows:
        print("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
