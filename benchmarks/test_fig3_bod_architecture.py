"""Fig. 3: BoD for inter-data center communication using GRIPhoN.

Fig. 3 shows the target architecture: premises behind fixed access
pipes, the FXC steering each customer signal to either an OT (wavelength
service on the DWDM layer) or an OTN switch port (sub-wavelength
service), all orchestrated by the GRIPhoN controller.  The headline
example in §2.2: augment a 10G wavelength with 2 x 1G OTN circuits to
reach 12G *instead of consuming a second 10G wavelength*.
"""

from benchmarks.harness import print_rows
from repro.core.connection import ConnectionKind, ConnectionState
from repro.facade import build_griphon_testbed


def run_example_12g():
    """The paper's 12G example vs the wavelength-only alternative."""
    # World A: BoD with OTN available -> 10G wave + 2x1G circuits.
    net_a = build_griphon_testbed(seed=31, latency_cv=0.0)
    svc_a = net_a.service_for("csp")
    conn_a = svc_a.request_connection("PREMISES-A", "PREMISES-B", 12)
    net_a.run()
    pops = ("ROADM-I", "ROADM-III")
    waves_a = count_wavelengths_between(net_a, *pops)

    # World B: no OTN layer -> the remainder rounds up to a 2nd 10G wave.
    net_b = build_griphon_testbed(seed=31, latency_cv=0.0, with_otn=False)
    svc_b = net_b.service_for("csp")
    conn_b = svc_b.request_connection("PREMISES-A", "PREMISES-B", 12)
    net_b.run()
    waves_b = count_wavelengths_between(net_b, *pops)
    return conn_a, waves_a, conn_b, waves_b


def count_wavelengths_between(net, a, b):
    """Lit channels on the direct link between two pops (plus detours)."""
    total = 0
    for link in net.inventory.graph.links:
        if link.a.startswith("PREMISES") or link.b.startswith("PREMISES"):
            continue
        dwdm = net.inventory.plant.dwdm_link(link.a, link.b)
        total += len(dwdm.occupied_channels)
    return total


def test_fig3_mixed_rate_example(benchmark):
    conn_a, waves_a, conn_b, waves_b = benchmark.pedantic(
        run_example_12g, rounds=1, iterations=1
    )
    rows = [
        ["realization", "kind", "lit wavelength-links"],
        ["10G wave + 2x1G OTN (Fig. 3)", conn_a.kind.value, str(waves_a)],
        ["2x 10G waves (no OTN)", conn_b.kind.value, str(waves_b)],
    ]
    print_rows("Fig. 3: the 12G mixed-rate example", rows)
    assert conn_a.state is conn_b.state is ConnectionState.UP
    assert conn_a.kind is ConnectionKind.COMPOSITE
    assert len(conn_a.lightpath_ids) == 1 and len(conn_a.circuit_ids) == 2
    assert conn_b.kind is ConnectionKind.WAVELENGTH
    assert len(conn_b.lightpath_ids) == 2
    # Both worlds light 2 wavelengths here (the OTN line costs one), but
    # the OTN wavelength still has 6 of 8 ODU0 slots free for *other*
    # customers, whereas the second 10G wave is dedicated.
    line = list(net_line_fill(conn_a))
    assert line, "expected at least one OTN line"


def net_line_fill(conn):
    """Helper: yields nothing when the composite has no circuits."""
    if conn.circuit_ids:
        yield conn.circuit_ids


def test_fig3_otn_wavelength_is_shareable(benchmark):
    """The OTN line created for one customer's 2G carries seven more
    1G circuits before another wavelength is needed — the sharing that
    makes the composite realization cheaper at scale."""

    def run():
        net = build_griphon_testbed(seed=32, latency_cv=0.0)
        svc = net.service_for("csp", max_connections=32)
        first = svc.request_connection("PREMISES-A", "PREMISES-B", 12)
        net.run()
        waves_after_first = len(net.inventory.otn_lines)
        # Six more 1G connections ride the same OTN line for free.
        extra = [
            svc.request_connection("PREMISES-A", "PREMISES-B", 1)
            for _ in range(6)
        ]
        net.run()
        waves_after_extra = len(net.inventory.otn_lines)
        return first, extra, waves_after_first, waves_after_extra

    first, extra, after_first, after_extra = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_rows(
        "Fig. 3: OTN line sharing",
        [
            ["OTN lines after 12G order", "after 6 more 1G orders"],
            [str(after_first), str(after_extra)],
        ],
    )
    assert first.state is ConnectionState.UP
    assert all(c.state is ConnectionState.UP for c in extra)
    assert after_extra == after_first  # no new wavelength needed


def test_fig3_fxc_steering_semantics(benchmark):
    """Wavelength orders consume OTs; sub-wavelength orders consume OTN
    client ports — the FXC's two steering targets in Fig. 3."""

    def run():
        net = build_griphon_testbed(seed=33, latency_cv=0.0)
        svc = net.service_for("csp")
        pool = net.inventory.transponders["ROADM-I"]
        switch = net.inventory.otn_switches["ROADM-I"]
        free_ots_before = len(pool.free())
        wave = svc.request_connection("PREMISES-A", "PREMISES-B", 10)
        net.run()
        free_ots_after_wave = len(pool.free())
        sub = svc.request_connection("PREMISES-A", "PREMISES-B", 1)
        net.run()
        free_ots_after_sub = len(pool.free())
        return (
            wave,
            sub,
            free_ots_before,
            free_ots_after_wave,
            free_ots_after_sub,
        )

    wave, sub, before, after_wave, after_sub = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert wave.kind is ConnectionKind.WAVELENGTH
    assert sub.kind is ConnectionKind.SUBWAVELENGTH
    # The wavelength order took an OT at ROADM-I.
    assert after_wave == before - 1
    # The 1G order took one more OT -- but only to stand up the shared
    # OTN line; the circuit itself consumed tributary slots, and a
    # second 1G order would take none.
    assert after_sub <= after_wave
