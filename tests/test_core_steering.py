"""Tests for the FXC steering state recorded per connection (Fig. 3)."""

import pytest

from repro.core.connection import ConnectionState
from repro.facade import build_griphon_testbed


@pytest.fixture
def net():
    return build_griphon_testbed(seed=81, latency_cv=0.0)


@pytest.fixture
def svc(net):
    return net.service_for("csp")


class TestWavelengthSteering:
    def test_fxc_connects_access_to_ot(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        # At each end PoP the FXC holds one cross-connect whose far port
        # is labeled with the transponder serving this lightpath.
        assert len(conn.fxc_ports) == 2
        for (site, port), ot_id in zip(conn.fxc_ports, lightpath.ot_ids):
            fxc = net.inventory.fxcs[site]
            peer = fxc.peer_of(port)
            assert peer is not None
            assert fxc.port_label(peer) == ot_id
            assert fxc.port_label(port) == f"access:{conn.connection_id}"

    def test_teardown_frees_fxc_ports(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        svc.teardown_connection(conn.connection_id)
        net.run()
        for fxc in net.inventory.fxcs.values():
            assert fxc.connections() == []
        assert conn.fxc_ports == []


class TestSubWavelengthSteering:
    def test_fxc_connects_access_to_otn_client_port(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 1)
        net.run()
        assert len(conn.otn_client_ports) == 2
        for node, port in conn.otn_client_ports:
            switch = net.inventory.otn_switches[node]
            assert port not in switch.free_client_ports()

    def test_teardown_frees_otn_client_ports(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 1)
        net.run()
        svc.teardown_connection(conn.connection_id)
        net.run()
        for switch in net.inventory.otn_switches.values():
            assert len(switch.free_client_ports()) == switch.client_port_count


class TestSteeringFollowsMigrations:
    def test_bridge_and_roll_relabels_to_new_ots(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        old = net.inventory.lightpaths[conn.lightpath_ids[0]]
        old_ots = list(old.ot_ids)
        net.controller.bridge_and_roll(conn.connection_id)
        net.run()
        new = net.inventory.lightpaths[conn.lightpath_ids[0]]
        assert new.ot_ids != old_ots
        for (site, port), new_ot in zip(conn.fxc_ports, new.ot_ids):
            fxc = net.inventory.fxcs[site]
            assert fxc.port_label(fxc.peer_of(port)) == new_ot

    def test_restoration_relabels_to_new_ots(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        net.controller.cut_link(lightpath.path[0], lightpath.path[1])
        net.run()
        assert conn.state is ConnectionState.UP
        replacement = net.inventory.lightpaths[conn.lightpath_ids[0]]
        for (site, port), ot_id in zip(conn.fxc_ports, replacement.ot_ids):
            fxc = net.inventory.fxcs[site]
            assert fxc.port_label(fxc.peer_of(port)) == ot_id

    def test_composite_uses_both_steering_targets(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-B", 12)
        net.run()
        # One wavelength cross-connect pair per end + one OTN pair per
        # end per circuit (2 circuits) = 2 + 4 FXC records.
        assert len(conn.fxc_ports) == 6
        assert len(conn.otn_client_ports) == 4
