"""Tests for the typed BodService surface (FaultReport, Usage, validation)."""

import math

import pytest

from repro.core.connection import ConnectionState
from repro.core.service import FaultReport, Usage, UsageLimits
from repro.errors import AdmissionError
from repro.facade import build_griphon_testbed
from repro.units import GBPS


@pytest.fixture
def net():
    return build_griphon_testbed(seed=4, latency_cv=0.0)


@pytest.fixture
def svc(net):
    return net.service_for("csp-typed", max_connections=8,
                           max_total_rate_gbps=100.0)


class TestFaultReport:
    def test_in_service_report(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-B", 10)
        net.run()
        report = svc.fault_report(conn.connection_id)
        assert isinstance(report, FaultReport)
        assert report.state is ConnectionState.UP
        assert report.localized_links == ()
        assert report.action == ""
        assert str(report) == f"{conn.connection_id}: in service"
        assert "in service" in report  # substring compat

    def test_outage_report_localizes_links(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        path = net.inventory.lightpaths[conn.lightpath_ids[0]].path
        net.controller.auto_restore = False
        net.controller.cut_link(path[0], path[1])
        report = svc.fault_report(conn.connection_id)
        assert report.state is ConnectionState.FAILED
        assert report.action == "awaiting restoration"
        cut = tuple(sorted((path[0], path[1])))
        assert cut in report.localized_links
        assert "outage localized to" in str(report)
        assert f"{cut[0]}={cut[1]}" in str(report)

    def test_blocked_report(self, net):
        svc = net.service_for("csp-tiny2", max_connections=0)
        conn = svc.request_connection("PREMISES-A", "PREMISES-B", 10)
        report = svc.fault_report(conn.connection_id)
        assert report.state is ConnectionState.BLOCKED
        assert report.blocked_reason == conn.blocked_reason
        assert str(report).startswith(f"{conn.connection_id}: blocked - ")

    def test_report_carries_trace_id(self):
        net = build_griphon_testbed(seed=4, tracing=True)
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-B", 10)
        net.run()
        report = svc.fault_report(conn.connection_id)
        assert report.trace_id == conn.trace_id
        assert report.trace_id is not None

    def test_restoring_report_mentions_progress(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        path = net.inventory.lightpaths[conn.lightpath_ids[0]].path
        net.controller.cut_link(path[0], path[1])
        # Before running the sim, restoration is in flight.
        assert conn.state is ConnectionState.RESTORING
        report = svc.fault_report(conn.connection_id)
        assert report.action == "restoration in progress"
        assert "restoration in progress" in str(report)


class TestUsage:
    def test_typed_fields(self, net, svc):
        svc.request_connection("PREMISES-A", "PREMISES-B", 10)
        net.run()
        usage = svc.usage()
        assert isinstance(usage, Usage)
        assert usage.connections == 1
        assert usage.committed_gbps == pytest.approx(10.0)
        assert usage.limits == UsageLimits(
            max_connections=8, max_total_rate_gbps=100.0
        )

    def test_mapping_compatibility(self, net, svc):
        svc.request_connection("PREMISES-A", "PREMISES-B", 10)
        net.run()
        usage = svc.usage()
        assert usage["connections"] == 1
        assert usage["rate_bps"] == pytest.approx(10 * GBPS)
        assert set(dict(usage)) == {
            "connections", "committed_gbps", "rate_bps", "limits"
        }
        with pytest.raises(KeyError):
            usage["nonsense"]

    def test_empty_usage(self, net, svc):
        usage = svc.usage()
        assert usage.connections == 0
        assert usage.committed_gbps == 0.0


class TestRateValidation:
    @pytest.mark.parametrize(
        "rate", [0, -1, -0.5, float("nan"), float("inf"), float("-inf")]
    )
    def test_non_positive_or_non_finite_rejected(self, net, svc, rate):
        with pytest.raises(AdmissionError) as excinfo:
            svc.request_connection("PREMISES-A", "PREMISES-B", rate)
        message = str(excinfo.value)
        assert "rate_gbps" in message
        # The error speaks the GUI's unit, with the offending value.
        if not math.isnan(rate):
            assert repr(float(rate)) in message or repr(rate) in message

    @pytest.mark.parametrize("rate", ["10", None, [], True])
    def test_non_numeric_rejected(self, net, svc, rate):
        with pytest.raises(AdmissionError):
            svc.request_connection("PREMISES-A", "PREMISES-B", rate)

    def test_invalid_rate_leaves_no_record(self, net, svc):
        with pytest.raises(AdmissionError):
            svc.request_connection("PREMISES-A", "PREMISES-B", -5)
        assert svc.connections() == []
        assert svc.usage().connections == 0

    def test_valid_rate_still_admitted(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-B", 0.5)
        net.run()
        assert conn.state is ConnectionState.UP
