"""Unit tests for repro.units: rates, hierarchies, and formatting."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestRateConstants:
    def test_gbps_helper(self):
        assert units.gbps(10) == 10e9

    def test_mbps_helper(self):
        assert units.mbps(622) == 622e6

    def test_terabytes_helper(self):
        assert units.terabytes(1) == 8e12

    def test_week_is_seven_days(self):
        assert units.WEEK == 7 * units.DAY


class TestTransferTime:
    def test_simple_division(self):
        assert units.transfer_time(units.gbps(10), units.gbps(10)) == 1.0

    def test_petabyte_at_forty_gig(self):
        seconds = units.transfer_time(units.PETABYTE, units.gbps(40))
        assert seconds == pytest.approx(8e15 / 40e9)

    def test_zero_volume(self):
        assert units.transfer_time(0, units.gbps(1)) == 0.0

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            units.transfer_time(1.0, 0.0)

    def test_rejects_negative_volume(self):
        with pytest.raises(ValueError):
            units.transfer_time(-1.0, 1.0)

    @given(
        volume=st.floats(min_value=0, max_value=1e18),
        rate=st.floats(min_value=1e3, max_value=1e12),
    )
    def test_transfer_time_nonnegative_and_consistent(self, volume, rate):
        seconds = units.transfer_time(volume, rate)
        assert seconds >= 0
        assert math.isclose(seconds * rate, volume, rel_tol=1e-9, abs_tol=1e-6)


class TestFormatting:
    def test_format_rate_gbps(self):
        assert units.format_rate(units.gbps(10)) == "10 Gbps"

    def test_format_rate_mbps(self):
        assert units.format_rate(units.mbps(622)) == "622 Mbps"

    def test_format_rate_sub_kbps(self):
        assert units.format_rate(500) == "500 bps"

    def test_format_rate_rejects_negative(self):
        with pytest.raises(ValueError):
            units.format_rate(-1)

    def test_format_duration_minutes(self):
        assert units.format_duration(120) == "2 min"

    def test_format_duration_weeks(self):
        assert units.format_duration(2 * units.WEEK) == "2 wk"

    def test_format_duration_millis(self):
        assert units.format_duration(0.05) == "50 ms"

    def test_format_duration_rejects_negative(self):
        with pytest.raises(ValueError):
            units.format_duration(-0.1)


class TestSonetHierarchy:
    def test_sts1_near_52_mbps(self):
        assert units.sts_rate(1) == pytest.approx(51.84e6)

    def test_oc192_is_about_10g(self):
        assert units.oc_rate("OC-192") == pytest.approx(9.953e9, rel=1e-3)

    def test_oc48(self):
        assert units.oc_rate("OC-48") == pytest.approx(48 * 51.84e6)

    def test_sts_rejects_zero(self):
        with pytest.raises(ValueError):
            units.sts_rate(0)

    def test_unknown_oc_level(self):
        with pytest.raises(KeyError):
            units.oc_rate("OC-99")

    @given(n=st.integers(min_value=1, max_value=768))
    def test_sts_rate_linear(self, n):
        assert units.sts_rate(n) == pytest.approx(n * units.STS1_RATE)


class TestOduHierarchy:
    def test_odu0_rate_and_slots(self):
        level = units.ODU_LEVELS["ODU0"]
        assert level.rate_bps == pytest.approx(1.25e9)
        assert level.tributary_slots == 1

    def test_odu2_holds_eight_slots(self):
        assert units.ODU_LEVELS["ODU2"].tributary_slots == 8

    def test_odu_for_one_gig_client(self):
        assert units.odu_for_rate(units.gbps(1)).name == "ODU0"

    def test_odu_for_ten_gig_client(self):
        assert units.odu_for_rate(units.gbps(10)).name == "ODU2"

    def test_odu_for_forty_gig_client(self):
        assert units.odu_for_rate(units.gbps(40)).name == "ODU3"

    def test_odu_boundary_exactly_odu0(self):
        assert units.odu_for_rate(1.25e9).name == "ODU0"

    def test_odu_rejects_excessive_rate(self):
        with pytest.raises(ValueError):
            units.odu_for_rate(units.gbps(200))

    def test_odu_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            units.odu_for_rate(0)

    @given(rate=st.floats(min_value=1e6, max_value=104.79e9))
    def test_selected_odu_always_fits_client(self, rate):
        level = units.odu_for_rate(rate)
        assert level.rate_bps >= rate

    def test_slot_counts_track_rates(self):
        ordered = sorted(units.ODU_LEVELS.values(), key=lambda lv: lv.rate_bps)
        slot_counts = [level.tributary_slots for level in ordered]
        assert slot_counts == sorted(slot_counts)
