"""ShardedNetwork: cross-region lifecycle, saga unwind, shard audits."""

import pytest

from repro.core.admission import CustomerProfile
from repro.core.connection import ConnectionState
from repro.errors import ConfigurationError
from repro.faults import FaultPlan, FaultSpec
from repro.shard import build_sharded_network
from repro.topo.hierarchy import EXPRESS
from repro.units import GBPS


def make_net(mode="sharded", seed=7, regions=2, pops=6, fault_plans=None):
    net = build_sharded_network(
        seed=seed,
        regions=regions,
        pops_per_region=pops,
        mode=mode,
        fault_plans=fault_plans,
    )
    net.register_customer(
        CustomerProfile(
            "csp", max_connections=64, max_total_rate_bps=10000 * GBPS
        )
    )
    return net


def assert_all_audits_clean(net):
    for unit, report in net.audit_shards().items():
        assert report.ok, f"{unit}: {[str(v) for v in report.violations]}"


class TestCrossRegionLifecycle:
    def test_cross_region_order_comes_up(self):
        net = make_net()
        order = net.place_order("csp", "DC-R00-P03", "DC-R01-P04")
        net.run()
        assert order.state is ConnectionState.UP
        # Three stitched segments: region A -> express -> region B.
        assert [r["unit"] for r in order.plan_record] == [
            "R00", EXPRESS, "R01"
        ]
        assert set(order.children) == {"R00", EXPRESS, "R01"}
        for child in order.children.values():
            assert child.state is ConnectionState.UP
        assert_all_audits_clean(net)

    def test_intra_region_order_is_single_segment(self):
        net = make_net()
        order = net.place_order("csp", "DC-R00-P02", "DC-R00-P04")
        net.run()
        assert order.state is ConnectionState.UP
        assert [r["unit"] for r in order.plan_record] == ["R00"]
        assert_all_audits_clean(net)

    def test_gateway_endpoint_skips_degenerate_segment(self):
        # P00 is a gateway; the region A segment degenerates away but
        # the region child still owns the premises NTE and steering.
        net = make_net()
        order = net.place_order("csp", "DC-R00-P00", "DC-R01-P03")
        net.run()
        assert order.state is ConnectionState.UP
        assert "R00" not in [r["unit"] for r in order.plan_record]
        assert "R00" in order.children
        assert_all_audits_clean(net)

    def test_teardown_unwinds_every_shard(self):
        net = make_net()
        order = net.place_order("csp", "DC-R00-P03", "DC-R01-P04")
        net.run()
        net.teardown_order(order)
        net.run()
        assert order.state is ConnectionState.RELEASED
        for child in order.children.values():
            assert child.state is ConnectionState.RELEASED
        assert_all_audits_clean(net)
        # Admission quota is back: the same order can be placed again.
        again = net.place_order("csp", "DC-R00-P03", "DC-R01-P04")
        net.run()
        assert again.state is ConnectionState.UP

    def test_teardown_requires_up(self):
        net = make_net()
        order = net.place_order("csp", "DC-R00-P03", "DC-R01-P04")
        with pytest.raises(ConfigurationError):
            net.teardown_order(order)

    def test_unknown_customer_blocks(self):
        net = make_net()
        order = net.place_order("nobody", "DC-R00-P03", "DC-R01-P04")
        assert order.state is ConnectionState.BLOCKED
        assert "unknown customer" in order.blocked_reason
        assert_all_audits_clean(net)


class TestBatchOverlay:
    def test_same_round_orders_never_share_express_channels(self):
        net = make_net()
        orders = net.place_orders(
            [
                ("csp", "DC-R00-P03", "DC-R01-P04", 10 * GBPS),
                ("csp", "DC-R00-P03", "DC-R01-P04", 10 * GBPS),
            ]
        )
        net.run()
        assert all(o.state is ConnectionState.UP for o in orders)
        express_records = [
            record
            for order in orders
            for record in order.plan_record
            if record["unit"] == EXPRESS
        ]
        assert len(express_records) == 2
        first, second = express_records
        if first["path"] == second["path"]:
            # Same express route: the shadow-claim overlay must have
            # pushed the second order onto different channels.
            assert first["channels"] != second["channels"]
        assert_all_audits_clean(net)

    def test_batch_claims_audit_clean_in_monolithic_twin(self):
        net = make_net(mode="monolithic")
        orders = net.place_orders(
            [
                ("csp", "DC-R00-P03", "DC-R01-P04", 10 * GBPS),
                ("csp", "DC-R00-P02", "DC-R01-P05", 10 * GBPS),
            ]
        )
        net.run()
        assert all(o.state is ConnectionState.UP for o in orders)
        assert_all_audits_clean(net)


class TestSagaUnwind:
    def test_mid_setup_express_failure_unwinds_all_shards(self):
        # A hard element failure during the express segment's setup:
        # region A's segment is already up and must be compensated.
        net = make_net(
            fault_plans={
                EXPRESS: FaultPlan([FaultSpec(mode="fail", count=1)])
            }
        )
        order = net.place_order("csp", "DC-R00-P03", "DC-R01-P04")
        net.run()
        assert order.state is ConnectionState.BLOCKED
        assert "setup failed" in order.blocked_reason
        for child in order.children.values():
            assert child.state is ConnectionState.BLOCKED
        assert_all_audits_clean(net)
        # The fault budget (count=1) is spent and admission quota was
        # released: the identical order now succeeds end to end.
        retry = net.place_order("csp", "DC-R00-P03", "DC-R01-P04")
        net.run()
        assert retry.state is ConnectionState.UP
        assert_all_audits_clean(net)

    def test_region_segment_failure_blocks_before_express(self):
        net = make_net(
            fault_plans={"R00": FaultPlan([FaultSpec(mode="fail", count=1)])}
        )
        order = net.place_order("csp", "DC-R00-P03", "DC-R01-P04")
        net.run()
        assert order.state is ConnectionState.BLOCKED
        assert_all_audits_clean(net)
