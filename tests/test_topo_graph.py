"""Tests for the network graph: construction, lookup, and path search."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NoPathError, TopologyError
from repro.topo import Link, NetworkGraph, Node


def ring(n):
    """A ring of n nodes named N0..N{n-1}."""
    graph = NetworkGraph()
    for i in range(n):
        graph.add_node(Node(f"N{i}"))
    for i in range(n):
        graph.add_link(Link(f"N{i}", f"N{(i + 1) % n}", length_km=100.0))
    return graph


@pytest.fixture
def square():
    """A 4-node ring plus one diagonal: N0-N1-N2-N3-N0 and N0-N2."""
    graph = ring(4)
    graph.add_link(Link("N0", "N2", length_km=150.0))
    return graph


class TestConstruction:
    def test_add_and_lookup_node(self):
        graph = NetworkGraph()
        graph.add_node(Node("A", kind="premises"))
        assert graph.node("A").kind == "premises"

    def test_readding_identical_node_is_noop(self):
        graph = NetworkGraph()
        graph.add_node(Node("A"))
        graph.add_node(Node("A"))
        assert len(graph.nodes) == 1

    def test_conflicting_node_rejected(self):
        graph = NetworkGraph()
        graph.add_node(Node("A", kind="roadm"))
        with pytest.raises(TopologyError):
            graph.add_node(Node("A", kind="premises"))

    def test_unknown_node_lookup(self):
        with pytest.raises(TopologyError):
            NetworkGraph().node("ghost")

    def test_link_requires_existing_nodes(self):
        graph = NetworkGraph()
        graph.add_node(Node("A"))
        with pytest.raises(TopologyError):
            graph.add_link(Link("A", "B"))

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Link("A", "A")

    def test_nonpositive_length_rejected(self):
        with pytest.raises(TopologyError):
            Link("A", "B", length_km=0)

    def test_duplicate_link_rejected(self):
        graph = NetworkGraph()
        graph.add_node(Node("A"))
        graph.add_node(Node("B"))
        graph.add_link(Link("A", "B"))
        with pytest.raises(TopologyError):
            graph.add_link(Link("B", "A"))

    def test_link_key_is_order_independent(self):
        assert Link("B", "A").key == Link("A", "B").key == ("A", "B")

    def test_link_other_endpoint(self):
        link = Link("A", "B")
        assert link.other("A") == "B"
        assert link.other("B") == "A"
        with pytest.raises(TopologyError):
            link.other("C")


class TestLookup:
    def test_neighbors_sorted(self, square):
        assert square.neighbors("N0") == ["N1", "N2", "N3"]

    def test_degree(self, square):
        assert square.degree("N0") == 3
        assert square.degree("N1") == 2

    def test_link_between_either_order(self, square):
        assert square.link_between("N2", "N0") is square.link_between("N0", "N2")

    def test_link_between_nonadjacent(self, square):
        with pytest.raises(TopologyError):
            square.link_between("N1", "N3")

    def test_links_on_path(self, square):
        links = square.links_on_path(["N0", "N1", "N2"])
        assert [link.key for link in links] == [("N0", "N1"), ("N1", "N2")]

    def test_path_length_km(self, square):
        assert square.path_length_km(["N0", "N2"]) == 150.0
        assert square.path_length_km(["N0", "N1", "N2"]) == 200.0

    def test_srlg_queries(self):
        graph = NetworkGraph()
        for name in "ABC":
            graph.add_node(Node(name))
        graph.add_link(Link("A", "B", srlgs=frozenset({"conduit-1"})))
        graph.add_link(Link("B", "C", srlgs=frozenset({"conduit-1", "conduit-2"})))
        assert graph.srlgs_on_path(["A", "B", "C"]) == {"conduit-1", "conduit-2"}
        assert len(graph.links_in_srlg("conduit-1")) == 2
        assert len(graph.links_in_srlg("conduit-2")) == 1


class TestShortestPath:
    def test_direct_link_wins_by_hops(self, square):
        assert square.shortest_path("N0", "N2") == ["N0", "N2"]

    def test_km_weight_changes_route(self, square):
        path = square.shortest_path(
            "N0", "N2", weight=lambda link: link.length_km
        )
        # Diagonal is 150 km; around the ring is 200 km, so diagonal wins.
        assert path == ["N0", "N2"]

    def test_km_weight_prefers_cheap_detour(self):
        graph = NetworkGraph()
        for name in "ABC":
            graph.add_node(Node(name))
        graph.add_link(Link("A", "C", length_km=500.0))
        graph.add_link(Link("A", "B", length_km=100.0))
        graph.add_link(Link("B", "C", length_km=100.0))
        assert graph.shortest_path(
            "A", "C", weight=lambda link: link.length_km
        ) == ["A", "B", "C"]

    def test_excluded_link_forces_detour(self, square):
        path = square.shortest_path("N0", "N2", excluded_links=[("N0", "N2")])
        assert path in (["N0", "N1", "N2"], ["N0", "N3", "N2"])

    def test_excluded_node_forces_detour(self, square):
        path = square.shortest_path(
            "N0", "N2", excluded_links=[("N0", "N2")], excluded_nodes=["N1"]
        )
        assert path == ["N0", "N3", "N2"]

    def test_source_is_never_excluded(self, square):
        path = square.shortest_path("N0", "N2", excluded_nodes=["N0", "N2"])
        assert path == ["N0", "N2"]

    def test_no_path_raises(self):
        graph = NetworkGraph()
        graph.add_node(Node("A"))
        graph.add_node(Node("B"))
        with pytest.raises(NoPathError):
            graph.shortest_path("A", "B")

    def test_unknown_endpoint_raises(self, square):
        with pytest.raises(TopologyError):
            square.shortest_path("N0", "ghost")

    def test_negative_weight_rejected(self, square):
        with pytest.raises(TopologyError):
            square.shortest_path("N0", "N2", weight=lambda link: -1.0)

    @given(n=st.integers(min_value=3, max_value=12))
    def test_ring_shortest_path_takes_short_side(self, n):
        graph = ring(n)
        path = graph.shortest_path("N0", f"N{n // 2}")
        assert len(path) - 1 == n // 2


class TestKShortestPaths:
    def test_finds_all_simple_paths_in_square(self, square):
        paths = square.k_shortest_paths("N0", "N2", k=5)
        assert paths[0] == ["N0", "N2"]
        assert sorted(map(tuple, paths[1:])) == [
            ("N0", "N1", "N2"),
            ("N0", "N3", "N2"),
        ]

    def test_paths_are_loop_free(self, square):
        for path in square.k_shortest_paths("N0", "N2", k=5):
            assert len(set(path)) == len(path)

    def test_costs_nondecreasing(self, square):
        paths = square.k_shortest_paths(
            "N0", "N2", k=5, weight=lambda link: link.length_km
        )
        costs = [square.path_length_km(path) for path in paths]
        assert costs == sorted(costs)

    def test_k_one_equals_shortest(self, square):
        assert square.k_shortest_paths("N0", "N2", k=1) == [
            square.shortest_path("N0", "N2")
        ]

    def test_k_must_be_positive(self, square):
        with pytest.raises(ValueError):
            square.k_shortest_paths("N0", "N2", k=0)

    def test_no_path_raises(self):
        graph = NetworkGraph()
        graph.add_node(Node("A"))
        graph.add_node(Node("B"))
        with pytest.raises(NoPathError):
            graph.k_shortest_paths("A", "B", k=2)


class TestDisjointPath:
    def test_disjoint_path_in_square(self, square):
        primary = ["N0", "N1", "N2"]
        backup = square.disjoint_path(primary)
        assert backup[0] == "N0" and backup[-1] == "N2"
        assert not (set(backup[1:-1]) & set(primary[1:-1]))
        primary_links = {link.key for link in square.links_on_path(primary)}
        backup_links = {link.key for link in square.links_on_path(backup)}
        assert not (primary_links & backup_links)

    def test_srlg_disjointness_enforced(self):
        graph = NetworkGraph()
        for name in "ABCD":
            graph.add_node(Node(name))
        shared = frozenset({"conduit"})
        graph.add_link(Link("A", "B", srlgs=shared))
        graph.add_link(Link("B", "D"))
        graph.add_link(Link("A", "C", srlgs=shared))
        graph.add_link(Link("C", "D"))
        with pytest.raises(NoPathError):
            graph.disjoint_path(["A", "B", "D"])
        backup = graph.disjoint_path(["A", "B", "D"], srlg_disjoint=False)
        assert backup == ["A", "C", "D"]

    def test_short_path_rejected(self, square):
        with pytest.raises(TopologyError):
            square.disjoint_path(["N0"])
