"""Property tests: re-optimization under random churn and failures.

Hypothesis drives random interleavings of orders, teardowns, fiber
cuts, repairs, and global re-optimization cycles against a generated
backbone, and checks the migration guarantees after every step with
the chaos oracle (the invariant auditor) plus two explicit invariants:

* **never strand a lightpath** — every UP connection's lightpath is
  registered, UP, and every slot on its route is lit for it;
* **never double-assign** — no (link, channel) slot is claimed by two
  live lightpath segments;
* **typed outcomes throughout** — every connection record sits in a
  legal :class:`ConnectionState`, and survivors the optimizer touched
  are ACTIVE (UP) once the plan drains.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.connection import ConnectionState
from repro.faults.audit import audit_network
from repro.optimize import Reoptimizer
from repro.optimize.bench import build_optimize_network

SEED = 5
NODE_COUNT = 16

OPTIMIZE_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

operations = st.lists(
    st.tuples(
        st.sampled_from(["order", "teardown", "cut", "repair", "optimize"]),
        st.integers(min_value=0, max_value=999),
    ),
    min_size=4,
    max_size=12,
)


def check_invariants(net, connections):
    """The oracle bundle, run after every operation."""
    controller = net.controller
    report = audit_network(controller)
    assert report.ok, str(report)
    slots = {}
    for lightpath in controller.inventory.lightpaths.values():
        for segment in lightpath.segments:
            for key in segment.links:
                slot = (key, segment.channel)
                assert slot not in slots, (
                    f"double-assigned slot {slot}: "
                    f"{slots[slot]} and {lightpath.lightpath_id}"
                )
                slots[slot] = lightpath.lightpath_id
    for connection in connections:
        assert isinstance(connection.state, ConnectionState)
        if connection.state is ConnectionState.UP:
            for lightpath_id in connection.lightpath_ids:
                lightpath = controller.inventory.lightpaths.get(lightpath_id)
                assert lightpath is not None, (
                    f"{connection.connection_id} UP with stranded "
                    f"lightpath {lightpath_id}"
                )
                for segment in lightpath.segments:
                    for key in segment.links:
                        lit = controller.inventory.plant.dwdm_link(
                            *key
                        ).occupied_channels
                        assert segment.channel in lit, (
                            f"{lightpath_id} slot {key}@{segment.channel} "
                            f"is dark under an UP connection"
                        )


@OPTIMIZE_SETTINGS
@given(ops=operations)
def test_random_churn_with_reoptimization_never_strands(ops):
    net = build_optimize_network(SEED, node_count=NODE_COUNT)
    service = net.service_for(
        "prop-test", max_connections=4096, max_total_rate_gbps=1000000
    )
    optimizer = Reoptimizer(net.controller, audit_each_move=True)
    pops = [
        node.name
        for node in net.inventory.graph.nodes
        if node.kind != "premises"
    ]
    links = sorted(link.key for link in net.inventory.graph.links)
    connections = []
    cut = []
    order_index = 0
    for op, pick in ops:
        if op == "order":
            a = f"DC-{pops[order_index % len(pops)]}"
            b = f"DC-{pops[(order_index * 7 + 3) % len(pops)]}"
            if a == b:
                b = f"DC-{pops[(order_index * 7 + 4) % len(pops)]}"
            connections.append(service.request_connection(a, b, 10))
            order_index += 1
        elif op == "teardown":
            live = [
                c for c in connections if c.state is ConnectionState.UP
            ]
            if live:
                service.teardown_connection(
                    live[pick % len(live)].connection_id
                )
        elif op == "cut":
            if len(cut) < 2:
                key = links[pick % len(links)]
                if key not in cut:
                    net.controller.cut_link(*key)
                    cut.append(key)
        elif op == "repair":
            if cut:
                net.controller.repair_link(*cut.pop(pick % len(cut)))
        elif op == "optimize":
            outcome = {}

            def finished(plan, report, outcome=outcome):
                outcome["plan"], outcome["report"] = plan, report

            optimizer.run_cycle(on_done=finished)
            net.run()
            report = outcome["report"]
            # Migration never drops traffic, even under concurrent
            # failures: aborted rolls keep the old path, so no touched
            # connection may leave UP.
            assert report.dropped_connections == []
            assert report.audit_failures == []
        net.run()
        check_invariants(net, connections)
    # Drain any trailing restoration work and re-check once more.
    net.run()
    check_invariants(net, connections)
