"""Tests for the maintenance scheduler and bridge-and-roll integration."""

import pytest

from repro.core.connection import ConnectionState
from repro.errors import ConfigurationError
from repro.facade import build_griphon_testbed


@pytest.fixture
def net():
    return build_griphon_testbed(seed=1, latency_cv=0.0)


def up_connection(net, svc, a="PREMISES-A", b="PREMISES-C"):
    conn = svc.request_connection(a, b, rate_gbps=10)
    net.run()
    assert conn.state is ConnectionState.UP
    return conn


class TestScheduling:
    def test_validation(self, net):
        scheduler = net.maintenance
        with pytest.raises(ConfigurationError):
            scheduler.schedule("ROADM-I", "ROADM-IV", start_in=10, duration=0)
        with pytest.raises(ConfigurationError):
            scheduler.schedule("ROADM-I", "ROADM-IV", start_in=-1, duration=10)

    def test_window_opens_and_closes(self, net):
        svc = net.service_for("csp")
        record = net.maintenance.schedule(
            "ROADM-I", "ROADM-II", start_in=100, duration=3600,
            use_bridge_and_roll=False,
        )
        net.run(until=200)
        assert ("ROADM-I", "ROADM-II") in net.inventory.plant.failed_links()
        net.run()
        assert record.completed
        assert net.inventory.plant.failed_links() == []


class TestImpact:
    def test_bridge_and_roll_keeps_impact_to_milliseconds(self, net):
        svc = net.service_for("csp")
        conn = up_connection(net, svc)
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        a, b = lightpath.path[0], lightpath.path[1]
        record = net.maintenance.schedule(
            a, b, start_in=900, duration=4 * 3600, use_bridge_and_roll=True
        )
        net.run()
        assert record.migrated == [conn.connection_id]
        assert record.migration_failures == {}
        assert conn.state is ConnectionState.UP
        # Only the roll hit, never a restoration outage.
        assert conn.total_outage_s == pytest.approx(0.050)

    def test_without_bridge_and_roll_connection_eats_restoration(self, net):
        svc = net.service_for("csp")
        conn = up_connection(net, svc)
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        a, b = lightpath.path[0], lightpath.path[1]
        net.maintenance.schedule(
            a, b, start_in=900, duration=4 * 3600, use_bridge_and_roll=False
        )
        net.run()
        assert conn.state is ConnectionState.UP  # restored automatically
        assert conn.total_outage_s > 30  # but it hurt

    def test_migration_failure_recorded(self, net):
        svc = net.service_for("csp")
        conn = up_connection(net, svc)
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        a, b = lightpath.path[0], lightpath.path[1]
        # Break all alternate routes so no disjoint bridge exists.
        net.controller.auto_restore = False
        net.controller.cut_link("ROADM-I", "ROADM-III")
        net.controller.cut_link("ROADM-I", "ROADM-II")
        record = net.maintenance.schedule(
            a, b, start_in=900, duration=3600, use_bridge_and_roll=True
        )
        net.run()
        assert conn.connection_id in record.migration_failures

    def test_unaffected_connections_untouched(self, net):
        svc = net.service_for("csp")
        target = up_connection(net, svc, "PREMISES-A", "PREMISES-C")
        bystander = up_connection(net, svc, "PREMISES-B", "PREMISES-C")
        lightpath = net.inventory.lightpaths[target.lightpath_ids[0]]
        bystander_path = list(
            net.inventory.lightpaths[bystander.lightpath_ids[0]].path
        )
        a, b = lightpath.path[0], lightpath.path[1]
        if tuple(sorted((a, b))) in [
            tuple(sorted(pair))
            for pair in zip(bystander_path, bystander_path[1:])
        ]:
            pytest.skip("paths overlap in this seed; bystander not independent")
        net.maintenance.schedule(a, b, start_in=900, duration=3600)
        net.run()
        assert bystander.total_outage_s == 0.0
