"""The migration-safety differential layer.

Oracle: executing a :class:`MigrationPlan` on a live network must leave
it *exactly* where a fresh network that provisions the same final
assignment from scratch would land — identical per-link occupancy
bitmasks, identical (route, channels) multiset.  Any slot the migration
leaked, any mask it forgot to clear, any half-rolled lightpath breaks
the equality.

Second arm: the invariant auditor must pass at every intermediate move,
not just at the end — a migration that corrupts state transiently and
repairs it later is still a bug (something observed the network between
the moves).
"""

from repro.faults.audit import audit_network
from repro.optimize import (
    MigrationExecutor,
    NetworkSnapshot,
    plan_migrations,
)
from repro.optimize.bench import (
    assignment_fingerprint,
    build_optimize_network,
    fragment_network,
    place_orders,
    replay_assignment,
)

SEED = 7
NODE_COUNT = 24
WARM_ORDERS = 60


def fragmented_network():
    net = build_optimize_network(SEED, node_count=NODE_COUNT)
    service = net.service_for(
        "diff-test", max_connections=4096, max_total_rate_gbps=1000000
    )
    warm = place_orders(net, service, WARM_ORDERS)
    fragment_network(net, service, warm, keep_every=3)
    return net, service


def test_replay_oracle_matches_an_untouched_network():
    """Sanity of the oracle itself: replaying a network that was never
    migrated reproduces its fingerprint on a twin."""
    net, _ = fragmented_network()
    twin = build_optimize_network(SEED, node_count=NODE_COUNT)
    replay_assignment(net.controller, twin)
    assert assignment_fingerprint(net.controller) == assignment_fingerprint(
        twin.controller
    )


def test_executed_plan_equals_replayed_final_assignment():
    net, _ = fragmented_network()
    snapshot = NetworkSnapshot.from_controller(net.controller)
    plan = plan_migrations(snapshot)
    assert plan.moves, "scenario must yield moves"
    report = MigrationExecutor(net.controller).execute(plan)
    net.run()
    assert report.clean, report.to_dict()
    twin = build_optimize_network(SEED, node_count=NODE_COUNT)
    replay_assignment(net.controller, twin)
    assert assignment_fingerprint(net.controller) == assignment_fingerprint(
        twin.controller
    ), "migrated network differs from a from-scratch build of the same assignment"


def test_audit_passes_at_every_intermediate_move():
    """Step through the plan one move at a time, auditing the whole
    network between moves — the differential layer's per-step arm."""
    net, _ = fragmented_network()
    snapshot = NetworkSnapshot.from_controller(net.controller)
    plan = plan_migrations(snapshot)
    assert len(plan.moves) >= 2, "need multiple moves to step through"
    audits = []

    class AuditingExecutor(MigrationExecutor):
        pass

    executor = AuditingExecutor(net.controller, audit_each_move=True)
    report = executor.execute(plan)
    net.run()
    # The executor audited after every completed move; none tripped.
    assert report.completed == len(plan.moves)
    assert report.audit_failures == []
    # And the final state audits clean under an independent sweep.
    final = audit_network(net.controller)
    assert final.ok, str(final)
    assert not audits


def test_partial_execution_still_replay_consistent():
    """Even a prefix of the plan must leave replayable state: stop after
    the first move (max_moves=1) and run the oracle."""
    net, _ = fragmented_network()
    snapshot = NetworkSnapshot.from_controller(net.controller)
    plan = plan_migrations(snapshot, max_moves=1)
    assert len(plan.moves) == 1
    report = MigrationExecutor(net.controller).execute(plan)
    net.run()
    assert report.clean
    twin = build_optimize_network(SEED, node_count=NODE_COUNT)
    replay_assignment(net.controller, twin)
    assert assignment_fingerprint(net.controller) == assignment_fingerprint(
        twin.controller
    )
