"""Tests for GriphonNetwork assembly mechanics and build options."""

import pytest

from repro.errors import AdmissionError
from repro.facade import GriphonNetwork, build_griphon_testbed
from repro.topo.testbed import build_testbed_graph
from repro.units import gbps


class TestGriphonNetwork:
    def test_manual_assembly(self):
        """The facade's own path: build inventory, then finish_build."""
        net = GriphonNetwork(build_testbed_graph(), seed=3)
        net.inventory.install_roadm("ROADM-I")
        net.inventory.install_roadm("ROADM-IV")
        net.inventory.install_transponders("ROADM-I", gbps(10), 2)
        net.inventory.install_transponders("ROADM-IV", gbps(10), 2)
        net.inventory.install_nte("PREMISES-A", "ROADM-I")
        net.inventory.install_nte("PREMISES-C", "ROADM-IV")
        net.finish_build()
        assert net.controller is not None
        assert net.maintenance is not None

    def test_service_for_registers_once(self):
        net = build_griphon_testbed(seed=3)
        first = net.service_for("csp")
        second = net.service_for("csp")
        assert first is second

    def test_service_profile_parameters(self):
        net = build_griphon_testbed(seed=3)
        net.service_for(
            "vip",
            premises=["PREMISES-A"],
            max_connections=2,
            max_total_rate_gbps=20,
        )
        profile = net.controller.admission.profile("vip")
        assert profile.max_connections == 2
        assert profile.max_total_rate_bps == gbps(20)
        assert profile.premises == ["PREMISES-A"]

    def test_premises_restriction_enforced(self):
        net = build_griphon_testbed(seed=3)
        vip = net.service_for("vip", premises=["PREMISES-A", "PREMISES-B"])
        conn = vip.request_connection("PREMISES-A", "PREMISES-C", 10)
        assert conn.blocked_reason
        with pytest.raises(AdmissionError):
            net.controller.admission.admit(
                "vip", "PREMISES-A", "PREMISES-C", gbps(1)
            )

    def test_run_returns_event_count(self):
        net = build_griphon_testbed(seed=3)
        svc = net.service_for("csp")
        svc.request_connection("PREMISES-A", "PREMISES-B", 10)
        assert net.run() > 0

    def test_latency_cv_none_gives_jitter(self):
        def setup_time(seed):
            net = build_griphon_testbed(seed=seed)  # default jitter
            svc = net.service_for("csp")
            conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
            net.run()
            return conn.setup_duration

        assert setup_time(10) != setup_time(11)

    def test_latency_cv_zero_is_deterministic_across_seeds(self):
        def setup_time(seed):
            net = build_griphon_testbed(seed=seed, latency_cv=0.0)
            svc = net.service_for("csp")
            conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
            net.run()
            return conn.setup_duration

        assert setup_time(10) == setup_time(11)

    def test_grid_size_option(self):
        net = build_griphon_testbed(seed=3, grid_size=4)
        assert net.inventory.grid.size == 4

    def test_ip_layer_covers_core_mesh(self):
        net = build_griphon_testbed(seed=3)
        ip = net.controller.ip_layer
        assert sorted(ip.routers) == [
            "ROADM-I",
            "ROADM-II",
            "ROADM-III",
            "ROADM-IV",
        ]
        # One adjacency per inter-ROADM fiber span (5 in the testbed).
        adjacency_count = sum(
            1
            for link in net.inventory.graph.links
            if not link.a.startswith("PREMISES")
            and not link.b.startswith("PREMISES")
        )
        assert adjacency_count == 5
        for link in net.inventory.graph.links:
            if link.a.startswith("PREMISES") or link.b.startswith("PREMISES"):
                continue
            assert ip.adjacency(link.a, link.b).up
