"""Chaos property tests: inject random faults, audit for residue.

Hypothesis drives random fault plans (mode mix, probability, windows)
against batches of orders on the testbed and checks the saga's global
guarantees with the invariant auditor as the oracle:

* whatever the plan injected, no resource leaks and nothing is
  double-allocated — neither mid-run nor after a full teardown;
* after tearing everything down only the carrier's standing OTN-line
  infrastructure remains allocated;
* the whole scenario is byte-deterministic per master seed.
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.connection import ConnectionState
from repro.facade import build_griphon_testbed
from repro.faults import FAULT_MODES, FaultPlan, FaultSpec, audit_network

PAIRS = [
    ("PREMISES-A", "PREMISES-B"),
    ("PREMISES-A", "PREMISES-C"),
    ("PREMISES-B", "PREMISES-C"),
]
RATES = (10, 12, 1)

TEARDOWN_STATES = (
    ConnectionState.UP,
    ConnectionState.DEGRADED,
    ConnectionState.FAILED,
    ConnectionState.RESTORING,
)

fault_spec = st.builds(
    FaultSpec,
    ems=st.sampled_from(["*", "roadm_ems", "otn_ems", "fxc_ctl", "controller"]),
    command=st.sampled_from(["*", "tune", "roadm", "fxc", "crossconnect"]),
    mode=st.sampled_from(FAULT_MODES),
    probability=st.sampled_from([0.1, 0.3, 0.6]),
    count=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
)

CHAOS_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_scenario(seed, specs, orders):
    """Build, order, run; returns (net, service, connections)."""
    plan = FaultPlan(specs)
    net = build_griphon_testbed(seed=seed, fault_plan=plan)
    service = net.service_for("chaos")
    connections = []
    for index in range(orders):
        a, b = PAIRS[index % len(PAIRS)]
        connections.append(
            service.request_connection(a, b, RATES[index % len(RATES)])
        )
    net.run()
    return net, service, connections


def teardown_all(net, service, connections):
    for connection in connections:
        if connection.state in TEARDOWN_STATES:
            service.teardown_connection(connection.connection_id)
    net.run()


def fingerprint(net, connections):
    """A canonical JSON digest of everything the scenario determined."""
    return json.dumps(
        {
            "now": net.sim.now,
            "states": [c.state.value for c in connections],
            "counters": net.metrics.counters(),
        },
        sort_keys=True,
    )


@CHAOS_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    specs=st.lists(fault_spec, min_size=1, max_size=3),
    orders=st.integers(min_value=3, max_value=7),
)
def test_chaos_never_leaks(seed, specs, orders):
    net, service, connections = run_scenario(seed, specs, orders)
    mid = audit_network(net.controller)
    assert mid.ok, str(mid)
    teardown_all(net, service, connections)
    final = audit_network(net.controller)
    assert final.ok, str(final)
    # Zero residue: only standing OTN-line lightpaths survive, and the
    # customer's quota is fully returned.
    line_lightpaths = set(net.controller._line_lightpath.values())
    assert set(net.inventory.lightpaths) == line_lightpaths
    usage = service.usage()
    assert usage["connections"] == 0
    assert usage["committed_gbps"] == 0


@CHAOS_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    specs=st.lists(fault_spec, min_size=1, max_size=2),
)
def test_chaos_is_byte_deterministic_per_seed(seed, specs):
    runs = []
    for _ in range(2):
        net, _, connections = run_scenario(seed, list(specs), 5)
        runs.append(fingerprint(net, connections))
    assert runs[0] == runs[1]
