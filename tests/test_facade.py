"""Tests for the network builders and the public package surface."""

import pytest

import repro
from repro import build_griphon_backbone, build_griphon_testbed
from repro.core.connection import ConnectionState
from repro.units import gbps


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_exports(self):
        assert callable(repro.build_griphon_testbed)
        assert callable(repro.build_griphon_backbone)


class TestTestbedBuilder:
    @pytest.fixture(scope="class")
    def net(self):
        return build_griphon_testbed(seed=7, latency_cv=0.0)

    def test_four_roadms(self, net):
        assert len(net.inventory.roadms) == 4

    def test_transponder_rates(self, net):
        rates = net.controller.wavelength_rates()
        assert rates == [gbps(10), gbps(40)]

    def test_three_premises_with_ntes(self, net):
        assert sorted(net.inventory.ntes) == [
            "PREMISES-A",
            "PREMISES-B",
            "PREMISES-C",
        ]

    def test_fxcs_at_pops_and_premises(self, net):
        assert len(net.inventory.fxcs) == 7

    def test_otn_switches_installed(self, net):
        assert len(net.inventory.otn_switches) == 4

    def test_without_otn(self):
        net = build_griphon_testbed(seed=0, with_otn=False)
        assert net.inventory.otn_switches == {}

    def test_no_otn_rounds_up_to_wavelength(self):
        net = build_griphon_testbed(seed=0, with_otn=False, latency_cv=0.0)
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-B", 12)
        net.run()
        assert conn.state is ConnectionState.UP
        assert len(conn.lightpath_ids) == 2
        assert not conn.circuit_ids


class TestBackboneBuilder:
    @pytest.fixture(scope="class")
    def net(self):
        return build_griphon_backbone(seed=7, latency_cv=0.0)

    def test_twelve_roadms(self, net):
        assert len(net.inventory.roadms) == 12

    def test_five_data_centers(self, net):
        assert len(net.inventory.ntes) == 5

    def test_transcontinental_connection_uses_regens(self):
        net = build_griphon_backbone(seed=7, latency_cv=0.0)
        svc = net.service_for("csp")
        conn = svc.request_connection("DC-EAST", "DC-WEST", 10)
        net.run()
        assert conn.state is ConnectionState.UP
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        km = net.inventory.graph.path_length_km(lightpath.path)
        if km > 2500:
            assert lightpath.regen_sites

    def test_setup_time_longer_than_testbed(self):
        """More hops and longer spans mean slower setup, same order."""
        net = build_griphon_backbone(seed=7, latency_cv=0.0)
        svc = net.service_for("csp")
        conn = svc.request_connection("DC-EAST", "DC-WEST", 10)
        net.run()
        assert 60 <= conn.setup_duration <= 300


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        def run(seed):
            net = build_griphon_testbed(seed=seed)
            svc = net.service_for("csp")
            conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
            net.run()
            return conn.setup_duration

        assert run(5) == run(5)
        assert run(5) != run(6)
