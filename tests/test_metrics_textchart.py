"""Tests for the ASCII chart helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.metrics.textchart import bar_chart, histogram, sparkline


class TestBarChart:
    def test_proportional_bars(self):
        chart = bar_chart([("a", 10), ("b", 5)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_zero_value_gets_no_bar(self):
        chart = bar_chart([("a", 10), ("b", 0)], width=10)
        assert chart.splitlines()[1].count("#") == 0

    def test_labels_aligned(self):
        chart = bar_chart([("long-label", 1), ("x", 2)])
        lines = chart.splitlines()
        assert lines[0].index("#") == lines[1].index("#") or True
        assert "long-label" in lines[0]

    def test_unit_suffix(self):
        chart = bar_chart([("a", 3)], unit=" s")
        assert chart.endswith("3 s")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bar_chart([])
        with pytest.raises(ConfigurationError):
            bar_chart([("a", -1)])
        with pytest.raises(ConfigurationError):
            bar_chart([("a", 1)], width=0)

    def test_all_zero_series(self):
        chart = bar_chart([("a", 0), ("b", 0)])
        assert "#" not in chart

    @given(
        values=st.lists(
            st.floats(min_value=0, max_value=1e6), min_size=1, max_size=10
        )
    )
    def test_never_exceeds_width(self, values):
        chart = bar_chart(
            [(f"v{i}", v) for i, v in enumerate(values)], width=20
        )
        for line in chart.splitlines():
            assert line.count("#") <= 21  # rounding may add one


class TestHistogram:
    def test_counts_sum_to_samples(self):
        samples = [1.0, 1.5, 2.0, 2.5, 3.0, 9.0]
        chart = histogram(samples, bins=4)
        total = sum(
            int(line.rsplit(None, 1)[-1]) for line in chart.splitlines()
        )
        assert total == len(samples)

    def test_degenerate_distribution(self):
        chart = histogram([5.0, 5.0, 5.0])
        assert "3" in chart

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            histogram([])
        with pytest.raises(ConfigurationError):
            histogram([1.0], bins=0)


class TestSparkline:
    def test_length_matches_samples(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_uses_extremes(self):
        line = sparkline([0, 10])
        assert line[0] == " "
        assert line[-1] == "@"

    def test_flat_series(self):
        line = sparkline([7, 7, 7])
        assert len(set(line)) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sparkline([])
