"""Unit tests for the resilience primitives.

Covers the retry-policy backoff math, the circuit-breaker state machine
(closed -> open -> half-open), fault-spec validation and matching, the
fault plan's deterministic dice, and the resilient executor's
retry/exhaustion/best-effort/breaker behavior.
"""

import pytest

from repro.errors import (
    CommandFailedError,
    ConfigurationError,
)
from repro.faults.plan import FAULT_MODES, FaultPlan, FaultSpec
from repro.faults.resilient import (
    CircuitBreaker,
    ResilientExecutor,
    RetryPolicy,
)
from repro.obs.registry import MetricsRegistry
from repro.sim.randomness import RandomStreams


def drain(gen):
    """Run a generator to completion; returns (yields, return value)."""
    yields = []
    while True:
        try:
            yields.append(next(gen))
        except StopIteration as stop:
            return yields, stop.value


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_factor=2.0, jitter=0.0)
        assert policy.backoff_delay(1) == 1.0
        assert policy.backoff_delay(2) == 2.0
        assert policy.backoff_delay(3) == 4.0

    def test_backoff_is_capped(self):
        policy = RetryPolicy(
            backoff_base_s=1.0, backoff_factor=2.0, backoff_max_s=5.0, jitter=0.0
        )
        assert policy.backoff_delay(4) == 5.0
        assert policy.backoff_delay(10) == 5.0

    def test_jitter_stretches_by_roll(self):
        policy = RetryPolicy(backoff_base_s=2.0, backoff_factor=2.0, jitter=0.2)
        assert policy.backoff_delay(1, jitter_roll=0.0) == 2.0
        assert policy.backoff_delay(1, jitter_roll=0.5) == pytest.approx(2.2)
        assert policy.backoff_delay(1, jitter_roll=1.0) == pytest.approx(2.4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(breaker_threshold=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(breaker_cooldown_s=0.0)


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=60.0)
        assert breaker.state == "closed"
        assert breaker.allow(0.0)
        assert breaker.retry_after(0.0) == 0.0

    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=60.0)
        assert breaker.record_failure(10.0) is False
        assert breaker.state == "closed"
        assert breaker.record_failure(10.0) is True
        assert breaker.state == "open"
        assert not breaker.allow(10.0)
        assert breaker.retry_after(30.0) == pytest.approx(40.0)

    def test_half_open_probe_after_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=60.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(59.0)
        assert breaker.allow(60.0)
        assert breaker.state == "half_open"

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=60.0)
        breaker.record_failure(0.0)
        breaker.allow(60.0)
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(threshold=3, cooldown_s=60.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.state == "open"
        breaker.allow(60.0)
        assert breaker.state == "half_open"
        # One failed probe re-opens regardless of the threshold.
        assert breaker.record_failure(60.0) is True
        assert breaker.state == "open"
        assert breaker.retry_after(60.0) == pytest.approx(60.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown_s=0.0)


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(mode="explode")
        with pytest.raises(ConfigurationError):
            FaultSpec(probability=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(count=0)
        with pytest.raises(ConfigurationError):
            FaultSpec(error_after_s=-1.0)
        with pytest.raises(ConfigurationError):
            FaultSpec(after_s=100.0, until_s=50.0)

    def test_all_modes_are_constructible(self):
        for mode in FAULT_MODES:
            assert FaultSpec(mode=mode).mode == mode

    def test_matching_uses_wildcards(self):
        spec = FaultSpec(ems="roadm_*", element="ROADM-I*", command="tune")
        assert spec.matches("roadm_ems", "ROADM-II", "tune", 0.0)
        assert not spec.matches("otn_ems", "ROADM-II", "tune", 0.0)
        assert not spec.matches("roadm_ems", "OTN-II", "tune", 0.0)
        assert not spec.matches("roadm_ems", "ROADM-II", "roadm", 0.0)

    def test_matching_respects_time_window(self):
        spec = FaultSpec(after_s=100.0, until_s=200.0)
        assert not spec.matches("roadm_ems", "x", "tune", 99.9)
        assert spec.matches("roadm_ems", "x", "tune", 100.0)
        assert not spec.matches("roadm_ems", "x", "tune", 200.0)

    def test_dict_roundtrip(self):
        spec = FaultSpec(ems="otn_ems", mode="timeout", count=3, after_s=10.0)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            FaultSpec.from_dict({"ems": "*", "severity": "high"})


class TestFaultPlan:
    def test_empty_plan(self):
        assert FaultPlan().empty
        assert not FaultPlan([FaultSpec()]).empty

    def test_count_exhaustion_empties_the_plan(self):
        plan = FaultPlan([FaultSpec(count=1)])
        assert not plan.empty
        assert plan.decide("roadm_ems", "x", "tune", 0.0) is not None
        assert plan.empty
        assert plan.decide("roadm_ems", "x", "tune", 0.0) is None
        assert plan.injected_counts == [1]

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(
            [FaultSpec(command="tune", mode="timeout"), FaultSpec(mode="fail")]
        )
        decided = plan.decide("roadm_ems", "x", "tune", 0.0)
        assert decided is not None and decided.mode == "timeout"
        assert plan.injected_counts == [1, 0]

    def test_inactive_window_does_not_consume(self):
        plan = FaultPlan([FaultSpec(count=1, after_s=100.0)])
        assert plan.decide("roadm_ems", "x", "tune", 50.0) is None
        assert plan.injected_counts == [0]
        assert plan.decide("roadm_ems", "x", "tune", 150.0) is not None

    def test_probability_draws_are_deterministic(self):
        def decisions(seed):
            plan = FaultPlan([FaultSpec(probability=0.5)])
            plan.bind(RandomStreams(seed))
            return [
                plan.decide("roadm_ems", "ROADM-I", "tune", 0.0) is not None
                for _ in range(64)
            ]

        run = decisions(42)
        assert run == decisions(42)
        assert True in run and False in run

    def test_probabilistic_rules_require_binding(self):
        plan = FaultPlan([FaultSpec(probability=0.5)])
        with pytest.raises(ConfigurationError):
            plan.decide("roadm_ems", "x", "tune", 0.0)

    def test_add_mid_run(self):
        plan = FaultPlan()
        plan.add(FaultSpec(count=2))
        assert not plan.empty
        assert len(plan) == 1

    def test_dict_roundtrip(self):
        plan = FaultPlan([FaultSpec(mode="stuck"), FaultSpec(count=2)])
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt.specs == plan.specs


def executor(plan=None, policy=None, clock=None, seed=0):
    """A wired executor plus its metrics registry."""
    metrics = MetricsRegistry()
    streams = RandomStreams(seed).spawn("resilient")
    return (
        ResilientExecutor(
            plan,
            policy,
            streams=streams,
            clock=clock if clock is not None else (lambda: 0.0),
            metrics=metrics,
        ),
        metrics,
    )


class TestResilientExecutor:
    def test_empty_plan_is_pure_passthrough(self):
        runner, metrics = executor(FaultPlan())
        yields, total = drain(
            runner.execute("roadm_ems", "ROADM-I", "tune", 7.5)
        )
        assert yields == [7.5]
        assert total == 7.5
        assert metrics.counters() == {}

    def test_exhausted_plan_reverts_to_passthrough(self):
        plan = FaultPlan([FaultSpec(count=1, error_after_s=0.0)])
        policy = RetryPolicy(jitter=0.0)
        runner, _ = executor(plan, policy)
        drain(runner.execute("roadm_ems", "ROADM-I", "tune", 3.0))
        yields, total = drain(
            runner.execute("roadm_ems", "ROADM-I", "tune", 3.0)
        )
        assert yields == [3.0] and total == 3.0

    def test_transient_fault_is_retried_to_success(self):
        plan = FaultPlan([FaultSpec(count=1, mode="transient", error_after_s=0.5)])
        policy = RetryPolicy(backoff_base_s=1.0, jitter=0.0)
        runner, metrics = executor(plan, policy)
        yields, total = drain(
            runner.execute("roadm_ems", "ROADM-I", "tune", 3.0)
        )
        # error cost, one backoff, then the command's nominal duration.
        assert yields == [0.5, 1.0, 3.0]
        assert total == pytest.approx(4.5)
        counters = metrics.counters()
        assert counters["ems.retry"] == 1
        assert counters["ems.retry.roadm_ems"] == 1
        assert counters["faults.injected.transient"] == 1
        assert "ems.command.failed" not in counters
        assert runner.breaker_state("roadm_ems") == "closed"

    def test_timeout_fault_burns_the_full_timeout(self):
        plan = FaultPlan([FaultSpec(count=1, mode="timeout")])
        policy = RetryPolicy(timeout_s=30.0, backoff_base_s=1.0, jitter=0.0)
        runner, _ = executor(plan, policy)
        yields, _ = drain(runner.execute("otn_ems", "OTN-I", "crossconnect", 2.0))
        assert yields[0] == 30.0

    def test_exhaustion_raises_with_attempt_count(self):
        plan = FaultPlan([FaultSpec(mode="transient", error_after_s=0.5)])
        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        runner, metrics = executor(plan, policy)
        gen = runner.execute("roadm_ems", "ROADM-I", "tune", 3.0)
        with pytest.raises(CommandFailedError) as err:
            while True:
                next(gen)
        assert err.value.attempts == 3
        assert err.value.element == "ROADM-I"
        assert err.value.command == "tune"
        counters = metrics.counters()
        assert counters["ems.retry"] == 2
        assert counters["ems.command.failed.roadm_ems"] == 1

    def test_hard_fault_fails_fast_without_retries(self):
        plan = FaultPlan([FaultSpec(mode="fail", error_after_s=0.25)])
        runner, metrics = executor(plan, RetryPolicy(jitter=0.0))
        gen = runner.execute("fxc_ctl", "fxc@ROADM-I", "fxc", 1.0)
        with pytest.raises(CommandFailedError) as err:
            while True:
                next(gen)
        assert err.value.retryable is False
        assert "ems.retry" not in metrics.counters()

    def test_best_effort_forces_through(self):
        plan = FaultPlan([FaultSpec(mode="transient", error_after_s=0.5)])
        policy = RetryPolicy(max_attempts=2, jitter=0.0)
        runner, metrics = executor(plan, policy)
        yields, total = drain(
            runner.execute(
                "roadm_ems", "ROADM-I", "roadm", 1.0, best_effort=True
            )
        )
        assert total == pytest.approx(sum(yields))
        counters = metrics.counters()
        assert counters["ems.command.forced"] == 1
        assert counters["ems.command.failed"] == 1

    def test_breaker_opens_and_rejects(self):
        plan = FaultPlan([FaultSpec(mode="transient", error_after_s=0.5)])
        policy = RetryPolicy(
            max_attempts=4,
            backoff_base_s=1.0,
            backoff_factor=2.0,
            jitter=0.0,
            breaker_threshold=2,
            breaker_cooldown_s=120.0,
        )
        runner, metrics = executor(plan, policy)
        gen = runner.execute("roadm_ems", "ROADM-I", "tune", 3.0)
        with pytest.raises(CommandFailedError):
            while True:
                next(gen)
        counters = metrics.counters()
        # Two real faults open the breaker; attempts 3 and 4 are
        # rejected fast without touching the (faulted) element.
        assert counters["faults.injected"] == 2
        assert counters["ems.breaker.open.roadm_ems"] == 1
        assert counters["ems.breaker.rejected.roadm_ems"] == 2
        assert runner.breaker_state("roadm_ems") == "open"

    def test_half_open_probe_closes_breaker(self):
        now = [0.0]
        # A probability-0 rule keeps the plan non-empty (machinery
        # active) without ever injecting.
        plan = FaultPlan(
            [
                FaultSpec(count=1, mode="transient", error_after_s=0.0),
                FaultSpec(probability=0.0),
            ]
        )
        plan.bind(RandomStreams(3))
        policy = RetryPolicy(
            max_attempts=2,
            jitter=0.0,
            breaker_threshold=1,
            breaker_cooldown_s=100.0,
        )
        runner, metrics = executor(plan, policy, clock=lambda: now[0])
        # First command: the single fault opens the breaker, the retry
        # is rejected (still open), and the command fails.
        gen = runner.execute("nte_ctl", "nte@PREMISES-A", "nte", 1.0)
        with pytest.raises(CommandFailedError):
            while True:
                next(gen)
        assert runner.breaker_state("nte_ctl") == "open"
        # Past the cooldown the next command is the half-open probe;
        # it succeeds and the breaker closes.
        now[0] = 150.0
        yields, total = drain(
            runner.execute("nte_ctl", "nte@PREMISES-A", "nte", 1.0)
        )
        assert yields == [1.0] and total == 1.0
        assert metrics.counters()["ems.breaker.half_open"] == 1
        assert runner.breaker_state("nte_ctl") == "closed"

    def test_breakers_are_per_ems(self):
        runner, _ = executor(FaultPlan([FaultSpec(probability=0.0)]))
        runner.breaker("roadm_ems").record_failure(0.0)
        assert runner.breaker_state("otn_ems") == "closed"
