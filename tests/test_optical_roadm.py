"""Tests for ROADM nodes: degrees, ports, add/drop and express connects."""

import pytest

from repro.errors import (
    ConfigurationError,
    EquipmentError,
    WavelengthBlockedError,
)
from repro.optical import Roadm, WavelengthGrid


@pytest.fixture
def grid():
    return WavelengthGrid(8)


@pytest.fixture
def roadm(grid):
    """A 3-degree colorless/non-directional ROADM with 4 ports."""
    node = Roadm("ROADM-I", grid)
    for neighbor in ("ROADM-II", "ROADM-III", "ROADM-IV"):
        node.add_degree(neighbor)
    node.add_ports(4)
    return node


class TestConstruction:
    def test_degree_count(self, roadm):
        assert roadm.degree_count == 3
        assert roadm.degrees == {"ROADM-II", "ROADM-III", "ROADM-IV"}

    def test_duplicate_degree_rejected(self, roadm):
        with pytest.raises(ConfigurationError):
            roadm.add_degree("ROADM-II")

    def test_self_degree_rejected(self, grid):
        node = Roadm("X", grid)
        with pytest.raises(ConfigurationError):
            node.add_degree("X")

    def test_ports_installed(self, roadm):
        assert len(roadm.ports) == 4
        assert all(not port.in_use for port in roadm.ports)

    def test_port_count_must_be_positive(self, roadm):
        with pytest.raises(ConfigurationError):
            roadm.add_ports(0)

    def test_directional_roadm_requires_fixed_degree(self, grid):
        node = Roadm("X", grid, non_directional=False)
        node.add_degree("Y")
        with pytest.raises(ConfigurationError):
            node.add_ports(1)
        node.add_ports(1, fixed_degree="Y")

    def test_colored_roadm_requires_fixed_channel(self, grid):
        node = Roadm("X", grid, colorless=False)
        node.add_degree("Y")
        with pytest.raises(ConfigurationError):
            node.add_ports(1)
        node.add_ports(1, fixed_channel=3)

    def test_fixed_degree_must_exist(self, roadm):
        with pytest.raises(ConfigurationError):
            roadm.add_ports(1, fixed_degree="ROADM-X")

    def test_unknown_port_lookup(self, roadm):
        with pytest.raises(EquipmentError):
            roadm.port("AD:ROADM-I:99")


class TestAddDrop:
    def test_connect_reserves_channel_and_port(self, roadm):
        port = roadm.ports[0]
        roadm.connect_add_drop(port.port_id, "ROADM-III", 2, "lp-1")
        assert port.in_use
        assert port.connected_degree == "ROADM-III"
        assert port.connected_channel == 2
        assert roadm.channel_owner("ROADM-III", 2) == "lp-1"

    def test_colorless_port_any_channel(self, roadm):
        port = roadm.ports[0]
        roadm.connect_add_drop(port.port_id, "ROADM-II", 7, "lp-1")
        assert port.connected_channel == 7

    def test_nondirectional_port_any_degree(self, roadm):
        first, second = roadm.ports[0], roadm.ports[1]
        roadm.connect_add_drop(first.port_id, "ROADM-II", 0, "lp-1")
        roadm.connect_add_drop(second.port_id, "ROADM-IV", 0, "lp-2")
        assert roadm.channel_owner("ROADM-II", 0) == "lp-1"
        assert roadm.channel_owner("ROADM-IV", 0) == "lp-2"

    def test_busy_port_rejected(self, roadm):
        port = roadm.ports[0]
        roadm.connect_add_drop(port.port_id, "ROADM-II", 0, "lp-1")
        with pytest.raises(EquipmentError):
            roadm.connect_add_drop(port.port_id, "ROADM-III", 1, "lp-2")

    def test_channel_conflict_on_degree_blocked(self, roadm):
        roadm.connect_add_drop(roadm.ports[0].port_id, "ROADM-II", 0, "lp-1")
        with pytest.raises(WavelengthBlockedError):
            roadm.connect_add_drop(roadm.ports[1].port_id, "ROADM-II", 0, "lp-2")

    def test_unknown_degree_rejected(self, roadm):
        with pytest.raises(EquipmentError):
            roadm.connect_add_drop(roadm.ports[0].port_id, "ROADM-X", 0, "lp-1")

    def test_directional_port_enforces_degree(self, grid):
        node = Roadm("X", grid, non_directional=False)
        node.add_degree("Y")
        node.add_degree("Z")
        port = node.add_ports(1, fixed_degree="Y")[0]
        with pytest.raises(EquipmentError):
            node.connect_add_drop(port.port_id, "Z", 0, "lp-1")

    def test_colored_port_enforces_channel(self, grid):
        node = Roadm("X", grid, colorless=False)
        node.add_degree("Y")
        port = node.add_ports(1, fixed_channel=3)[0]
        with pytest.raises(EquipmentError):
            node.connect_add_drop(port.port_id, "Y", 4, "lp-1")
        node.connect_add_drop(port.port_id, "Y", 3, "lp-1")

    def test_disconnect_frees_resources(self, roadm):
        port = roadm.ports[0]
        roadm.connect_add_drop(port.port_id, "ROADM-II", 0, "lp-1")
        roadm.disconnect_add_drop(port.port_id, "lp-1")
        assert not port.in_use
        assert roadm.channel_owner("ROADM-II", 0) is None

    def test_disconnect_owner_mismatch(self, roadm):
        port = roadm.ports[0]
        roadm.connect_add_drop(port.port_id, "ROADM-II", 0, "lp-1")
        with pytest.raises(EquipmentError):
            roadm.disconnect_add_drop(port.port_id, "lp-2")

    def test_disconnect_idle_port_rejected(self, roadm):
        with pytest.raises(EquipmentError):
            roadm.disconnect_add_drop(roadm.ports[0].port_id, "lp-1")


class TestExpress:
    def test_express_occupies_both_degrees(self, roadm):
        roadm.connect_express("ROADM-II", "ROADM-III", 5, "lp-1")
        assert roadm.channel_owner("ROADM-II", 5) == "lp-1"
        assert roadm.channel_owner("ROADM-III", 5) == "lp-1"

    def test_express_conflicts_with_add_drop(self, roadm):
        roadm.connect_add_drop(roadm.ports[0].port_id, "ROADM-II", 5, "lp-1")
        with pytest.raises(WavelengthBlockedError):
            roadm.connect_express("ROADM-II", "ROADM-III", 5, "lp-2")

    def test_express_same_degree_rejected(self, roadm):
        with pytest.raises(EquipmentError):
            roadm.connect_express("ROADM-II", "ROADM-II", 0, "lp-1")

    def test_disconnect_express(self, roadm):
        roadm.connect_express("ROADM-II", "ROADM-III", 5, "lp-1")
        roadm.disconnect_express("ROADM-II", "ROADM-III", 5, "lp-1")
        assert roadm.channel_owner("ROADM-II", 5) is None
        assert roadm.channel_owner("ROADM-III", 5) is None

    def test_disconnect_express_owner_mismatch(self, roadm):
        roadm.connect_express("ROADM-II", "ROADM-III", 5, "lp-1")
        with pytest.raises(EquipmentError):
            roadm.disconnect_express("ROADM-II", "ROADM-III", 5, "lp-2")

    def test_disconnect_missing_express(self, roadm):
        with pytest.raises(EquipmentError):
            roadm.disconnect_express("ROADM-II", "ROADM-III", 5, "lp-1")


class TestQueries:
    def test_free_channels_shrink(self, roadm):
        roadm.connect_express("ROADM-II", "ROADM-III", 0, "lp-1")
        assert 0 not in roadm.free_channels("ROADM-II")
        assert 0 not in roadm.free_channels("ROADM-III")
        assert 0 in roadm.free_channels("ROADM-IV")

    def test_free_ports_filters(self, grid):
        node = Roadm("X", grid, non_directional=False)
        node.add_degree("Y")
        node.add_degree("Z")
        node.add_ports(1, fixed_degree="Y")
        node.add_ports(1, fixed_degree="Z")
        free_toward_y = node.free_ports(degree="Y")
        assert len(free_toward_y) == 1
        assert free_toward_y[0].fixed_degree == "Y"

    def test_free_ports_excludes_busy(self, roadm):
        roadm.connect_add_drop(roadm.ports[0].port_id, "ROADM-II", 0, "lp-1")
        assert len(roadm.free_ports()) == 3
