"""Tests for the discrete-event kernel: ordering, cancellation, tracing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=42.0).now == 42.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(2.0, fired.append, "middle")
        sim.run()
        assert fired == ["early", "middle", "late"]

    def test_simultaneous_events_fire_fifo(self):
        sim = Simulator()
        fired = []
        for i in range(20):
            sim.schedule(5.0, fired.append, i)
        sim.run()
        assert fired == list(range(20))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(7.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0

    def test_run_until_then_continue(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        sim.run()
        assert fired == ["a", "b"]

    def test_run_returns_event_count(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        assert sim.run() == 5

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def recurse():
            sim.run()

        sim.schedule(0.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()

    def test_step_on_empty_queue(self):
        assert Simulator().step() is False

    def test_pending_counts_live_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        event = sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending == 1

    def test_pending_drains_to_zero_after_run(self):
        sim = Simulator()
        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, lambda: None)
        sim.schedule(4.0, lambda: None).cancel()
        assert sim.pending == 3
        sim.run()
        assert sim.pending == 0

    def test_double_cancel_decrements_once(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        event = sim.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending == 1

    def test_cancel_after_fire_does_not_drift(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        event.cancel()  # already fired; must not double-count
        assert sim.pending == 1

    def test_pending_tracks_reschedules_from_callbacks(self):
        sim = Simulator()

        def chain(depth):
            if depth:
                sim.schedule(1.0, chain, depth - 1)

        sim.schedule(1.0, chain, 3)
        sim.run()
        assert sim.pending == 0


class TestCancellation:
    def test_canceled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert event.canceled

    def test_cancel_from_earlier_event(self):
        sim = Simulator()
        fired = []
        victim = sim.schedule(2.0, fired.append, "victim")
        sim.schedule(1.0, victim.cancel)
        sim.run()
        assert fired == []


class TestTracing:
    def test_trace_records_labeled_events(self):
        sim = Simulator()
        sim.enable_trace()
        sim.schedule(1.0, lambda: None, label="tune-laser")
        sim.schedule(2.0, lambda: None)  # unlabeled: not traced
        sim.run()
        assert sim.trace == [(1.0, "tune-laser")]

    def test_trace_disabled_by_default(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None, label="x")
        sim.run()
        assert sim.trace == []


class TestDeterminism:
    @given(delays=st.lists(st.floats(min_value=0, max_value=1e6), max_size=50))
    def test_fire_times_are_sorted(self, delays):
        sim = Simulator()
        times = []
        for delay in delays:
            sim.schedule(delay, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)
        assert len(times) == len(delays)

    @given(
        delays=st.lists(
            st.floats(min_value=0, max_value=100), min_size=1, max_size=30
        )
    )
    def test_identical_schedules_give_identical_orders(self, delays):
        def run_once():
            sim = Simulator()
            order = []
            for i, delay in enumerate(delays):
                sim.schedule(delay, order.append, i)
            sim.run()
            return order

        assert run_once() == run_once()
