"""Tests for the discrete-event kernel: ordering, cancellation, tracing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=42.0).now == 42.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(2.0, fired.append, "middle")
        sim.run()
        assert fired == ["early", "middle", "late"]

    def test_simultaneous_events_fire_fifo(self):
        sim = Simulator()
        fired = []
        for i in range(20):
            sim.schedule(5.0, fired.append, i)
        sim.run()
        assert fired == list(range(20))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(7.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0

    def test_run_until_then_continue(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        sim.run()
        assert fired == ["a", "b"]

    def test_run_returns_event_count(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        assert sim.run() == 5

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def recurse():
            sim.run()

        sim.schedule(0.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()

    def test_step_on_empty_queue(self):
        assert Simulator().step() is False

    def test_pending_counts_live_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        event = sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending == 1

    def test_pending_drains_to_zero_after_run(self):
        sim = Simulator()
        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, lambda: None)
        sim.schedule(4.0, lambda: None).cancel()
        assert sim.pending == 3
        sim.run()
        assert sim.pending == 0

    def test_double_cancel_decrements_once(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        event = sim.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending == 1

    def test_cancel_after_fire_does_not_drift(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        event.cancel()  # already fired; must not double-count
        assert sim.pending == 1

    def test_pending_tracks_reschedules_from_callbacks(self):
        sim = Simulator()

        def chain(depth):
            if depth:
                sim.schedule(1.0, chain, depth - 1)

        sim.schedule(1.0, chain, 3)
        sim.run()
        assert sim.pending == 0


class TestCancellation:
    def test_canceled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert event.canceled

    def test_cancel_from_earlier_event(self):
        sim = Simulator()
        fired = []
        victim = sim.schedule(2.0, fired.append, "victim")
        sim.schedule(1.0, victim.cancel)
        sim.run()
        assert fired == []


class TestScheduleMany:
    def test_batch_fires_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_many(
            [
                (3.0, fired.append, ("late",)),
                (1.0, fired.append, ("early",)),
                (2.0, fired.append, ("middle",)),
            ]
        )
        sim.run()
        assert fired == ["early", "middle", "late"]

    def test_entry_arities(self):
        sim = Simulator()
        fired = []
        sim.schedule_many(
            [
                (1.0, lambda: fired.append("bare")),
                (2.0, fired.append, ("with-args",)),
                (3.0, fired.append, ("labeled",), "my-label"),
            ]
        )
        sim.enable_trace()
        sim.run()
        assert fired == ["bare", "with-args", "labeled"]
        assert sim.trace == [(3.0, "my-label")]

    def test_fifo_matches_schedule_at(self):
        def run_with(batch):
            sim = Simulator()
            order = []
            sim.schedule_at(5.0, order.append, "before")
            if batch:
                sim.schedule_many(
                    [(5.0, order.append, (i,)) for i in range(20)]
                )
            else:
                for i in range(20):
                    sim.schedule_at(5.0, order.append, i)
            sim.schedule_at(5.0, order.append, "after")
            sim.run()
            return order

        assert run_with(batch=True) == run_with(batch=False)

    def test_large_batch_uses_heapify_path_and_stays_sorted(self):
        sim = Simulator()
        times = []

        def record():
            times.append(sim.now)

        sim.schedule_many([(float((i * 7919) % 500), record) for i in range(200)])
        sim.schedule_many([(float((i * 104729) % 500), record) for i in range(200)])
        sim.run()
        assert times == sorted(times)
        assert len(times) == 400

    def test_past_time_rejected_atomically(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_many([(20.0, lambda: None), (5.0, lambda: None)])
        assert sim.pending == 0
        assert sim.run() == 0

    def test_empty_batch(self):
        sim = Simulator()
        assert sim.schedule_many([]) == []
        assert sim.pending == 0

    def test_batch_events_are_cancelable(self):
        sim = Simulator()
        fired = []
        events = sim.schedule_many(
            [(float(i), fired.append, (i,)) for i in range(1, 11)]
        )
        events[4].cancel()
        sim.run()
        assert 5 not in fired
        assert len(fired) == 9


class TestCompaction:
    def test_mass_cancellation_compacts_heap(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(1000)]
        for event in events[100:]:
            event.cancel()
        # Compaction triggered: the dead majority is gone from the heap
        # (at most a sub-threshold remainder of canceled events linger).
        assert len(sim._heap) < 250
        assert sim.pending == 100
        assert sim.run() == 100

    def test_small_heaps_never_compact(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(20)]
        for event in events[1:]:
            event.cancel()
        assert len(sim._heap) == 20  # under the compaction floor
        assert sim.run() == 1

    def test_compaction_during_run_from_callback(self):
        sim = Simulator()
        fired = []
        victims = [
            sim.schedule(100.0 + i, fired.append, i) for i in range(500)
        ]

        def massacre():
            for victim in victims[:400]:
                victim.cancel()

        sim.schedule(1.0, massacre)
        survivor = sim.schedule(1000.0, fired.append, "survivor")
        assert survivor is not None
        sim.run()
        assert fired[-1] == "survivor"
        assert len(fired) == 101  # 100 surviving victims + survivor
        assert sim.pending == 0

    def test_counter_consistent_after_mixed_pop_and_compact(self):
        sim = Simulator()
        keep = []
        events = [sim.schedule(float(i + 1), keep.append, i) for i in range(200)]
        # Cancel a minority: below the >50% threshold, so they stay in
        # the heap and run() pops them lazily.
        for event in events[::4]:
            event.cancel()
        assert sim.run() == 150
        assert sim._canceled_in_heap == 0


class TestTimeSource:
    def test_same_closure_every_call(self):
        sim = Simulator()
        assert sim.time_source() is sim.time_source()

    def test_tracks_clock(self):
        sim = Simulator()
        clock = sim.time_source()
        assert clock() == 0.0
        sim.schedule(9.0, lambda: None)
        sim.run()
        assert clock() == 9.0

    def test_distinct_per_simulator(self):
        assert Simulator().time_source() is not Simulator().time_source()


class TestTracing:
    def test_trace_records_labeled_events(self):
        sim = Simulator()
        sim.enable_trace()
        sim.schedule(1.0, lambda: None, label="tune-laser")
        sim.schedule(2.0, lambda: None)  # unlabeled: not traced
        sim.run()
        assert sim.trace == [(1.0, "tune-laser")]

    def test_trace_disabled_by_default(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None, label="x")
        sim.run()
        assert sim.trace == []


class TestDeterminism:
    @given(delays=st.lists(st.floats(min_value=0, max_value=1e6), max_size=50))
    def test_fire_times_are_sorted(self, delays):
        sim = Simulator()
        times = []
        for delay in delays:
            sim.schedule(delay, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)
        assert len(times) == len(delays)

    @given(
        delays=st.lists(
            st.floats(min_value=0, max_value=100), min_size=1, max_size=30
        )
    )
    def test_identical_schedules_give_identical_orders(self, delays):
        def run_once():
            sim = Simulator()
            order = []
            for i, delay in enumerate(delays):
                sim.schedule(delay, order.append, i)
            sim.run()
            return order

        assert run_once() == run_once()
