"""Tests for routing and wavelength assignment."""

import pytest

from repro.core.inventory import InventoryDatabase
from repro.core.rwa import RwaEngine
from repro.errors import (
    ConfigurationError,
    NoPathError,
    WavelengthBlockedError,
)
from repro.optical import WavelengthGrid
from repro.optical.impairments import ReachModel
from repro.sim import RandomStreams
from repro.topo import Link, NetworkGraph, Node
from repro.topo.testbed import build_testbed_graph
from repro.units import gbps


@pytest.fixture
def inventory():
    return InventoryDatabase(build_testbed_graph(), WavelengthGrid(4))


@pytest.fixture
def engine(inventory):
    return RwaEngine(inventory)


class TestPlanning:
    def test_shortest_route_first_fit(self, engine):
        plan = engine.plan("ROADM-I", "ROADM-IV", gbps(10))
        assert plan.path == ["ROADM-I", "ROADM-IV"]
        assert plan.hop_count == 1
        assert len(plan.segments) == 1
        assert plan.segments[0].channel == 0
        assert plan.regen_sites == []

    def test_same_endpoints_rejected(self, engine):
        with pytest.raises(ConfigurationError):
            engine.plan("ROADM-I", "ROADM-I", gbps(10))

    def test_first_fit_picks_lowest_free(self, engine, inventory):
        inventory.plant.dwdm_link("ROADM-I", "ROADM-IV").occupy(0, "x")
        plan = engine.plan("ROADM-I", "ROADM-IV", gbps(10))
        assert plan.segments[0].channel == 1

    def test_blocked_channel_forces_detour(self, engine, inventory):
        link = inventory.plant.dwdm_link("ROADM-I", "ROADM-IV")
        for channel in range(4):
            link.occupy(channel, "x")
        plan = engine.plan("ROADM-I", "ROADM-IV", gbps(10))
        assert plan.hop_count == 2  # direct link exhausted, detour taken

    def test_total_exhaustion_raises(self, inventory):
        engine = RwaEngine(inventory, k_paths=8)
        for link in inventory.graph.links:
            dwdm = inventory.plant.dwdm_link(link.a, link.b)
            for channel in range(4):
                dwdm.occupy(channel, "x")
        with pytest.raises(WavelengthBlockedError):
            engine.plan("ROADM-I", "ROADM-IV", gbps(10))

    def test_failed_route_filtered(self, engine, inventory):
        inventory.plant.cut_link("ROADM-I", "ROADM-IV")
        plan = engine.plan("ROADM-I", "ROADM-IV", gbps(10))
        assert plan.hop_count >= 2

    def test_all_routes_failed(self, inventory):
        engine = RwaEngine(inventory)
        for link in inventory.graph.links:
            if link.a.startswith("ROADM") and link.b.startswith("ROADM"):
                inventory.plant.cut_link(link.a, link.b)
        with pytest.raises(NoPathError):
            engine.plan("ROADM-I", "ROADM-IV", gbps(10))

    def test_excluded_links_respected(self, engine):
        plan = engine.plan(
            "ROADM-I",
            "ROADM-IV",
            gbps(10),
            excluded_links=[("ROADM-I", "ROADM-IV")],
        )
        assert ("ROADM-I", "ROADM-IV") not in [
            tuple(sorted(k)) for k in zip(plan.path, plan.path[1:])
        ]

    def test_srlg_disjoint_planning(self, engine):
        plan = engine.plan(
            "ROADM-I",
            "ROADM-IV",
            gbps(10),
            avoid_srlgs_of=["ROADM-I", "ROADM-III", "ROADM-IV"],
        )
        assert plan.path == ["ROADM-I", "ROADM-IV"]
        # And avoiding the direct path forces the long way.
        plan2 = engine.plan(
            "ROADM-I",
            "ROADM-IV",
            gbps(10),
            avoid_srlgs_of=["ROADM-I", "ROADM-IV"],
        )
        assert "ROADM-III" in plan2.path


class TestWavelengthContinuity:
    def test_continuity_across_hops(self, inventory):
        engine = RwaEngine(inventory)
        # Block channel 0 on one hop of the 2-hop route and the direct
        # link entirely, forcing channel continuity logic to pick 1.
        direct = inventory.plant.dwdm_link("ROADM-I", "ROADM-IV")
        for channel in range(4):
            direct.occupy(channel, "x")
        inventory.plant.dwdm_link("ROADM-I", "ROADM-III").occupy(0, "y")
        plan = engine.plan("ROADM-I", "ROADM-IV", gbps(10))
        assert plan.path == ["ROADM-I", "ROADM-III", "ROADM-IV"]
        assert plan.segments[0].channel == 1


class TestRandomAssignment:
    def test_random_needs_streams(self, inventory):
        with pytest.raises(ConfigurationError):
            RwaEngine(inventory, assignment="random")

    def test_random_channels_vary(self, inventory):
        engine = RwaEngine(
            inventory, assignment="random", streams=RandomStreams(3)
        )
        channels = {
            engine.plan("ROADM-I", "ROADM-IV", gbps(10)).segments[0].channel
            for _ in range(30)
        }
        assert len(channels) > 1

    def test_invalid_policy(self, inventory):
        with pytest.raises(ConfigurationError):
            RwaEngine(inventory, assignment="weird")

    def test_invalid_k(self, inventory):
        with pytest.raises(ConfigurationError):
            RwaEngine(inventory, k_paths=0)


class TestRegenSegmentation:
    @pytest.fixture
    def long_haul(self):
        graph = NetworkGraph()
        for name in ("A", "M", "B"):
            graph.add_node(Node(name))
        graph.add_link(Link("A", "M", length_km=2000.0))
        graph.add_link(Link("M", "B", length_km=2000.0))
        return InventoryDatabase(graph, WavelengthGrid(4))

    def test_regen_splits_segments(self, long_haul):
        engine = RwaEngine(long_haul, reach=ReachModel())
        plan = engine.plan("A", "B", gbps(10))
        assert plan.regen_sites == ["M"]
        assert len(plan.segments) == 2

    def test_segments_can_use_different_channels(self, long_haul):
        # Channel 0 busy only on the first leg: the second segment may
        # still use it because the regen breaks continuity.
        long_haul.plant.dwdm_link("A", "M").occupy(0, "x")
        engine = RwaEngine(long_haul)
        plan = engine.plan("A", "B", gbps(10))
        assert plan.segments[0].channel == 1
        assert plan.segments[1].channel == 0
