"""End-to-end integration on the continental backbone.

Drives a full simulated day of mixed workload — bulk replication jobs,
interactive sub-rate connections, a fiber cut, and a maintenance window
— across the five data centers and checks global sanity: connections
settle, restoration works at continental scale, and nothing leaks.
"""

import pytest

from repro.core.connection import ConnectionKind, ConnectionState
from repro.facade import build_griphon_backbone
from repro.units import DAY, HOUR, TERABYTE
from repro.workload import BulkTransferWorkload, PoissonArrivals


@pytest.fixture
def net():
    return build_griphon_backbone(seed=99, latency_cv=0.0)


class TestBackboneDay:
    def test_mixed_day_of_traffic(self, net):
        svc = net.service_for(
            "csp", max_connections=128, max_total_rate_gbps=100000
        )
        workload = BulkTransferWorkload(
            net.sim,
            net.streams,
            svc,
            premises=["DC-EAST", "DC-SOUTH", "DC-CENTRAL", "DC-WEST",
                      "DC-NORTHWEST"],
            mean_volume_bits=3 * TERABYTE,
        )
        PoissonArrivals(
            net.sim,
            net.streams,
            workload.submit_job,
            rate_per_s=8.0 / HOUR,
            stop_at=0.5 * DAY,
        )
        net.run(until=1 * DAY)
        net.run()
        assert workload.records, "expected jobs to arrive"
        finished = workload.completed()
        assert finished, "expected completed transfers"
        for record in finished:
            assert record.completion_time > 0
        # Every connection reached a terminal or stable state.
        for conn in svc.connections():
            assert conn.state in (
                ConnectionState.RELEASED,
                ConnectionState.UP,
                ConnectionState.BLOCKED,
            )

    def test_transcontinental_restoration(self, net):
        svc = net.service_for("csp")
        conn = svc.request_connection("DC-EAST", "DC-WEST", 10)
        net.run()
        assert conn.state is ConnectionState.UP
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        # Cut a middle span of the route.
        mid = len(lightpath.path) // 2
        a, b = lightpath.path[mid - 1], lightpath.path[mid]
        net.controller.cut_link(a, b)
        net.run()
        assert conn.state is ConnectionState.UP
        assert conn.total_outage_s < 10 * 60  # minutes, not hours
        new_path = net.inventory.lightpaths[conn.lightpath_ids[0]].path
        keys = {tuple(sorted(p)) for p in zip(new_path, new_path[1:])}
        assert tuple(sorted((a, b))) not in keys

    def test_conduit_cut_hits_srlg_peers(self, net):
        """Cutting the shared Texas conduit fails two links at once."""
        svc = net.service_for("csp")
        conn = svc.request_connection("DC-CENTRAL", "DC-WEST", 10)
        net.run()
        net.controller.cut_srlg("conduit:texas")
        net.run()
        failed = net.inventory.plant.failed_links()
        assert len(failed) == 2
        # If the route used either failed link, it must have moved.
        if conn.state is ConnectionState.UP:
            path = net.inventory.lightpaths[conn.lightpath_ids[0]].path
            keys = {tuple(sorted(p)) for p in zip(path, path[1:])}
            assert not (set(failed) & keys)

    def test_subrate_between_all_dc_pairs(self, net):
        svc = net.service_for(
            "csp", max_connections=64, max_total_rate_gbps=10000
        )
        dcs = ["DC-EAST", "DC-SOUTH", "DC-CENTRAL", "DC-WEST", "DC-NORTHWEST"]
        connections = []
        for i, a in enumerate(dcs):
            for b in dcs[i + 1 :]:
                connections.append(svc.request_connection(a, b, 1))
        net.run()
        states = {c.state for c in connections}
        assert states <= {ConnectionState.UP, ConnectionState.BLOCKED}
        up = [c for c in connections if c.state is ConnectionState.UP]
        assert len(up) >= 8  # most pairs should fit
        assert all(c.kind is ConnectionKind.SUBWAVELENGTH for c in up)

    def test_packet_services_coast_to_coast(self, net):
        svc = net.service_for("csp")
        conn = svc.request_connection("DC-EAST", "DC-WEST", 0.3)
        net.run()
        assert conn.state is ConnectionState.UP
        assert conn.kind is ConnectionKind.PACKET
        evc = net.controller.ip_layer.evcs[0]
        assert len(evc.path) >= 3  # multi-hop across the mesh
