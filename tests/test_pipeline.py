"""Unit tests for the concurrent order pipeline.

Covers intake backpressure (bounded queue, QueueFull outcomes), the
defer/retry policy under wavelength contention, deterministic ordering
(arrival order and the seeded tiebreak), ticket introspection, the
typed `BodService` surface, the batched RWA entry point, and the
same-instant last-wavelength race the serial path resolves by call
order only.
"""

import pytest

from repro.core.connection import ConnectionKind, ConnectionState
from repro.core.rwa import PlanRequest
from repro.core.service import Deferred, QueueFull
from repro.errors import ConfigurationError
from repro.facade import build_griphon_testbed
from repro.faults import audit_network
from repro.pipeline import TicketState
from repro.units import GBPS


def _pipeline_net(seed=0, **kwargs):
    net = build_griphon_testbed(seed=seed)
    net.enable_pipeline(**kwargs)
    return net


# -- construction & configuration -------------------------------------------


def test_enable_pipeline_requires_finished_build():
    from repro.facade import GriphonNetwork
    from repro.topo.testbed import build_testbed_graph

    net = GriphonNetwork(build_testbed_graph())
    with pytest.raises(ConfigurationError):
        net.enable_pipeline()


@pytest.mark.parametrize(
    "kwargs",
    [
        {"capacity": 0},
        {"round_size": 0},
        {"round_interval": -1.0},
        {"max_defers": -1},
    ],
)
def test_invalid_pipeline_parameters_rejected(kwargs):
    net = build_griphon_testbed()
    with pytest.raises(ConfigurationError):
        net.enable_pipeline(**kwargs)


def test_submit_without_pipeline_is_a_configuration_error():
    net = build_griphon_testbed()
    service = net.service_for("csp")
    with pytest.raises(ConfigurationError, match="no order pipeline"):
        service.submit_connection("PREMISES-A", "PREMISES-B", 10)


# -- intake & backpressure ---------------------------------------------------


def test_full_queue_settles_queue_full_without_spending_quota():
    net = _pipeline_net(capacity=2)
    service = net.service_for("csp")
    tickets = [
        service.submit_connection("PREMISES-A", "PREMISES-B", 10)
        for _ in range(3)
    ]
    assert [t.state for t in tickets[:2]] == [TicketState.QUEUED] * 2
    refused = tickets[2]
    assert refused.state is TicketState.QUEUE_FULL
    assert refused.settled
    assert refused.connection_id is None
    outcome = service.order_outcome(refused)
    assert isinstance(outcome, QueueFull)
    assert outcome.capacity == 2
    assert "queue is full" in outcome.reason
    # Backpressure must not touch the admission ledger.
    assert net.controller.admission.usage("csp")["connections"] == 0
    assert net.metrics.counters()["pipeline.queue_full"] == 1


def test_queued_outcome_is_none_until_the_round_runs():
    net = _pipeline_net()
    service = net.service_for("csp")
    ticket = service.submit_connection("PREMISES-A", "PREMISES-C", 10)
    assert service.order_outcome(ticket) is None
    net.run()
    connection = service.order_outcome(ticket)
    assert ticket.state is TicketState.ACCEPTED
    assert connection.state is ConnectionState.UP
    assert ticket.settled_at is not None


def test_ticket_lookup_and_listing():
    net = _pipeline_net()
    service = net.service_for("csp")
    ticket = service.submit_connection("PREMISES-A", "PREMISES-B", 10)
    assert net.pipeline.ticket(ticket.order_id) is ticket
    assert net.pipeline.tickets() == [ticket]
    with pytest.raises(ConfigurationError):
        net.pipeline.ticket("order-999")


def test_queue_drains_and_gauge_returns_to_zero():
    net = _pipeline_net(round_size=2)
    service = net.service_for("csp", max_connections=64)
    for _ in range(5):
        service.submit_connection("PREMISES-A", "PREMISES-C", 1)
    assert net.pipeline.queue_depth() == 5
    assert net.metrics.gauge("pipeline.queue_depth") == 5
    net.run()
    assert net.pipeline.queue_depth() == 0
    assert net.metrics.gauge("pipeline.queue_depth") == 0
    assert net.pipeline.rounds == 3


def test_late_submission_restarts_the_round_loop():
    net = _pipeline_net()
    service = net.service_for("csp")
    first = service.submit_connection("PREMISES-A", "PREMISES-B", 10)
    net.run()
    assert first.state is TicketState.ACCEPTED
    second = service.submit_connection("PREMISES-B", "PREMISES-C", 10)
    net.run()
    assert second.state is TicketState.ACCEPTED
    # The second burst arrived after the first round finished setting up.
    assert second.submitted_at > first.submitted_at


def test_blocked_reason_matches_serial_path():
    serial = build_griphon_testbed(seed=0)
    serial_service = serial.service_for("csp", premises=["PREMISES-A"])
    piped = _pipeline_net()
    piped_service = piped.service_for("csp", premises=["PREMISES-A"])

    conn = serial_service.request_connection("PREMISES-A", "PREMISES-B", 10)
    serial.run()
    ticket = piped_service.submit_connection("PREMISES-A", "PREMISES-B", 10)
    piped.run()
    assert ticket.state is TicketState.BLOCKED
    assert ticket.reason == conn.blocked_reason
    assert piped_service.order_outcome(ticket).blocked_reason == ticket.reason


# -- determinism -------------------------------------------------------------


def _burst_states(seed, seeded_tiebreak):
    net = _pipeline_net(seed=seed, seeded_tiebreak=seeded_tiebreak)
    service = net.service_for("csp", max_connections=64)
    pairs = [
        ("PREMISES-A", "PREMISES-B"),
        ("PREMISES-A", "PREMISES-C"),
        ("PREMISES-B", "PREMISES-C"),
    ]
    tickets = [
        service.submit_connection(*pairs[i % 3], rate_gbps=10)
        for i in range(9)
    ]
    net.run()
    return [(t.state.value, t.connection_id, t.rounds_deferred) for t in tickets]


@pytest.mark.parametrize("seeded_tiebreak", [False, True])
def test_same_seed_same_outcome(seeded_tiebreak):
    assert _burst_states(3, seeded_tiebreak) == _burst_states(3, seeded_tiebreak)


# -- the batched RWA entry point ---------------------------------------------


def test_plan_batch_single_request_matches_plan():
    net = build_griphon_testbed(seed=0)
    engine = net.controller.rwa
    solo = net.controller.rwa.plan("ROADM-I", "ROADM-IV", 10 * GBPS)
    [item] = engine.plan_batch(
        [PlanRequest("ROADM-I", "ROADM-IV", 10 * GBPS)]
    )
    assert item.ok and item.error is None and not item.contended
    assert item.plan.path == solo.path
    assert [s.channel for s in item.plan.segments] == [
        s.channel for s in solo.segments
    ]
    assert item.plan.regen_sites == solo.regen_sites


def test_plan_batch_empty_round():
    net = build_griphon_testbed(seed=0)
    assert net.controller.rwa.plan_batch([]) == []


# -- the last-wavelength race ------------------------------------------------
#
# Regression for the serial API's order dependence: with one wavelength
# per link and the route pinned, two same-instant orders both get channel
# 0 from back-to-back plan() calls — whichever claims first wins and the
# loser fails at claim time.  plan_batch validates the second plan against
# the round's earlier claims, so the loser is reported as *contended* (a
# defer, not a block) instead of silently double-assigned.

_PIN_ROUTE = (("ROADM-I", "ROADM-IV"), ("ROADM-I", "ROADM-III"))


def test_plan_batch_flags_same_round_wavelength_contention():
    net = build_griphon_testbed(seed=0, grid_size=1)
    engine = net.controller.rwa
    # The serial engine hands both callers the same channel.
    plans = [
        engine.plan(
            "ROADM-I", "ROADM-IV", 10 * GBPS, excluded_links=list(_PIN_ROUTE)
        )
        for _ in range(2)
    ]
    assert [s.channel for s in plans[0].segments] == [
        s.channel for s in plans[1].segments
    ]
    request = PlanRequest(
        "ROADM-I", "ROADM-IV", 10 * GBPS, excluded_links=_PIN_ROUTE
    )
    first, second = net.controller.rwa.plan_batch([request, request])
    assert first.ok
    assert not second.ok
    assert second.contended
    assert "wavelength" in str(second.error)


def test_pipeline_resolves_same_instant_contention_deterministically():
    results = []
    for _ in range(2):
        net = build_griphon_testbed(seed=0, grid_size=1)
        net.enable_pipeline(round_size=4, max_defers=1)
        service = net.service_for(
            "csp", max_connections=64, max_total_rate_gbps=10000
        )
        tickets = [
            service.submit_connection(
                "PREMISES-A", "PREMISES-C", 10, ConnectionKind.WAVELENGTH
            )
            for _ in range(6)
        ]
        net.run()
        assert all(t.settled for t in tickets)
        states = [t.state for t in tickets]
        # Winners took the channel; losers were retried before settling.
        assert states.count(TicketState.ACCEPTED) >= 1
        assert any(t.rounds_deferred >= 1 for t in tickets)
        assert all(t.rounds_deferred <= 1 for t in tickets)
        assert audit_network(net.controller).ok
        results.append([(t.state.value, t.rounds_deferred) for t in tickets])
    assert results[0] == results[1]


def test_terminal_defer_returns_quota_and_typed_outcome():
    net = build_griphon_testbed(seed=0, grid_size=1)
    net.enable_pipeline(round_size=4, max_defers=0)
    service = net.service_for(
        "csp", max_connections=64, max_total_rate_gbps=10000
    )
    tickets = [
        service.submit_connection(
            "PREMISES-A", "PREMISES-C", 10, ConnectionKind.WAVELENGTH
        )
        for _ in range(4)
    ]
    net.run()
    deferred = [t for t in tickets if t.state is TicketState.DEFERRED]
    assert deferred, "max_defers=0 must settle contention losers DEFERRED"
    for ticket in deferred:
        outcome = service.order_outcome(ticket)
        assert isinstance(outcome, Deferred)
        assert "contention" in outcome.reason
        assert ticket.connection_id is None
    # Withdrawn orders must not linger in the ledger or the records.
    usage = net.controller.admission.usage("csp")
    accepted = [t for t in tickets if t.state is TicketState.ACCEPTED]
    assert usage["connections"] == len(accepted)
    assert audit_network(net.controller).ok


# -- fairness / no starvation ------------------------------------------------


def test_no_starvation_under_sustained_overload():
    """Every order settles within a bounded number of rounds.

    A sustained overload (several same-instant bursts, far more demand
    than the testbed holds) must leave no ticket queued forever: each is
    provisioned or typed BLOCKED/DEFERRED, deferred losers retry at most
    ``max_defers`` times, and the queue gauge returns to zero.
    """
    net = build_griphon_testbed(seed=1, grid_size=4)
    net.enable_pipeline(round_size=4, round_interval=5.0, max_defers=2)
    service = net.service_for(
        "csp", max_connections=256, max_total_rate_gbps=100000
    )
    pairs = [
        ("PREMISES-A", "PREMISES-B"),
        ("PREMISES-A", "PREMISES-C"),
        ("PREMISES-B", "PREMISES-C"),
    ]
    tickets = []

    def burst():
        for i in range(8):
            tickets.append(
                service.submit_connection(*pairs[i % 3], rate_gbps=10)
            )

    for at in (0.0, 1.0, 2.0):
        net.sim.schedule(at, burst)
    net.run()

    assert len(tickets) == 24
    assert all(t.settled for t in tickets), [t.state for t in tickets]
    assert all(t.rounds_deferred <= 2 for t in tickets)
    assert net.pipeline.queue_depth() == 0
    assert net.metrics.gauge("pipeline.queue_depth") == 0
    # Deferred retries keep their original priority: nothing settles
    # later than the round budget allows (queue of 24, >=4 per round,
    # plus max_defers retries each).
    assert net.pipeline.rounds <= 24 // 4 * 3 + 3
    assert audit_network(net.controller).ok


# -- observability -----------------------------------------------------------


def test_pipeline_spans_and_metrics():
    net = build_griphon_testbed(seed=0, tracing=True)
    net.enable_pipeline(round_size=2)
    service = net.service_for("csp", max_connections=64)
    for _ in range(3):
        service.submit_connection("PREMISES-A", "PREMISES-C", 10)
    net.run()
    rounds = net.tracer.spans("pipeline.round")
    assert len(rounds) == 2
    assert [s.tags["orders"] for s in rounds] == [2, 1]
    assert net.tracer.spans("rwa.plan_batch")
    counters = net.metrics.counters()
    assert counters["pipeline.submitted"] == 3
    assert counters["pipeline.accepted"] == 3
    assert counters["pipeline.rounds"] == 2
