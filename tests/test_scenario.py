"""Tests for the declarative scenario runner."""

import pytest

from repro.core.connection import ConnectionState
from repro.errors import ConfigurationError
from repro.facade import build_griphon_testbed
from repro.scenario import Scenario, ScenarioEvent, run_scenario
from repro.units import HOUR


def basic_spec():
    return {
        "name": "cut-and-repair",
        "duration_s": 4 * HOUR,
        "events": [
            {"at": 0, "action": "request",
             "params": {"customer": "csp", "a": "PREMISES-A",
                        "b": "PREMISES-C", "rate_gbps": 10}},
            {"at": 1 * HOUR, "action": "cut",
             "params": {"a": "ROADM-I", "b": "ROADM-IV"}},
            {"at": 2 * HOUR, "action": "repair",
             "params": {"a": "ROADM-I", "b": "ROADM-IV"}},
            {"at": 3 * HOUR, "action": "teardown", "params": {"index": 0}},
        ],
    }


class TestSpecParsing:
    def test_from_dict_roundtrip(self):
        scenario = Scenario.from_dict(basic_spec())
        assert scenario.name == "cut-and-repair"
        assert len(scenario.events) == 4

    def test_missing_key(self):
        with pytest.raises(ConfigurationError):
            Scenario.from_dict({"name": "x", "events": []})

    def test_unknown_action(self):
        with pytest.raises(ConfigurationError):
            ScenarioEvent(0, "explode")

    def test_negative_time(self):
        with pytest.raises(ConfigurationError):
            ScenarioEvent(-1, "cut")

    def test_event_beyond_duration(self):
        with pytest.raises(ConfigurationError):
            Scenario("x", 10.0, [ScenarioEvent(20.0, "cut")])

    def test_nonpositive_duration(self):
        with pytest.raises(ConfigurationError):
            Scenario("x", 0.0, [])


class TestExecution:
    def test_full_lifecycle(self):
        net = build_griphon_testbed(seed=14, latency_cv=0.0)
        result = run_scenario(net, Scenario.from_dict(basic_spec()))
        assert result.errors == []
        conn = result.connections[0]
        assert conn.state is ConnectionState.RELEASED
        # The cut at 1h cost about a minute of restoration.
        assert 30 < conn.total_outage_s < 180
        assert any("cut" in line for line in result.log)

    def test_availability_report(self):
        net = build_griphon_testbed(seed=14, latency_cv=0.0)
        result = run_scenario(net, Scenario.from_dict(basic_spec()))
        report = result.availability_report()
        conn = result.connections[0]
        assert 0.97 < report[conn.connection_id] < 1.0

    def test_maintenance_action(self):
        net = build_griphon_testbed(seed=15, latency_cv=0.0)
        scenario = Scenario.from_dict({
            "name": "maintenance",
            "duration_s": 8 * HOUR,
            "events": [
                {"at": 0, "action": "request",
                 "params": {"customer": "csp", "a": "PREMISES-A",
                            "b": "PREMISES-C", "rate_gbps": 10}},
                {"at": 1 * HOUR, "action": "maintenance",
                 "params": {"a": "ROADM-I", "b": "ROADM-IV",
                            "duration": 2 * HOUR}},
            ],
        })
        result = run_scenario(net, scenario)
        assert result.errors == []
        conn = result.connections[0]
        # Bridge-and-roll kept the maintenance nearly hitless.
        assert conn.total_outage_s < 0.2

    def test_errors_recorded_not_raised(self):
        net = build_griphon_testbed(seed=16, latency_cv=0.0)
        scenario = Scenario.from_dict({
            "name": "broken",
            "duration_s": HOUR,
            "events": [
                {"at": 0, "action": "teardown", "params": {"index": 0}},
                {"at": 10, "action": "cut",
                 "params": {"a": "ROADM-I", "b": "GHOST"}},
            ],
        })
        result = run_scenario(net, scenario)
        assert len(result.errors) == 2
        assert result.connections == []

    def test_regroom_and_reclaim_actions(self):
        net = build_griphon_testbed(seed=17, latency_cv=0.0,
                                    nte_interfaces=12)
        scenario = Scenario.from_dict({
            "name": "housekeeping",
            "duration_s": 6 * HOUR,
            "events": [
                {"at": 0, "action": "cut",
                 "params": {"a": "ROADM-I", "b": "ROADM-IV"}},
                {"at": 60, "action": "request",
                 "params": {"customer": "csp", "a": "PREMISES-A",
                            "b": "PREMISES-C", "rate_gbps": 10}},
                {"at": 1 * HOUR, "action": "repair",
                 "params": {"a": "ROADM-I", "b": "ROADM-IV"}},
                {"at": 2 * HOUR, "action": "regroom", "params": {}},
                {"at": 3 * HOUR, "action": "reclaim", "params": {}},
            ],
        })
        result = run_scenario(net, scenario)
        assert result.errors == []
        conn = result.connections[0]
        path = net.inventory.lightpaths[conn.lightpath_ids[0]].path
        assert path == ["ROADM-I", "ROADM-IV"]  # regroomed back
        assert any("regroom: 1 candidate" in line for line in result.log)
