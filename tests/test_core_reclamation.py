"""Tests for OTN line reclamation (resource-pool re-use)."""

import pytest

from repro.core.connection import ConnectionState
from repro.core.reclamation import OtnLineReclaimer
from repro.errors import ConfigurationError
from repro.facade import build_griphon_testbed
from repro.units import HOUR


@pytest.fixture
def net():
    return build_griphon_testbed(seed=21, latency_cv=0.0, nte_interfaces=12)


def idle_line_scenario(net):
    """Create an OTN line, then free it: order 1G, tear it down."""
    svc = net.service_for("csp")
    conn = svc.request_connection("PREMISES-A", "PREMISES-C", 1)
    net.run()
    assert conn.state is ConnectionState.UP
    svc.teardown_connection(conn.connection_id)
    net.run()
    return svc


class TestSweep:
    def test_busy_line_kept(self, net):
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 1)
        net.run()
        reclaimer = OtnLineReclaimer(net.controller, holding_time_s=0.0)
        report = reclaimer.sweep()
        assert report.reclaimed == []
        assert report.kept_busy == len(net.inventory.otn_lines)
        assert conn.state is ConnectionState.UP

    def test_idle_line_kept_during_holding_time(self, net):
        idle_line_scenario(net)
        reclaimer = OtnLineReclaimer(net.controller, holding_time_s=1 * HOUR)
        report = reclaimer.sweep()
        assert report.reclaimed == []
        assert report.kept_young >= 1
        assert reclaimer.idle_lines()

    def test_idle_line_reclaimed_after_holding_time(self, net):
        idle_line_scenario(net)
        lines_before = len(net.inventory.otn_lines)
        assert lines_before >= 1
        lightpaths_before = len(net.inventory.lightpaths)
        reclaimer = OtnLineReclaimer(net.controller, holding_time_s=1 * HOUR)
        reclaimer.sweep()  # marks idle-since
        net.run(until=net.sim.now + 2 * HOUR)
        report = reclaimer.sweep()
        net.run()
        assert len(report.reclaimed) == lines_before
        assert net.inventory.otn_lines == {}
        # The underlying wavelengths were torn down too.
        assert len(net.inventory.lightpaths) < lightpaths_before
        assert net.inventory.lightpaths == {}

    def test_reclaimed_resources_are_reusable(self, net):
        svc = idle_line_scenario(net)
        reclaimer = OtnLineReclaimer(net.controller, holding_time_s=0.0)
        reclaimer.sweep()
        net.run()
        # Everything free again: a fresh order must succeed.
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 1)
        net.run()
        assert conn.state is ConnectionState.UP

    def test_zero_holding_time_reclaims_immediately(self, net):
        idle_line_scenario(net)
        reclaimer = OtnLineReclaimer(net.controller, holding_time_s=0.0)
        report = reclaimer.sweep()
        assert report.reclaimed

    def test_busy_line_resets_idle_clock(self, net):
        svc = idle_line_scenario(net)
        reclaimer = OtnLineReclaimer(net.controller, holding_time_s=1 * HOUR)
        reclaimer.sweep()
        # The line gets used again before the holding time elapses...
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 1)
        net.run()
        reclaimer.sweep()
        svc.teardown_connection(conn.connection_id)
        net.run()
        # ...so the idle clock restarts: not reclaimed right away.
        report = reclaimer.sweep()
        assert report.reclaimed == []

    def test_negative_holding_time_rejected(self, net):
        with pytest.raises(ConfigurationError):
            OtnLineReclaimer(net.controller, holding_time_s=-1)


class TestPeriodic:
    def test_periodic_sweeps_reclaim(self, net):
        idle_line_scenario(net)
        reclaimer = OtnLineReclaimer(net.controller, holding_time_s=0.5 * HOUR)
        reclaimer.schedule_periodic(
            interval_s=0.25 * HOUR, stop_at=net.sim.now + 3 * HOUR
        )
        net.run()
        assert net.inventory.otn_lines == {}

    def test_periodic_validation(self, net):
        reclaimer = OtnLineReclaimer(net.controller)
        with pytest.raises(ConfigurationError):
            reclaimer.schedule_periodic(0, stop_at=net.sim.now + 10)
        with pytest.raises(ConfigurationError):
            reclaimer.schedule_periodic(10, stop_at=net.sim.now)
