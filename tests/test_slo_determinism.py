"""Determinism properties of the gray-failure remediation loop.

The whole detect → reroute → revert cycle must be a pure function of
the master seed: repeated runs fingerprint byte-identical, the sweep
aggregate is byte-identical at any job count, and no policy action ever
strands a lightpath (the invariant auditor runs after every action and
again over the final state).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.connection import ConnectionState
from repro.faults.audit import audit_network
from repro.slo import default_policies
from repro.slo.bench import (
    bring_up_workload,
    build_slo_network,
    default_degradation_plan,
    run_slo_trial,
)
from repro.sweep import run_sweep, slo_chaos_spec

#: Short replay horizon for property runs (the stock plan's first two
#: degradations both activate well inside it).
SHORT_HORIZON_S = 2400.0


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_trial_is_byte_identical_per_seed(seed):
    first = run_slo_trial(seed=seed, policy_on=True,
                          horizon_s=SHORT_HORIZON_S)
    second = run_slo_trial(seed=seed, policy_on=True,
                           horizon_s=SHORT_HORIZON_S)
    assert first == second  # fingerprint, counters, records — everything


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_reverts_never_strand_a_lightpath(seed):
    """After every policy action the auditor held, and the end state is
    whole: every connection UP, exactly one live lightpath each, no
    degradation residue on any connection the engine touched."""
    net = build_slo_network(seed)
    connections = bring_up_workload(net)
    runtime = net.enable_slo(
        plan=default_degradation_plan(),
        policies=default_policies(),
        horizon_s=SHORT_HORIZON_S,
        audit_each_action=True,
    )
    net.run()
    assert runtime.engine.audit_ok  # oracle ran after every action
    assert audit_network(net.controller).ok
    for conn in connections:
        assert conn.state is ConnectionState.UP
        assert len(conn.lightpath_ids) == 1
        assert conn.lightpath_ids[0] in net.inventory.lightpaths


def test_sweep_aggregate_identical_across_job_counts():
    spec = slo_chaos_spec(repeats=1, horizon_s=SHORT_HORIZON_S)
    single = run_sweep(spec, jobs=1)
    parallel = run_sweep(spec, jobs=2)
    assert single.to_json() == parallel.to_json()
