"""Lifecycle tracing integration: nesting invariants and completeness.

Builds real networks with ``tracing=True`` and checks that the span
tree the tracer collects is structurally sound (children nested within
their parents, sim-time monotone, everything finished) and complete
(every phase the paper's workflows go through shows up) across setup,
fiber-cut restoration, and bridge-and-roll.
"""

import pytest

from repro.core.connection import ConnectionState
from repro.facade import build_griphon_testbed

EPS = 1e-9


@pytest.fixture
def net():
    return build_griphon_testbed(seed=2, tracing=True)


@pytest.fixture
def svc(net):
    return net.service_for("csp-trace")


def assert_tree_invariants(tracer):
    """Every span finished, inside its parent, and clock-ordered."""
    spans = tracer.spans()
    assert spans, "expected at least one span"
    by_id = {s.span_id: s for s in spans}
    for span in spans:
        assert span.finished, f"{span.name} never finished"
        assert span.end >= span.start
        if span.parent_id is not None:
            parent = by_id[span.parent_id]
            assert span.trace_id == parent.trace_id
            assert span.start >= parent.start - EPS, (
                f"{span.name} starts before parent {parent.name}"
            )
            assert span.end <= parent.end + EPS, (
                f"{span.name} ends after parent {parent.name}"
            )
    # The sim clock never runs backwards, so spans recorded later can
    # never start earlier.
    starts = [s.start for s in spans]
    assert starts == sorted(starts)


class TestSetupTrace:
    def test_wavelength_setup_completeness(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-B", 10)
        net.run()
        assert conn.state is ConnectionState.UP
        tracer = net.tracer
        assert_tree_invariants(tracer)
        root = next(
            s for s in tracer.roots() if s.name == "connection.request"
        )
        assert conn.trace_id == root.trace_id
        assert root.tags["outcome"] == "up"
        child_names = {c.name for c in tracer.children_of(root)}
        assert {"order.admit", "order.claim", "connection.setup"} <= child_names
        # The claim phase planned a route.
        claim = next(
            c for c in tracer.children_of(root) if c.name == "order.claim"
        )
        assert [c.name for c in tracer.children_of(claim)] == ["rwa.plan"]
        # The EMS phases of the setup: order, tune, roadm, equalize, verify.
        setup = next(s for s in tracer.spans("lightpath.setup"))
        stages = {c.name for c in tracer.children_of(setup)}
        assert {
            "ems.order", "ems.fxc", "ems.tune", "ems.roadm",
            "ems.equalize", "ems.verify",
        } <= stages

    def test_phase_durations_sum_to_workflow_duration(self, net, svc):
        """Acceptance: per-phase spans sum to end-to-end setup (±1%)."""
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        assert conn.state is ConnectionState.UP
        tracer = net.tracer
        for setup in tracer.spans("lightpath.setup"):
            children = tracer.children_of(setup)
            assert children
            total = sum(c.duration for c in children)
            assert total == pytest.approx(setup.duration, rel=0.01)

    def test_composite_order_traces_circuits(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-B", 12)
        net.run()
        assert conn.state is ConnectionState.UP
        tracer = net.tracer
        assert_tree_invariants(tracer)
        trace = tracer.by_trace(conn.trace_id)
        names = [s.name for s in trace]
        assert names.count("otn.circuit.setup") == 2  # two 1G circuits
        # The OTN-line wavelengths ride the same trace.
        assert names.count("lightpath.setup") >= 2

    def test_blocked_order_trace(self, net):
        svc = net.service_for("csp-zero", max_connections=0)
        conn = svc.request_connection("PREMISES-A", "PREMISES-B", 10)
        assert conn.state is ConnectionState.BLOCKED
        tracer = net.tracer
        root = next(
            s
            for s in tracer.roots()
            if s.tags.get("connection") == conn.connection_id
        )
        assert root.tags["outcome"] == "blocked"
        assert root.finished
        admit = next(
            c for c in tracer.children_of(root) if c.name == "order.admit"
        )
        assert admit.tags["error"] == "AdmissionError"

    def test_teardown_trace_joins_connection_trace(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-B", 10)
        net.run()
        svc.teardown_connection(conn.connection_id)
        net.run()
        tracer = net.tracer
        assert_tree_invariants(tracer)
        teardown = next(iter(tracer.spans("connection.teardown")))
        assert teardown.trace_id == conn.trace_id
        lp_teardowns = tracer.children_of(teardown)
        assert any(s.name == "lightpath.teardown" for s in lp_teardowns)
        assert net.metrics.counter("connection.released") == 1


class TestRestorationTrace:
    def test_fiber_cut_restoration_completeness(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        path = net.inventory.lightpaths[conn.lightpath_ids[0]].path
        net.controller.cut_link(path[0], path[1])
        net.run()
        assert conn.state is ConnectionState.UP
        tracer = net.tracer
        assert_tree_invariants(tracer)
        # The cut itself is an instantaneous event.
        cut = next(iter(tracer.spans("failure.fiber_cut")))
        assert cut.duration == 0.0
        # Restoration joins the connection's trace and walks detect →
        # localize → plan → claim → re-provision.
        restoration = next(iter(tracer.spans("restoration")))
        assert restoration.trace_id == conn.trace_id
        assert restoration.tags["outcome"] == "restored"
        phases = [s.name for s in tracer.children_of(restoration)]
        assert phases[:3] == [
            "restoration.localize",
            "restoration.plan",
            "restoration.claim",
        ]
        assert "lightpath.setup" in phases
        assert net.metrics.counter("restoration.success") == 1
        assert net.metrics.counter("failure.fiber_cut") == 1

    def test_otn_mesh_restore_recorded(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-B", 2)
        net.run()
        assert conn.state is ConnectionState.UP
        circuit = net.inventory.circuits[conn.circuit_ids[0]]
        line = net.inventory.otn_lines[circuit.line_ids[0]]
        lp_id = net.controller._line_lightpath[line.line_id]
        lp = net.inventory.lightpaths[lp_id]
        net.controller.cut_link(lp.path[0], lp.path[1])
        net.run()
        tracer = net.tracer
        mesh = next(iter(tracer.spans("otn.mesh_restore")))
        assert mesh.trace_id == conn.trace_id
        assert 0.0 < mesh.duration < 1.0  # sub-second shared-mesh switch
        assert net.metrics.counter("otn.mesh.restored") >= 1
        assert net.metrics.samples("otn.mesh.switch_s")


class TestBridgeAndRollTrace:
    def test_bridge_and_roll_completeness(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        net.controller.bridge_and_roll(conn.connection_id)
        net.run()
        tracer = net.tracer
        assert_tree_invariants(tracer)
        roll = next(iter(tracer.spans("bridge_and_roll")))
        assert roll.trace_id == conn.trace_id
        assert roll.tags["outcome"] == "completed"
        phases = [s.name for s in tracer.children_of(roll)]
        assert phases == [
            "roll.plan",
            "roll.claim",
            "lightpath.setup",
            "roll.hit",
            "lightpath.teardown",
        ]
        hit = next(s for s in tracer.children_of(roll) if s.name == "roll.hit")
        assert hit.duration == pytest.approx(0.050)
        assert net.metrics.counter("bridge_and_roll.completed") == 1
        assert net.metrics.samples("bridge_and_roll.bridge_s")


class TestDisabledTracing:
    def test_no_spans_by_default(self):
        net = build_griphon_testbed(seed=2)
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-B", 10)
        net.run()
        assert conn.state is ConnectionState.UP
        assert len(net.tracer) == 0
        assert conn.trace_id is None
        # Metrics still aggregate (they are cheap and always on).
        assert net.metrics.counter("connection.up") == 1

    def test_gauges_reflect_route_cache(self, net, svc):
        svc.request_connection("PREMISES-A", "PREMISES-B", 10)
        net.run()
        snap = net.metrics.snapshot()
        assert snap["gauges"]["rwa.route_cache.size"] >= 1
        assert 0.0 <= snap["gauges"]["rwa.route_cache.hit_rate"] <= 1.0

    def test_gauges_degrade_without_route_cache(self, net):
        from repro.core.rwa import RwaEngine

        # Swap in an engine built with the cache disabled (as a sweep
        # worker might); the registered gauges read through the live
        # controller, so they must degrade instead of raising.
        net.controller.rwa = RwaEngine(net.inventory, route_cache_size=0)
        snap = net.metrics.snapshot()
        assert snap["gauges"]["rwa.route_cache.hit_rate"] is None
        assert snap["gauges"]["rwa.route_cache.size"] == 0


class TestRegistryMerge:
    def test_state_is_lossless_and_gauge_free(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        registry.inc("orders", 3)
        registry.observe("setup_s", 61.0)
        registry.observe("setup_s", 67.0)
        registry.register_gauge("live", lambda: 1)
        state = registry.state()
        assert state == {
            "counters": {"orders": 3.0},
            "samples": {"setup_s": [61.0, 67.0]},
        }

    def test_merge_sums_counters_and_pools_samples(self):
        from repro.obs.registry import MetricsRegistry

        a = MetricsRegistry()
        a.inc("orders", 2)
        a.observe("setup_s", 60.0)
        b = MetricsRegistry()
        b.inc("orders", 3)
        b.inc("blocked")
        b.observe("setup_s", 70.0)
        b.observe("repair_s", 5.0)

        a.merge(b)
        assert a.counter("orders") == 5.0
        assert a.counter("blocked") == 1.0
        assert a.samples("setup_s") == [60.0, 70.0]
        # Summaries of the merged registry equal summaries of the
        # pooled raw samples — nothing was pre-aggregated away.
        assert a.summary("setup_s").mean == 65.0

    def test_merge_accepts_state_dicts(self):
        from repro.obs.registry import MetricsRegistry

        merged = MetricsRegistry()
        for _ in range(3):
            worker = MetricsRegistry()
            worker.inc("trials")
            worker.observe("draw", 0.5)
            merged.merge(worker.state())
        assert merged.counter("trials") == 3.0
        assert len(merged.samples("draw")) == 3

    def test_merge_round_trips_through_snapshot_shape(self):
        from repro.obs.registry import MetricsRegistry

        worker = MetricsRegistry()
        worker.inc("connection.up", 4)
        worker.observe("setup_s", 62.0)
        merged = MetricsRegistry()
        merged.merge(worker.state())
        snap = merged.snapshot()
        assert snap["counters"] == {"connection.up": 4.0}
        assert snap["histograms"]["setup_s"]["count"] == 1
        assert snap["gauges"] == {}
