"""Unit coverage for the SLO building blocks.

Pins the declarative pieces the remediation tentpole is assembled from:
degradation specs/plans (validation, serialization, seeded jitter), SLO
policies (validation, orientation, serialization), the windowed series
behind burn-rate detection, the optical impairment surface the injector
mutates, and the margin arithmetic the monitor samples.
"""

import pytest

from repro.errors import ConfigurationError, ResourceError
from repro.faults import DEGRADATION_MODES, DegradationPlan, DegradationSpec
from repro.obs.windows import WindowedSeries
from repro.optical.amplifier import AmplifierChain
from repro.optical.fiber import FiberPlant
from repro.optical.osnr import OsnrModel
from repro.sim.randomness import RandomStreams
from repro.slo import SloPolicy, default_policies
from repro.topo.testbed import build_testbed_graph


# -- degradation specs and plans --------------------------------------------


class TestDegradationSpec:
    def test_modes_registry(self):
        assert set(DEGRADATION_MODES) == {
            "osnr-drift", "amp-flap", "attenuation-creep"
        }

    def test_round_trips_through_dict(self):
        spec = DegradationSpec(
            link="A=B", mode="osnr-drift", start_s=10.0, duration_s=100.0,
            magnitude_db=4.0, jitter_db=0.5,
        )
        assert DegradationSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_dict_keys_raise(self):
        with pytest.raises(ConfigurationError):
            DegradationSpec.from_dict({"link": "A=B", "bogus": 1})

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            DegradationSpec(link="A=B", mode="meteor-strike")

    def test_endpoints_are_canonical(self):
        spec = DegradationSpec(link="B=A", mode="osnr-drift")
        assert spec.endpoints == ("A", "B")

    def test_negative_magnitude_rejected(self):
        with pytest.raises(ConfigurationError):
            DegradationSpec(link="A=B", mode="osnr-drift", magnitude_db=-1)


class TestDegradationPlan:
    def test_empty_plan_has_zero_horizon(self):
        plan = DegradationPlan()
        assert plan.empty
        assert plan.horizon_s == 0.0

    def test_horizon_is_latest_end(self):
        plan = DegradationPlan()
        plan.add(DegradationSpec(link="A=B", mode="osnr-drift",
                                 start_s=0, duration_s=100))
        plan.add(DegradationSpec(link="A=C", mode="amp-flap",
                                 start_s=50, duration_s=500))
        assert plan.horizon_s == 550.0

    def test_round_trips_through_dict(self):
        plan = DegradationPlan()
        plan.add(DegradationSpec(link="A=B", mode="attenuation-creep",
                                 rate_db_per_hour=1.5))
        again = DegradationPlan.from_dict(plan.to_dict())
        assert again.to_dict() == plan.to_dict()

    def test_jitter_requires_binding(self):
        plan = DegradationPlan()
        plan.add(DegradationSpec(link="A=B", mode="osnr-drift",
                                 jitter_db=1.0))
        with pytest.raises(ConfigurationError):
            plan.jitter(0, 0)

    def test_jitter_is_seed_deterministic(self):
        def draws(seed):
            plan = DegradationPlan()
            plan.add(DegradationSpec(link="A=B", mode="osnr-drift",
                                     jitter_db=1.0))
            bound = plan.bind(RandomStreams(seed))
            return [bound.jitter(0, tick) for tick in range(5)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)

    def test_zero_jitter_draws_nothing(self):
        plan = DegradationPlan()
        plan.add(DegradationSpec(link="A=B", mode="osnr-drift"))
        bound = plan.bind(RandomStreams(0))
        assert bound.jitter(0, 3) == 0.0


# -- SLO policies ------------------------------------------------------------


class TestSloPolicy:
    def test_round_trips_through_dict(self):
        policy = SloPolicy(name="margin", threshold=1.5)
        assert SloPolicy.from_dict(policy.to_dict()) == policy

    def test_unknown_dict_keys_raise(self):
        with pytest.raises(ConfigurationError):
            SloPolicy.from_dict({"name": "x", "bogus": 1})

    def test_orientation_below_and_above(self):
        below = SloPolicy(name="m", threshold=2.0, orientation="below")
        assert below.breaching(1.9) and not below.breaching(2.0)
        above = SloPolicy(name="l", threshold=120.0, scope="global",
                          orientation="above")
        assert above.breaching(121.0) and not above.breaching(120.0)

    def test_long_window_must_cover_short(self):
        with pytest.raises(ConfigurationError):
            SloPolicy(name="x", short_window_s=600, long_window_s=100)

    def test_burn_fractions_validated(self):
        with pytest.raises(ConfigurationError):
            SloPolicy(name="x", short_burn=0.0)
        with pytest.raises(ConfigurationError):
            SloPolicy(name="x", long_burn=1.5)

    def test_default_policies_cover_the_three_streams(self):
        policies = {p.name: p for p in default_policies()}
        assert policies["osnr-margin"].scope == "connection"
        assert policies["restore-latency"].scope == "global"
        assert policies["error-burst"].scope == "global"


# -- windowed series ---------------------------------------------------------


class TestWindowedSeries:
    def test_fraction_over_half_open_window(self):
        series = WindowedSeries()
        for t, v in ((0, 5.0), (10, 1.0), (20, 1.0), (30, 5.0)):
            series.record(t, v)
        # (10, 30] holds samples at t=20 and t=30.
        assert series.fraction(30, 20, lambda v: v < 2.0) == 0.5

    def test_empty_window_reads_healthy(self):
        series = WindowedSeries()
        assert series.fraction(100, 10, lambda v: True) == 0.0

    def test_timestamps_must_not_regress(self):
        series = WindowedSeries()
        series.record(10, 1.0)
        with pytest.raises(ConfigurationError):
            series.record(5, 1.0)

    def test_bounded_memory(self):
        series = WindowedSeries(max_samples=8)
        for t in range(100):
            series.record(float(t), 1.0)
        assert len(series) == 8
        assert series.latest()[0] == 99.0


# -- optical impairment surface ---------------------------------------------


class TestImpairmentState:
    def _plant(self):
        return FiberPlant(build_testbed_graph())

    def test_penalties_sum_per_cause(self):
        plant = self._plant()
        link = plant.dwdm_link("ROADM-I", "ROADM-II")
        link.set_degradation("osnr-drift:0", 2.0)
        link.set_degradation("attenuation-creep:1", 1.5)
        assert link.osnr_penalty_db == pytest.approx(3.5)
        assert link.degradation_causes() == [
            "osnr-drift:0", "attenuation-creep:1"
        ]

    def test_clear_is_idempotent(self):
        plant = self._plant()
        link = plant.dwdm_link("ROADM-I", "ROADM-II")
        link.set_degradation("x", 1.0)
        link.clear_degradation("x")
        link.clear_degradation("x")
        assert link.osnr_penalty_db == 0.0

    def test_negative_penalty_rejected(self):
        plant = self._plant()
        with pytest.raises(ResourceError):
            plant.dwdm_link("ROADM-I", "ROADM-II").set_degradation("x", -1.0)

    def test_path_penalty_sums_links(self):
        plant = self._plant()
        plant.dwdm_link("ROADM-I", "ROADM-II").set_degradation("a", 1.0)
        plant.dwdm_link("ROADM-II", "ROADM-III").set_degradation("b", 2.0)
        path = ["ROADM-I", "ROADM-II", "ROADM-III"]
        assert plant.path_penalty_db(path) == pytest.approx(3.0)
        assert plant.degraded_links() == [
            ("ROADM-I", "ROADM-II"), ("ROADM-II", "ROADM-III")
        ]


class TestAmplifierGain:
    def test_gain_mutation_and_reset(self):
        chain = AmplifierChain(400.0)
        assert chain.gain_db == chain.target_gain_db
        chain.set_gain(chain.target_gain_db - 6.0)
        assert chain.gain_error_db == pytest.approx(6.0)
        chain.reset_gain()
        assert chain.gain_error_db == 0.0


class TestMarginModel:
    def test_margin_subtracts_penalty(self):
        model = OsnrModel()
        clean = model.margin_db(400.0, 10e9)
        assert model.margin_db(400.0, 10e9, penalty_db=2.0) == pytest.approx(
            clean - 2.0
        )

    def test_negative_penalty_rejected(self):
        with pytest.raises(ConfigurationError):
            OsnrModel().margin_db(400.0, 10e9, penalty_db=-1.0)
