"""Tests for the reservation calendar pane."""

import pytest

from repro.core.calendar import ReservationBook
from repro.core.gui import render_reservations
from repro.facade import build_griphon_testbed
from repro.units import HOUR


@pytest.fixture
def net():
    return build_griphon_testbed(seed=51, latency_cv=0.0)


@pytest.fixture
def book(net):
    net.service_for("csp-a")
    net.service_for("csp-b")
    return ReservationBook(net.controller)


class TestReservationPane:
    def test_empty_book(self, book):
        assert render_reservations(book) == "No reservations."

    def test_booked_rows(self, net, book):
        book.book("csp-a", "PREMISES-A", "PREMISES-C", 10,
                  start=1 * HOUR, end=2 * HOUR)
        pane = render_reservations(book)
        assert "resv-0" in pane
        assert "booked" in pane
        assert "10 Gbps" in pane
        assert "1 h - 2 h" in pane

    def test_customer_filter(self, net, book):
        book.book("csp-a", "PREMISES-A", "PREMISES-C", 10,
                  start=1 * HOUR, end=2 * HOUR)
        book.book("csp-b", "PREMISES-A", "PREMISES-B", 10,
                  start=1 * HOUR, end=2 * HOUR)
        pane = render_reservations(book, "csp-a")
        assert "csp-a" in pane
        assert "csp-b" not in pane

    def test_state_progression_visible(self, net, book):
        book.book("csp-a", "PREMISES-A", "PREMISES-C", 10,
                  start=1 * HOUR, end=2 * HOUR)
        net.run(until=1.5 * HOUR)
        assert "active" in render_reservations(book)
        net.run()
        assert "completed" in render_reservations(book)
