"""Tests for generator-based Process objects."""

import pytest

from repro.errors import SimulationError
from repro.sim import Process, Simulator


class TestProcessExecution:
    def test_steps_advance_clock(self):
        sim = Simulator()
        checkpoints = []

        def activity():
            checkpoints.append(sim.now)
            yield 2.0
            checkpoints.append(sim.now)
            yield 3.0
            checkpoints.append(sim.now)

        Process(sim, activity())
        sim.run()
        assert checkpoints == [0.0, 2.0, 5.0]

    def test_result_captured(self):
        sim = Simulator()

        def activity():
            yield 1.0
            return "done"

        process = Process(sim, activity())
        sim.run()
        assert process.done
        assert process.result == "done"

    def test_on_complete_callback(self):
        sim = Simulator()
        results = []

        def activity():
            yield 1.0
            return 42

        Process(sim, activity(), on_complete=results.append)
        sim.run()
        assert results == [42]

    def test_empty_generator_completes_immediately(self):
        sim = Simulator()

        def activity():
            return
            yield  # pragma: no cover - makes this a generator

        process = Process(sim, activity())
        sim.run()
        assert process.done
        assert sim.now == 0.0

    def test_two_processes_interleave(self):
        sim = Simulator()
        order = []

        def worker(name, step):
            for _ in range(3):
                yield step
                order.append((name, sim.now))

        Process(sim, worker("fast", 1.0))
        Process(sim, worker("slow", 2.5))
        sim.run()
        assert order == [
            ("fast", 1.0),
            ("fast", 2.0),
            ("slow", 2.5),
            ("fast", 3.0),
            ("slow", 5.0),
            ("slow", 7.5),
        ]


class TestProcessErrors:
    def test_negative_yield_rejected(self):
        sim = Simulator()

        def activity():
            yield -1.0

        Process(sim, activity())
        with pytest.raises(SimulationError):
            sim.run()

    def test_non_numeric_yield_rejected(self):
        sim = Simulator()

        def activity():
            yield "soon"

        Process(sim, activity())
        with pytest.raises(SimulationError):
            sim.run()


class TestInterrupt:
    def test_interrupt_stops_future_steps(self):
        sim = Simulator()
        steps = []

        def activity():
            try:
                while True:
                    yield 1.0
                    steps.append(sim.now)
            finally:
                steps.append("cleanup")

        process = Process(sim, activity())
        sim.schedule(2.5, process.interrupt)
        sim.run()
        assert process.interrupted
        assert steps == [1.0, 2.0, "cleanup"]

    def test_interrupt_finished_process_rejected(self):
        sim = Simulator()

        def activity():
            yield 1.0

        process = Process(sim, activity())
        sim.run()
        with pytest.raises(SimulationError):
            process.interrupt()
