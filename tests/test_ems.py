"""Tests for the EMS layer: latency catalog and element managers."""

import statistics

import pytest

from repro.errors import ConfigurationError, EquipmentError
from repro.ems import (
    DEFAULT_STEP_MEANS,
    FxcController,
    LatencyModel,
    NteController,
    OtnEms,
    RoadmEms,
)
from repro.optical import (
    FiberCrossConnect,
    FiberPlant,
    NetworkTerminatingEquipment,
    Roadm,
    WavelengthGrid,
)
from repro.otn import OtnLine, OtnSwitch
from repro.sim import RandomStreams
from repro.topo.testbed import build_testbed_graph


@pytest.fixture
def latency():
    return LatencyModel(RandomStreams(42))


@pytest.fixture
def deterministic_latency():
    return LatencyModel(RandomStreams(42), cv=0.0)


class TestLatencyModel:
    def test_known_step_mean(self, deterministic_latency):
        assert deterministic_latency.mean("ot.tune") == 14.0

    def test_unknown_step_rejected(self, latency):
        with pytest.raises(ConfigurationError):
            latency.sample("ghost.step")

    def test_zero_cv_is_deterministic(self, deterministic_latency):
        samples = {deterministic_latency.sample("fxc.connect") for _ in range(5)}
        assert samples == {1.5}

    def test_jitter_centers_on_mean(self, latency):
        samples = [latency.sample("roadm.add_drop") for _ in range(500)]
        assert statistics.fmean(samples) == pytest.approx(9.5, rel=0.05)

    def test_extra_is_added(self, deterministic_latency):
        assert deterministic_latency.sample("line.equalize", extra=0.7) == (
            pytest.approx(2.7)
        )

    def test_extra_must_be_nonnegative(self, latency):
        with pytest.raises(ConfigurationError):
            latency.sample("line.equalize", extra=-1)

    def test_speedup_divides_means(self):
        model = LatencyModel(RandomStreams(0), cv=0.0, speedup=10.0)
        assert model.mean("ot.tune") == pytest.approx(1.4)
        assert model.sample("ot.tune") == pytest.approx(1.4)

    def test_speedup_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(RandomStreams(0), speedup=0)

    def test_negative_cv_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(RandomStreams(0), cv=-0.1)

    def test_overrides_apply(self):
        model = LatencyModel(
            RandomStreams(0), means={"ot.tune": 1.0, "custom.step": 4.0}, cv=0.0
        )
        assert model.mean("ot.tune") == 1.0
        assert model.mean("custom.step") == 4.0

    def test_known_steps_covers_defaults(self, latency):
        table = latency.known_steps()
        assert set(DEFAULT_STEP_MEANS) <= set(table)


class TestRoadmEms:
    @pytest.fixture
    def ems(self, deterministic_latency):
        graph = build_testbed_graph()
        grid = WavelengthGrid(8)
        plant = FiberPlant(graph, grid)
        roadms = {}
        for name in ("ROADM-I", "ROADM-III", "ROADM-IV"):
            roadm = Roadm(name, grid)
            for neighbor in graph.neighbors(name):
                roadm.add_degree(neighbor)
            roadm.add_ports(4)
            roadms[name] = roadm
        return RoadmEms(roadms, plant, deterministic_latency)

    def test_unknown_roadm(self, ems):
        with pytest.raises(EquipmentError):
            ems.roadm("ROADM-X")

    def test_add_drop_duration_and_state(self, ems):
        roadm = ems.roadm("ROADM-I")
        port = roadm.ports[0]
        duration = ems.configure_add_drop(
            "ROADM-I", port.port_id, "ROADM-IV", 0, "lp-1"
        )
        assert duration == pytest.approx(9.5)
        assert port.in_use

    def test_remove_add_drop(self, ems):
        roadm = ems.roadm("ROADM-I")
        port = roadm.ports[0]
        ems.configure_add_drop("ROADM-I", port.port_id, "ROADM-IV", 0, "lp-1")
        duration = ems.remove_add_drop("ROADM-I", port.port_id, "lp-1")
        assert duration == pytest.approx(2.0)
        assert not port.in_use

    def test_express_roundtrip(self, ems):
        setup = ems.configure_express("ROADM-III", "ROADM-I", "ROADM-IV", 2, "lp-1")
        teardown = ems.remove_express("ROADM-III", "ROADM-I", "ROADM-IV", 2, "lp-1")
        assert setup == pytest.approx(2.0)
        assert teardown == pytest.approx(0.5)

    def test_channel_occupancy_passthrough(self, ems):
        ems.occupy_channel("ROADM-I", "ROADM-IV", 3, "lp-1")
        ems.release_channel("ROADM-I", "ROADM-IV", 3, "lp-1")

    def test_equalize_includes_amplifier_settle(self, ems):
        # Testbed link ROADM-I=ROADM-IV is 80 km -> one amplified span.
        duration = ems.equalize_link("ROADM-I", "ROADM-IV")
        assert duration == pytest.approx(2.0 + 0.35)

    def test_verify_duration(self, ems):
        assert ems.verify_lightpath() == pytest.approx(8.0)


class TestFxcController:
    @pytest.fixture
    def controller(self, deterministic_latency):
        fxc = FiberCrossConnect("FXC:A", 8)
        fxc.label_port(0, "NTE")
        fxc.label_port(1, "OT")
        return FxcController({"PREMISES-A": fxc}, deterministic_latency)

    def test_unknown_site(self, controller):
        with pytest.raises(EquipmentError):
            controller.fxc("PREMISES-Z")

    def test_connect_and_disconnect(self, controller):
        assert controller.connect("PREMISES-A", 0, 1, "c1") == pytest.approx(1.5)
        assert controller.fxc("PREMISES-A").peer_of(0) == 1
        assert controller.disconnect("PREMISES-A", 0, "c1") == pytest.approx(1.5)

    def test_connect_by_label(self, controller):
        controller.connect_labeled("PREMISES-A", "NTE", "OT", "c1")
        assert controller.fxc("PREMISES-A").peer_of(0) == 1


class TestOtnEms:
    @pytest.fixture
    def ems(self, deterministic_latency):
        switch = OtnSwitch("NYC", client_port_count=4)
        return OtnEms({"NYC": switch}, deterministic_latency)

    def test_unknown_switch(self, ems):
        with pytest.raises(EquipmentError):
            ems.switch("LAX")

    def test_nodes_listing(self, ems):
        assert ems.nodes() == ["NYC"]

    def test_client_port_claim_release(self, ems):
        port = ems.claim_client_port("NYC", "ckt-1")
        ems.release_client_port("NYC", port, "ckt-1")

    def test_crossconnect_roundtrip(self, ems):
        line = OtnLine("L", "NYC", "CHI")
        setup = ems.crossconnect_slots(line, 2, "ckt-1")
        assert setup == pytest.approx(1.2)
        assert line.free_slot_count() == 6
        teardown = ems.remove_crossconnect(line, "ckt-1")
        assert teardown == pytest.approx(0.6)
        assert line.free_slot_count() == 8


class TestNteController:
    @pytest.fixture
    def controller(self, deterministic_latency):
        nte = NetworkTerminatingEquipment("NTE:A", "PREMISES-A")
        return NteController({"PREMISES-A": nte}, deterministic_latency)

    def test_unknown_premises(self, controller):
        with pytest.raises(EquipmentError):
            controller.nte("PREMISES-Z")

    def test_configure_returns_index_and_duration(self, controller):
        index, duration = controller.configure_interface(
            "PREMISES-A", "c1", channelized=False
        )
        assert index == 0
        assert duration == pytest.approx(2.0)

    def test_release(self, controller):
        index, _ = controller.configure_interface("PREMISES-A", "c1", True)
        duration = controller.release_interface("PREMISES-A", index, "c1")
        assert duration == pytest.approx(1.0)
