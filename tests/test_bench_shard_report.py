"""The shard benchmark report: latency-stat consistency and acceptance.

Regression tests for ``benchmarks/shard_report.py``.  The original
latency computation appended one *averaged* sample per unit-round
batch, so the mean and the percentiles summarized different
populations — ``BENCH_shard.json`` shipped a 4-shard row whose mean
(4.14 ms) sat below its own p50 (5.09 ms).  :func:`latency_stats` now
takes one per-plan sample list and every statistic must respect the
order invariants of a single population.  The acceptance block is
exercised on synthetic rows: the recorded seed inversion must fail it,
the pooled fix must pass it.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.shard_report import (  # noqa: E402
    SEED_INVERSION,
    acceptance,
    latency_stats,
    plan_latency_ms,
    pooled_rows,
)


def _row(regions, single, pooled, deterministic=True):
    return {
        "regions": regions,
        "pops_per_region": 512 // regions,
        "units": regions + (1 if regions > 1 else 0),
        "orders": 128,
        "single_process_orders_per_sec": single,
        "process_parallel_orders_per_sec": single * 0.7,
        "pooled_orders_per_sec": pooled,
        "pooled_cold_orders_per_sec": pooled * 0.5,
        "pooled_spawn_s": 0.5,
        "pooled_deterministic": deterministic,
        "pooled_warm_cache_hit_rate": 0.9,
    }


class TestLatencyStats:
    def test_single_population_invariants(self):
        samples = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0]
        stats = latency_stats(samples)
        assert stats["plan_latency_p50_ms"] == 5.0
        assert stats["plan_latency_p95_ms"] == 9.0
        assert stats["plan_latency_mean_ms"] == 5.0
        # The invariants the old mixed-population computation violated:
        assert (
            min(samples)
            <= stats["plan_latency_mean_ms"]
            <= max(samples)
        )
        assert stats["plan_latency_p50_ms"] <= stats["plan_latency_p95_ms"]

    def test_skew_keeps_mean_inside_sample_range(self):
        # Heavily bimodal — the shape (tiny express rounds vs slow
        # region rounds) that used to drag the mean below the p50.
        samples = [0.01] * 10 + [5.0] * 30
        stats = latency_stats(samples)
        assert 0.01 <= stats["plan_latency_mean_ms"] <= 5.0
        assert stats["plan_latency_p50_ms"] <= stats["plan_latency_p95_ms"]

    def test_measured_samples_are_per_plan(self):
        rounds, orders_per_round, regions = 2, 4, 2
        samples = plan_latency_ms(
            topology_seed=7,
            regions=regions,
            pops_per_region=5,
            rounds=rounds,
            orders_per_round=orders_per_round,
        )
        # One sample per offered order across every unit (2 regions +
        # express) — not one per unit-round batch.
        units = regions + 1
        assert len(samples) == units * rounds * orders_per_round
        assert all(s >= 0.0 for s in samples)
        stats = latency_stats(samples)
        assert (
            min(samples)
            <= stats["plan_latency_mean_ms"]
            <= max(samples)
        )


class TestAcceptance:
    def _fixed_rows(self):
        return [
            _row(1, 500.0, 1500.0),
            _row(4, 193.7, 400.0),
            _row(16, 927.7, 2100.0),
        ]

    def test_pooled_fix_passes(self):
        gate = acceptance(self._fixed_rows())
        assert gate["ok"], gate
        assert gate["checks"] == {
            "pooled_beats_single_at_4_shards": True,
            "pooled_beats_single_at_16_shards": True,
            "pooled_2x_single_at_16_shards": True,
            "pool_deterministic": True,
        }
        # The report carries the inversion it fixes as its baseline.
        assert gate["baseline_inversion_fixed"] is SEED_INVERSION

    def test_seed_inversion_fails(self):
        inverted = [
            _row(1, 500.0, 450.0),
            _row(4, 193.7, 135.5),
            _row(16, 927.7, 200.1),
        ]
        gate = acceptance(inverted)
        assert not gate["ok"]
        assert not gate["checks"]["pooled_beats_single_at_4_shards"]
        assert not gate["checks"]["pooled_2x_single_at_16_shards"]

    def test_sub_2x_at_16_shards_fails(self):
        rows = self._fixed_rows()
        rows[2]["pooled_orders_per_sec"] = 1200.0  # > single, < 2x
        gate = acceptance(rows)
        assert gate["checks"]["pooled_beats_single_at_16_shards"]
        assert not gate["checks"]["pooled_2x_single_at_16_shards"]
        assert not gate["ok"]

    def test_nondeterminism_fails(self):
        rows = self._fixed_rows()
        rows[0]["pooled_deterministic"] = False
        gate = acceptance(rows)
        assert not gate["checks"]["pool_deterministic"]
        assert not gate["ok"]

    def test_pooled_rows_expose_warm_rate_vs_single(self):
        rows = pooled_rows(self._fixed_rows())
        assert [r["backend"] for r in rows] == ["pool"] * 3
        four = rows[1]
        assert four["process_parallel_orders_per_sec"] == 400.0
        assert four["single_process_orders_per_sec"] == 193.7
        assert four["cold_process_parallel_orders_per_sec"] == 200.0
        assert four["deterministic"] is True
