"""Tests for OTN lines and switches."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import (
    CapacityExceededError,
    ConfigurationError,
    EquipmentError,
    ResourceError,
)
from repro.otn import OtnLine, OtnSwitch
from repro.units import ODU_LEVELS


@pytest.fixture
def line():
    return OtnLine("OTNLINE:A=B:0", "A", "B")


class TestOtnLine:
    def test_odu2_default_has_eight_slots(self, line):
        assert line.slot_count == 8
        assert line.free_slot_count() == 8

    def test_custom_level(self):
        line = OtnLine("L", "A", "B", level=ODU_LEVELS["ODU3"])
        assert line.slot_count == 32

    def test_endpoints_must_differ(self):
        with pytest.raises(ConfigurationError):
            OtnLine("L", "A", "A")

    def test_key_canonical(self):
        assert OtnLine("L", "B", "A").key == ("A", "B")

    def test_allocate_returns_slots(self, line):
        slots = line.allocate(2, "ckt-1")
        assert slots == [0, 1]
        assert line.free_slot_count() == 6
        assert line.owner_of(0) == "ckt-1"

    def test_allocate_beyond_capacity(self, line):
        line.allocate(8, "ckt-1")
        with pytest.raises(CapacityExceededError):
            line.allocate(1, "ckt-2")

    def test_allocate_zero_rejected(self, line):
        with pytest.raises(ConfigurationError):
            line.allocate(0, "ckt-1")

    def test_release_owner_frees_all(self, line):
        line.allocate(3, "ckt-1")
        line.allocate(2, "ckt-2")
        assert line.release_owner("ckt-1") == 3
        assert line.free_slot_count() == 6
        assert line.owners() == {"ckt-2"}

    def test_release_unknown_owner(self, line):
        with pytest.raises(ResourceError):
            line.release_owner("ghost")

    def test_fail_reports_owners_and_blocks_allocation(self, line):
        line.allocate(1, "ckt-1")
        assert line.fail() == {"ckt-1"}
        with pytest.raises(ResourceError):
            line.allocate(1, "ckt-2")
        line.repair()
        line.allocate(1, "ckt-2")

    def test_utilization(self, line):
        line.allocate(4, "ckt-1")
        assert line.utilization() == pytest.approx(0.5)

    def test_owner_of_invalid_slot(self, line):
        with pytest.raises(ConfigurationError):
            line.owner_of(8)

    @given(
        takes=st.lists(st.integers(min_value=1, max_value=3), max_size=5)
    )
    def test_slot_accounting_invariant(self, takes):
        line = OtnLine("L", "A", "B")
        allocated = 0
        for i, n in enumerate(takes):
            if allocated + n > line.slot_count:
                with pytest.raises(CapacityExceededError):
                    line.allocate(n, f"c{i}")
            else:
                line.allocate(n, f"c{i}")
                allocated += n
        assert line.free_slot_count() == line.slot_count - allocated


class TestOtnSwitch:
    def test_client_port_cycle(self):
        switch = OtnSwitch("NYC", client_port_count=2)
        port = switch.claim_client_port("ckt-1")
        assert port == 0
        switch.release_client_port(port, "ckt-1")
        assert switch.free_client_ports() == [0, 1]

    def test_client_port_exhaustion(self):
        switch = OtnSwitch("NYC", client_port_count=1)
        switch.claim_client_port("ckt-1")
        with pytest.raises(CapacityExceededError):
            switch.claim_client_port("ckt-2")

    def test_release_validation(self):
        switch = OtnSwitch("NYC")
        with pytest.raises(EquipmentError):
            switch.release_client_port(0, "ckt-1")
        port = switch.claim_client_port("ckt-1")
        with pytest.raises(EquipmentError):
            switch.release_client_port(port, "ckt-2")
        with pytest.raises(EquipmentError):
            switch.release_client_port(99, "ckt-1")

    def test_attach_line_must_terminate_here(self):
        switch = OtnSwitch("NYC")
        with pytest.raises(ConfigurationError):
            switch.attach_line(OtnLine("L", "CHI", "DFW"))

    def test_attach_duplicate_rejected(self):
        switch = OtnSwitch("NYC")
        line = OtnLine("L", "NYC", "CHI")
        switch.attach_line(line)
        with pytest.raises(ConfigurationError):
            switch.attach_line(line)

    def test_lines_toward(self):
        switch = OtnSwitch("NYC")
        chi = OtnLine("L1", "NYC", "CHI")
        dca = OtnLine("L2", "DCA", "NYC")
        switch.attach_line(chi)
        switch.attach_line(dca)
        assert switch.lines_toward("CHI") == [chi]
        assert switch.lines_toward("DCA") == [dca]
        assert switch.lines_toward("LAX") == []

    def test_best_fit_packing_prefers_fuller_line(self):
        """Best-fit grooming packs new circuits onto used wavelengths."""
        switch = OtnSwitch("NYC")
        line_a = OtnLine("L1", "NYC", "CHI")
        line_b = OtnLine("L2", "NYC", "CHI")
        switch.attach_line(line_a)
        switch.attach_line(line_b)
        line_a.allocate(5, "existing")
        chosen = switch.best_line_toward("CHI", slots_needed=2)
        assert chosen is line_a

    def test_best_fit_respects_capacity(self):
        switch = OtnSwitch("NYC")
        line_a = OtnLine("L1", "NYC", "CHI")
        line_b = OtnLine("L2", "NYC", "CHI")
        switch.attach_line(line_a)
        switch.attach_line(line_b)
        line_a.allocate(7, "existing")
        chosen = switch.best_line_toward("CHI", slots_needed=2)
        assert chosen is line_b

    def test_best_fit_skips_failed_lines(self):
        switch = OtnSwitch("NYC")
        line = OtnLine("L1", "NYC", "CHI")
        switch.attach_line(line)
        line.fail()
        assert switch.best_line_toward("CHI", slots_needed=1) is None

    def test_best_fit_none_when_full(self):
        switch = OtnSwitch("NYC")
        line = OtnLine("L1", "NYC", "CHI")
        switch.attach_line(line)
        line.allocate(8, "existing")
        assert switch.best_line_toward("CHI", slots_needed=1) is None
