"""Tests for the customer service API and GUI text views."""

import pytest

from repro.core.connection import ConnectionState
from repro.core.gui import render_connections, render_fault_panel, render_interfaces
from repro.errors import AdmissionError, ResourceError
from repro.facade import build_griphon_testbed


@pytest.fixture
def net():
    return build_griphon_testbed(seed=1, latency_cv=0.0)


@pytest.fixture
def svc(net):
    return net.service_for("csp-alpha")


class TestServiceApi:
    def test_unknown_customer_rejected(self, net):
        from repro.core.service import BodService

        with pytest.raises(AdmissionError):
            BodService(net.controller, "nobody")

    def test_request_and_list(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-B", 10)
        net.run()
        assert svc.connections() == [conn]
        assert svc.connection(conn.connection_id) is conn

    def test_isolation_other_customers_invisible(self, net, svc):
        other = net.service_for("csp-beta")
        conn = other.request_connection("PREMISES-A", "PREMISES-B", 10)
        net.run()
        assert svc.connections() == []
        with pytest.raises(ResourceError):
            svc.connection(conn.connection_id)
        with pytest.raises(ResourceError):
            svc.teardown_connection(conn.connection_id)

    def test_teardown_via_service(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-B", 10)
        net.run()
        svc.teardown_connection(conn.connection_id)
        net.run()
        assert conn.state is ConnectionState.RELEASED

    def test_usage(self, net, svc):
        svc.request_connection("PREMISES-A", "PREMISES-B", 10)
        net.run()
        usage = svc.usage()
        assert usage["connections"] == 1

    def test_impacted_connections(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        assert svc.impacted_connections() == []
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        net.controller.auto_restore = False
        net.controller.cut_link(lightpath.path[0], lightpath.path[1])
        assert svc.impacted_connections() == [conn]

    def test_fault_report_localizes(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        assert "in service" in svc.fault_report(conn.connection_id)
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        net.controller.auto_restore = False
        net.controller.cut_link(lightpath.path[0], lightpath.path[1])
        report = svc.fault_report(conn.connection_id)
        assert "outage localized to" in report
        assert "ROADM-I" in report

    def test_fault_report_blocked(self, net):
        svc = net.service_for("csp-tiny", max_connections=0)
        conn = svc.request_connection("PREMISES-A", "PREMISES-B", 10)
        assert "blocked" in svc.fault_report(conn.connection_id)


class TestGuiRendering:
    def test_connections_table(self, net, svc):
        svc.request_connection("PREMISES-A", "PREMISES-B", 10)
        net.run()
        text = render_connections(svc)
        assert "conn-0" in text
        assert "PREMISES-A" in text
        assert "up" in text
        assert "10 Gbps" in text

    def test_interfaces_pane(self, net, svc):
        svc.request_connection("PREMISES-A", "PREMISES-B", 10)
        net.run()
        text = render_interfaces(svc)
        assert "PREMISES-A" in text
        assert "wavelength for conn-0" in text

    def test_interfaces_pane_shows_shared_subchannels(self, net, svc):
        """Sub-wavelength services share a channelized interface: the
        pane shows sub-channel occupancy, not per-connection ownership."""
        svc.request_connection("PREMISES-A", "PREMISES-B", 1)
        svc.request_connection("PREMISES-A", "PREMISES-B", 1)
        net.run()
        text = render_interfaces(svc)
        assert "channelized, 2/10 sub-channels" in text

    def test_fault_panel_healthy(self, net, svc):
        svc.request_connection("PREMISES-A", "PREMISES-B", 10)
        net.run()
        assert render_fault_panel(svc) == "All connections in service."

    def test_fault_panel_outage(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        net.controller.auto_restore = False
        net.controller.cut_link(lightpath.path[0], lightpath.path[1])
        panel = render_fault_panel(svc)
        assert "outage" in panel
