"""Property-based tests for OTN shared-mesh protection invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.otn import OduCircuit, OduCircuitState, OtnLine, SharedMeshProtection
from repro.units import ODU_LEVELS


def build_square():
    """Protection manager over a square mesh A-B-C-D-A."""
    protection = SharedMeshProtection()
    lines = {}
    for line_id, a, b in (
        ("L:A=B", "A", "B"),
        ("L:B=C", "B", "C"),
        ("L:A=D", "A", "D"),
        ("L:C=D", "C", "D"),
    ):
        line = OtnLine(line_id, a, b)
        protection.add_line(line)
        lines[line_id] = line
    return protection, lines


def make_circuit(index, level_name):
    """A circuit A-B-C protected via A-D-C."""
    circuit = OduCircuit(
        f"c{index}",
        ODU_LEVELS[level_name],
        ["A", "B", "C"],
        backup_path=["A", "D", "C"],
    )
    circuit.transition(OduCircuitState.SETTING_UP)
    circuit.transition(OduCircuitState.UP)
    return circuit


@settings(max_examples=40, deadline=None)
@given(
    levels=st.lists(
        st.sampled_from(["ODU0", "ODU1", "ODU2"]), min_size=1, max_size=8
    )
)
def test_register_unregister_conserves_reservations(levels):
    protection, _ = build_square()
    registered = []
    for index, level_name in enumerate(levels):
        circuit = make_circuit(index, level_name)
        try:
            protection.register(circuit, ["L:A=D", "L:C=D"])
        except Exception:
            continue  # capacity exceeded: fine, nothing must have changed
        registered.append(circuit)
    for circuit in registered:
        protection.unregister(circuit.circuit_id)
    for line_id in ("L:A=D", "L:C=D", "L:A=B", "L:B=C"):
        assert protection.reserved_slots(line_id) == 0


@settings(max_examples=40, deadline=None)
@given(
    levels=st.lists(
        st.sampled_from(["ODU0", "ODU1"]), min_size=1, max_size=6
    )
)
def test_restore_revert_roundtrip_conserves_slots(levels):
    protection, lines = build_square()
    circuits = []
    for index, level_name in enumerate(levels):
        circuit = make_circuit(index, level_name)
        try:
            protection.register(circuit, ["L:A=D", "L:C=D"])
        except Exception:
            continue
        circuits.append(circuit)
    free_before = {
        line_id: line.free_slot_count() for line_id, line in lines.items()
    }
    restored = []
    for circuit in circuits:
        try:
            protection.restore(circuit.circuit_id)
        except Exception:
            continue
        restored.append(circuit)
    for circuit in restored:
        protection.revert(circuit.circuit_id)
        assert circuit.state is OduCircuitState.UP
    for line_id, line in lines.items():
        assert line.free_slot_count() == free_before[line_id]


@settings(max_examples=40, deadline=None)
@given(
    levels=st.lists(
        st.sampled_from(["ODU0", "ODU1", "ODU2"]), min_size=1, max_size=10
    )
)
def test_single_failure_restorability_guarantee(levels):
    """Everything the manager *accepted* must actually restore after a
    single failure of the shared working link — the whole point of the
    per-scenario reservation accounting."""
    protection, _ = build_square()
    accepted = []
    for index, level_name in enumerate(levels):
        circuit = make_circuit(index, level_name)
        try:
            protection.register(circuit, ["L:A=D", "L:C=D"])
        except Exception:
            continue
        accepted.append(circuit)
    # All accepted circuits share the working link A=B; fail it.
    hit = protection.circuits_hit_by(("A", "B"))
    assert set(c.circuit_id for c in hit) == set(
        c.circuit_id for c in accepted
    )
    for circuit in hit:
        duration = protection.restore(circuit.circuit_id)
        assert 0 < duration < 1.0
        assert circuit.state is OduCircuitState.ON_BACKUP
