"""Tests for the network re-grooming engine (paper §4)."""

import pytest

from repro.core.connection import ConnectionState
from repro.core.regrooming import RegroomCandidate, RegroomingEngine
from repro.errors import ConfigurationError
from repro.facade import build_griphon_testbed


@pytest.fixture
def net():
    return build_griphon_testbed(seed=9, latency_cv=0.0)


def detoured_connection(net, svc):
    """Bring up a connection forced onto the long way (direct link cut),
    then repair the direct link so a better route exists."""
    net.controller.cut_link("ROADM-I", "ROADM-IV")
    conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
    net.run()
    assert conn.state is ConnectionState.UP
    lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
    assert lightpath.hop_count >= 2  # took the detour
    net.controller.repair_link("ROADM-I", "ROADM-IV")
    return conn


class TestCandidate:
    def test_improvement_fraction(self):
        candidate = RegroomCandidate("conn-0", current_km=120.0, best_km=80.0)
        assert candidate.improvement == pytest.approx(1 / 3)

    def test_no_negative_improvement(self):
        candidate = RegroomCandidate("conn-0", current_km=80.0, best_km=120.0)
        assert candidate.improvement == 0.0

    def test_zero_current(self):
        assert RegroomCandidate("c", 0.0, 0.0).improvement == 0.0


class TestScan:
    def test_detour_is_found(self, net):
        svc = net.service_for("csp")
        conn = detoured_connection(net, svc)
        engine = RegroomingEngine(net.controller)
        candidates = engine.scan()
        assert [c.connection_id for c in candidates] == [conn.connection_id]
        assert candidates[0].best_km < candidates[0].current_km

    def test_well_placed_connection_not_flagged(self, net):
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        # Direct 80 km path: the only disjoint alternative is 120 km.
        engine = RegroomingEngine(net.controller)
        assert engine.scan() == []

    def test_threshold_filters_small_wins(self, net):
        svc = net.service_for("csp")
        detoured_connection(net, svc)
        # Detour saves (120-80)/120 = 33%; a 50% threshold hides it.
        engine = RegroomingEngine(net.controller, improvement_threshold=0.5)
        assert engine.scan() == []

    def test_subwavelength_connections_skipped(self, net):
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 1)
        net.run()
        assert conn.state is ConnectionState.UP
        engine = RegroomingEngine(net.controller)
        assert engine.scan() == []

    def test_bad_threshold(self, net):
        with pytest.raises(ConfigurationError):
            RegroomingEngine(net.controller, improvement_threshold=1.5)


class TestRunPass:
    def test_migrates_via_bridge_and_roll(self, net):
        svc = net.service_for("csp")
        conn = detoured_connection(net, svc)
        engine = RegroomingEngine(net.controller)
        reports = []
        report = engine.run_pass(on_done=reports.append)
        net.run()
        assert report.migrated == [conn.connection_id]
        assert reports == [report]
        # Migration landed on the short path with only the roll hit.
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        assert lightpath.path == ["ROADM-I", "ROADM-IV"]
        assert conn.total_outage_s == pytest.approx(0.050)

    def test_max_migrations_cap(self, net):
        svc = net.service_for("csp")
        detoured_connection(net, svc)
        engine = RegroomingEngine(net.controller)
        report = engine.run_pass(max_migrations=0)
        net.run()
        assert report.migrated == []
        assert len(report.candidates) == 1

    def test_empty_network_report(self, net):
        engine = RegroomingEngine(net.controller)
        reports = []
        report = engine.run_pass(on_done=reports.append)
        assert report.scanned == 0
        assert report.candidates == []
        assert reports == [report]

    def test_scan_counts_up_connections(self, net):
        svc = net.service_for("csp")
        detoured_connection(net, svc)
        engine = RegroomingEngine(net.controller)
        report = engine.run_pass(max_migrations=0)
        assert report.scanned == 1
