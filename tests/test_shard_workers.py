"""The persistent shard worker pool: RPC parity, lifecycle, recovery.

Every RPC a :class:`~repro.shard.workers.ShardWorkerPool` worker serves
is checked against a local twin built from the same
:class:`~repro.shard.workers.UnitRecipe` — same plans, same plant
fingerprints after commit/release — because the worker IS just the unit
rebuilt from its recipe behind a pipe.  Lifecycle tests pin the
guarantees the resident layer depends on: context-manager close reaps
every process (no zombies), a killed worker surfaces as the typed
:class:`~repro.errors.WorkerCrashed`, and journal replay rebuilds a
crashed worker into byte-identical state.  The sweep-executor tests pin
the warm-worker determinism gate: pooled trials match per-trial
rebuilds on the simulation-determined projection while the route cache
reports the extra hits that are the whole point.
"""

import pytest

from repro.errors import ConfigurationError, WorkerCrashed
from repro.shard.bench import (
    bench_workload,
    plan_projection,
    shard_plan_spec,
)
from repro.shard.workers import (
    ShardWorkerPool,
    UnitRecipe,
    plant_fingerprint,
    recipe_for_trial,
)
from repro.sweep.engine import run_sweep

RECIPE = UnitRecipe(
    unit="R00", topology_seed=3, regions=2, pops_per_region=5
)


def _plan_shape(plan):
    return (
        tuple(plan.path),
        tuple(s.channel for s in plan.segments),
        tuple(plan.regen_sites),
    )


def _requests(unit, count=6):
    (requests,) = bench_workload(unit, RECIPE.topology_seed, 1, count)
    return requests


class TestRecipe:
    def test_recipe_is_the_pool_key(self):
        params = {
            "topology_seed": 3, "regions": 2, "pops_per_region": 5,
            "unit": "R00", "rounds": 4, "orders_per_round": 16,
        }
        light = dict(params, rounds=1, orders_per_round=2)
        # Workload knobs don't enter the key: both trials share a worker.
        assert recipe_for_trial(params) == recipe_for_trial(light)
        assert hash(recipe_for_trial(params)) == hash(recipe_for_trial(light))
        assert recipe_for_trial(dict(params, topology_seed=4)) != (
            recipe_for_trial(params)
        )

    def test_build_is_deterministic(self):
        first, second = RECIPE.build(), RECIPE.build()
        requests = _requests(first)
        shapes = [
            [_plan_shape(i.plan) for i in u.plan_batch(requests) if i.ok]
            for u in (first, second)
        ]
        assert shapes[0] == shapes[1] and shapes[0]


class TestWorkerRpcParity:
    def test_plan_commit_release_match_local_twin(self):
        local = RECIPE.build()
        requests = _requests(local)
        with ShardWorkerPool([RECIPE]) as pool:
            remote = pool.call(
                RECIPE, "plan_batch", {"requests": requests, "round": False}
            )
            items = local.plan_batch(requests)
            assert [i.ok for i in remote] == [i.ok for i in items]
            assert [
                _plan_shape(i.plan) for i in remote if i.ok
            ] == [_plan_shape(i.plan) for i in items if i.ok]
            # Committing the same plans lands both plants on the same
            # structural fingerprint...
            for seq, item in enumerate(items):
                if item.ok:
                    local.occupy_plan(item.plan, f"t-{seq}")
                    pool.call(
                        RECIPE,
                        "commit",
                        {"plan": item.plan, "owner": f"t-{seq}"},
                    )
            fp = pool.call(RECIPE, "fingerprint")
            assert fp["state"] == plant_fingerprint(local.inventory.plant)
            assert fp["committed"] == sum(1 for i in items if i.ok)
            # ...and releasing one keeps them in lockstep.
            seq = next(i for i, item in enumerate(items) if item.ok)
            local.release_plan(items[seq].plan, f"t-{seq}")
            pool.call(
                RECIPE,
                "release",
                {"plan": items[seq].plan, "owner": f"t-{seq}"},
            )
            assert pool.call(RECIPE, "fingerprint")["state"] == (
                plant_fingerprint(local.inventory.plant)
            )

    def test_cut_and_repair_track_local_twin(self):
        local = RECIPE.build()
        with ShardWorkerPool([RECIPE]) as pool:
            item = next(
                i for i in local.plan_batch(_requests(local)) if i.ok
            )
            a, b = item.plan.path[0], item.plan.path[1]
            displaced = pool.call(RECIPE, "cut", {"a": a, "b": b})
            assert displaced == sorted(
                local.inventory.plant.cut_link(a, b)
            )
            assert pool.call(RECIPE, "fingerprint")["state"] == (
                plant_fingerprint(local.inventory.plant)
            )
            pool.call(RECIPE, "repair", {"a": a, "b": b})
            local.inventory.plant.repair_link(a, b)
            assert pool.call(RECIPE, "fingerprint")["state"] == (
                plant_fingerprint(local.inventory.plant)
            )

    def test_counters_and_reset(self):
        with ShardWorkerPool([RECIPE]) as pool:
            local = RECIPE.build()
            requests = _requests(local)
            pool.call(
                RECIPE, "plan_batch", {"requests": requests, "round": False}
            )
            counters = pool.call(RECIPE, "counters")
            assert counters["misses"] > 0
            pool.call(RECIPE, "reset")
            # Reset restores pristine occupancy but keeps the cache warm.
            assert pool.call(RECIPE, "fingerprint")["state"] == (
                plant_fingerprint(RECIPE.build().inventory.plant)
            )
            pool.call(
                RECIPE, "plan_batch", {"requests": requests, "round": False}
            )
            assert pool.call(RECIPE, "counters")["hits"] > counters["hits"]

    def test_unknown_op_is_typed_and_survivable(self):
        with ShardWorkerPool([RECIPE]) as pool:
            with pytest.raises(ConfigurationError, match="unknown"):
                pool.call(RECIPE, "frobnicate")
            # The error was a reply, not a crash: the worker still serves.
            assert pool.call(RECIPE, "ping") == "pong"


class TestLifecycle:
    def test_context_manager_leaves_no_zombies(self):
        with ShardWorkerPool([RECIPE]) as pool:
            process = pool.process_of(RECIPE)
            assert process.is_alive()
            assert pool.call(RECIPE, "ping") == "pong"
        assert not process.is_alive()
        assert process.exitcode == 0
        pool.close()  # idempotent

    def test_ensure_dedupes_by_recipe(self):
        with ShardWorkerPool() as pool:
            pool.ensure(RECIPE)
            process = pool.process_of(RECIPE)
            pool.ensure(RECIPE)
            assert pool.size == 1
            assert pool.process_of(RECIPE) is process

    def test_closed_pool_rejects_work(self):
        pool = ShardWorkerPool([RECIPE])
        pool.close()
        with pytest.raises(ConfigurationError, match="closed"):
            pool.call(RECIPE, "ping")


class TestCrashRecovery:
    def _mutate(self, pool, local):
        """The same mutating history on a pool worker and its local twin."""
        items = local.plan_batch(_requests(local))
        for seq, item in enumerate(items):
            if item.ok:
                local.occupy_plan(item.plan, f"t-{seq}")
                pool.call(
                    RECIPE, "commit", {"plan": item.plan, "owner": f"t-{seq}"}
                )
        item = next(i for i in items if i.ok)
        a, b = item.plan.path[0], item.plan.path[1]
        pool.call(RECIPE, "cut", {"a": a, "b": b})
        local.inventory.plant.cut_link(a, b)

    def test_crash_raises_typed_error(self):
        with ShardWorkerPool([RECIPE]) as pool:
            pool.process_of(RECIPE).kill()
            with pytest.raises(WorkerCrashed):
                pool.call(RECIPE, "ping")

    def test_rebuild_and_replay_restores_exact_state(self):
        with ShardWorkerPool([RECIPE]) as pool, ShardWorkerPool(
            [RECIPE]
        ) as control:
            self._mutate(pool, RECIPE.build())
            self._mutate(control, RECIPE.build())
            pool.process_of(RECIPE).kill()
            pool.process_of(RECIPE).join()
            pool.respawn(RECIPE)
            # The replayed worker matches the never-crashed control on
            # plant state AND committed-plan digest...
            assert pool.call(RECIPE, "fingerprint") == control.call(
                RECIPE, "fingerprint"
            )
            # ...and plans the next batch identically.
            requests = _requests(RECIPE.build())
            payload = {"requests": requests, "round": False}
            replayed = pool.call(RECIPE, "plan_batch", payload)
            expected = control.call(RECIPE, "plan_batch", payload)
            assert [i.ok for i in replayed] == [i.ok for i in expected]
            assert [
                _plan_shape(i.plan) for i in replayed if i.ok
            ] == [_plan_shape(i.plan) for i in expected if i.ok]

    def test_auto_recover_is_transparent(self):
        with ShardWorkerPool([RECIPE], recover=True) as pool:
            local = RECIPE.build()
            self._mutate(pool, local)
            pool.process_of(RECIPE).kill()
            # recover=True: the call respawns, replays, and answers.
            fp = pool.call(RECIPE, "fingerprint")
            assert fp["state"] == plant_fingerprint(local.inventory.plant)


class TestSweepExecutor:
    def test_pooled_sweep_matches_rebuild_and_warms_cache(self):
        spec = shard_plan_spec(
            topology_seed=11,
            regions=2,
            pops_per_region=6,
            rounds=2,
            orders_per_round=8,
        )
        single = run_sweep(spec, jobs=1)
        recipes = {recipe_for_trial(t.params) for t in spec.trials()}
        with ShardWorkerPool(recipes) as pool:
            cold = run_sweep(spec, executor=pool)
            warm = run_sweep(spec, executor=pool)
        reference = plan_projection(single)
        assert plan_projection(cold) == reference
        assert plan_projection(warm) == reference
        hits = lambda result: sum(  # noqa: E731
            t.values["route_cache_hits"] for t in result.results
        )
        # The warm pass is the point: route caches survive across trials.
        assert hits(warm) > hits(cold)
        assert warm.jobs == len(recipes)
