"""Golden-trace test: the 12G setup span tree and Table 2 phase breakdown.

A checked-in JSON golden (``tests/golden/table2_trace.json``) pins down

* the full span tree of the paper's 12 Gbps example order (one 10G
  wavelength + two 1G ODU0 circuits) — span names, nesting, and
  durations to the millisecond — and
* the Table 2 per-phase establishment-time breakdown (order, fxc, tune,
  roadm, equalize, verify) for each of the three testbed path lengths.

The comparison is structural: names and shape must match exactly,
durations within 1.5 ms.  After an *intentional* timing or workflow
change, regenerate the golden and review the diff::

    PYTHONPATH=src python -c \
        "from tests.test_golden_table2 import regenerate; regenerate()"
"""

import json
import statistics
from pathlib import Path

from repro.cli import _TABLE2_EXCLUSIONS, _setup_phase_durations
from repro.facade import build_griphon_testbed
from repro.sim.process import Process
from repro.units import gbps

GOLDEN_PATH = Path(__file__).parent / "golden" / "table2_trace.json"

#: Durations are compared to the millisecond (golden stores 3 decimals).
TOLERANCE_S = 0.0015

#: Seeds averaged per Table 2 row.
ITERATIONS = 3


def _span_node(tracer, span):
    """One span as a (name, duration, children) dict, durations in ms
    resolution."""
    return {
        "name": span.name,
        "duration_s": round(span.duration, 3),
        "children": [
            _span_node(tracer, child) for child in tracer.children_of(span)
        ],
    }


def build_payload():
    """Recompute everything the golden file pins down."""
    # Part 1: the 12 Gbps composite order's span tree.
    net = build_griphon_testbed(seed=0, tracing=True)
    service = net.service_for("golden")
    service.request_connection("PREMISES-A", "PREMISES-B", 12)
    net.run()
    root = next(
        s for s in net.tracer.roots() if s.name == "connection.request"
    )
    tree = _span_node(net.tracer, root)

    # Part 2: Table 2 — per-phase setup seconds vs ROADM path length.
    table2 = {}
    for hops, exclusions in _TABLE2_EXCLUSIONS.items():
        phase_sums = {}
        totals = []
        for i in range(ITERATIONS):
            run_net = build_griphon_testbed(seed=i, tracing=True)
            plan = run_net.controller.rwa.plan(
                "ROADM-I", "ROADM-IV", gbps(10), excluded_links=exclusions
            )
            lightpath = run_net.controller.provisioner.claim(plan)
            Process(
                run_net.sim,
                run_net.controller.provisioner.setup_workflow(lightpath),
            )
            run_net.run()
            setup = run_net.tracer.spans("lightpath.setup")[0]
            for phase, secs in _setup_phase_durations(
                run_net.tracer, setup
            ).items():
                phase_sums[phase] = phase_sums.get(phase, 0.0) + secs
            totals.append(setup.duration)
        table2[str(hops)] = {
            "phases": {
                phase: round(total / ITERATIONS, 3)
                for phase, total in sorted(phase_sums.items())
            },
            "total_s": round(statistics.fmean(totals), 3),
        }
    return {"span_tree": tree, "table2": table2}


def regenerate():
    """Rewrite the golden file from the current implementation."""
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(build_payload(), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {GOLDEN_PATH}")


def _load_golden():
    assert GOLDEN_PATH.exists(), (
        f"golden file missing: {GOLDEN_PATH} — run regenerate()"
    )
    return json.loads(GOLDEN_PATH.read_text())


def _assert_tree_matches(actual, golden, path):
    assert actual["name"] == golden["name"], (
        f"span name drift at {path}: "
        f"{actual['name']!r} != {golden['name']!r}"
    )
    here = f"{path}/{golden['name']}"
    assert abs(actual["duration_s"] - golden["duration_s"]) <= TOLERANCE_S, (
        f"duration drift at {here}: "
        f"{actual['duration_s']} vs golden {golden['duration_s']}"
    )
    actual_children = actual["children"]
    golden_children = golden["children"]
    assert len(actual_children) == len(golden_children), (
        f"child-count drift at {here}: "
        f"{[c['name'] for c in actual_children]} vs "
        f"{[c['name'] for c in golden_children]}"
    )
    for index, (a, g) in enumerate(zip(actual_children, golden_children)):
        _assert_tree_matches(a, g, f"{here}[{index}]")


def test_12g_span_tree_matches_golden():
    actual = build_payload()["span_tree"]
    golden = _load_golden()["span_tree"]
    _assert_tree_matches(actual, golden, "")


def test_table2_phase_breakdown_matches_golden():
    actual = build_payload()["table2"]
    golden = _load_golden()["table2"]
    assert sorted(actual) == sorted(golden)
    for hops in golden:
        got, want = actual[hops], golden[hops]
        assert sorted(got["phases"]) == sorted(want["phases"]), (
            f"phase set drift at {hops} hops"
        )
        for phase, want_secs in want["phases"].items():
            assert abs(got["phases"][phase] - want_secs) <= TOLERANCE_S, (
                f"{hops} hops, phase {phase!r}: "
                f"{got['phases'][phase]} vs golden {want_secs}"
            )
        assert abs(got["total_s"] - want["total_s"]) <= TOLERANCE_S, (
            f"{hops} hops total: {got['total_s']} vs golden {want['total_s']}"
        )
