"""Tests for the inventory/hardware invariant auditor.

Clean networks (fresh, loaded, and torn down) must audit clean, and a
seeded corruption of each resource class — a leaked channel, a missing
channel, a rogue transponder allocation, a rogue FXC cross-connect, a
dangling component reference — must surface as the right violation kind.
"""

from repro.facade import build_griphon_testbed
from repro.faults import AuditReport, AuditViolation, audit_network
from repro.faults.audit import audit_inventory

PAIR = ("PREMISES-A", "PREMISES-B")


def build_up_network(rate_gbps=10):
    net = build_griphon_testbed(seed=5)
    svc = net.service_for("acme")
    conn = svc.request_connection(*PAIR, rate_gbps)
    net.run()
    return net, svc, conn


def kinds(report):
    return {violation.kind for violation in report.violations}


class TestCleanAudits:
    def test_fresh_network_is_clean(self):
        net = build_griphon_testbed(seed=1)
        report = audit_network(net.controller)
        assert report.ok
        assert report.checked > 0

    def test_loaded_network_is_clean(self):
        net, svc, conn = build_up_network(12)
        report = audit_network(net.controller)
        assert report.ok, str(report)

    def test_torn_down_network_is_clean(self):
        net, svc, conn = build_up_network()
        svc.teardown_connection(conn.connection_id)
        net.run()
        assert audit_network(net.controller).ok

    def test_inventory_only_audit_skips_connection_checks(self):
        net, _, _ = build_up_network()
        report = audit_inventory(net.inventory)
        assert report.ok, str(report)

    def test_report_rendering(self):
        clean = AuditReport(checked=3)
        assert "3 resource(s) checked, clean" in clean.summary()
        dirty = AuditReport(
            violations=[
                AuditViolation("channel-leak", "channel 4", "LP:x", "leaked")
            ],
            checked=1,
        )
        assert not dirty.ok
        assert "1 violation(s)" in dirty.summary()
        assert "[channel-leak]" in str(dirty)


class TestCorruptionDetection:
    def test_bogus_channel_occupation_is_a_leak(self):
        net, _, _ = build_up_network()
        dwdm = net.inventory.plant.dwdm_link("ROADM-I", "ROADM-III")
        channel = sorted(dwdm.free_channels())[0]
        dwdm.occupy(channel, "LP:bogus")
        report = audit_network(net.controller)
        assert "channel-leak" in kinds(report)

    def test_released_channel_behind_a_lightpaths_back_is_missing(self):
        net, _, conn = build_up_network()
        lp_id = conn.lightpath_ids[0]
        lightpath = net.inventory.lightpaths[lp_id]
        segment = lightpath.segments[0]
        dwdm = net.inventory.plant.dwdm_link(*segment.links[0])
        dwdm.release(segment.channel, lp_id)
        report = audit_network(net.controller)
        assert "channel-missing" in kinds(report)

    def test_bogus_transponder_allocation_is_a_leak(self):
        net, _, _ = build_up_network()
        pool = net.inventory.transponders["ROADM-I"]
        free = pool.free()[0]
        free.allocate("LP:bogus")
        report = audit_network(net.controller)
        assert "ot-leak" in kinds(report)

    def test_bogus_fxc_crossconnect_is_a_leak(self):
        net, _, _ = build_up_network()
        fxc = net.inventory.fxcs["PREMISES-C"]
        port_a, port_b = fxc.free_ports()[:2]
        fxc.connect(port_a, port_b, "conn-bogus")
        report = audit_network(net.controller)
        assert "fxc-leak" in kinds(report)

    def test_dangling_lightpath_reference(self):
        net, _, conn = build_up_network()
        conn.lightpath_ids.append("LP:phantom")
        report = audit_network(net.controller)
        assert "dangling-lightpath" in kinds(report)

    def test_blocked_connections_may_not_hold_resources(self):
        # A BLOCKED connection is outside the resource-holding states:
        # an FXC cross-connect it still owned would be a leak.
        net, svc, conn = build_up_network()
        fxc = net.inventory.fxcs["PREMISES-C"]
        port_a, port_b = fxc.free_ports()[:2]
        fxc.connect(port_a, port_b, conn.connection_id)
        assert audit_network(net.controller).ok  # conn is UP: legitimate
        svc.teardown_connection(conn.connection_id)
        net.run()
        report = audit_network(net.controller)
        assert "fxc-leak" in kinds(report)

    def test_violation_str_names_the_resource(self):
        net, _, _ = build_up_network()
        pool = net.inventory.transponders["ROADM-II"]
        free = pool.free()[0]
        free.allocate("LP:bogus")
        report = audit_network(net.controller)
        assert not report.ok
        text = str(report.violations[0])
        assert "ot-leak" in text and "LP:bogus" in text


class TestAmplifierGainAudit:
    """Cross-check of live amplifier gains against inventory records."""

    def test_clean_network_gains_match_records(self):
        net = build_griphon_testbed(seed=2)
        report = audit_network(net.controller)
        assert report.ok
        key = ("ROADM-I", "ROADM-II")
        recorded = net.inventory.recorded_amplifier_gain(key)
        chain = net.controller.roadm_ems.amplifier_chains()[key]
        assert recorded == chain.target_gain_db

    def test_silent_gain_drift_is_a_mismatch(self):
        net = build_griphon_testbed(seed=2)
        chain = net.controller.roadm_ems.chain("ROADM-I", "ROADM-II")
        chain.set_gain(chain.target_gain_db - 3.0)
        report = audit_network(net.controller)
        assert "amp-gain-mismatch" in kinds(report)

    def test_active_amp_flap_excuses_the_deviation(self):
        # While a declared amp-flap degradation is live on the link, the
        # gain deviation is the *injected* failure, not a bookkeeping
        # bug — the auditor must not double-report it.
        net = build_griphon_testbed(seed=2)
        chain = net.controller.roadm_ems.chain("ROADM-I", "ROADM-II")
        chain.set_gain(chain.target_gain_db - 3.0)
        link = net.inventory.plant.dwdm_link("ROADM-I", "ROADM-II")
        link.set_degradation("amp-flap:0", 3.0)
        assert audit_network(net.controller).ok
        # Once the flap clears, a lingering deviation is a violation.
        link.clear_degradation("amp-flap:0")
        assert "amp-gain-mismatch" in kinds(audit_network(net.controller))

    def test_reset_gain_clears_the_mismatch(self):
        net = build_griphon_testbed(seed=2)
        chain = net.controller.roadm_ems.chain("ROADM-I", "ROADM-II")
        chain.set_gain(0.0)
        assert not audit_network(net.controller).ok
        chain.reset_gain()
        assert audit_network(net.controller).ok
