"""Tests for the IP layer: adjacencies, EVC routing, reroute, and the
controller's cross-layer integration."""

import pytest

from repro.core.connection import ConnectionKind, ConnectionState
from repro.errors import (
    CapacityExceededError,
    ConfigurationError,
    NoPathError,
    ResourceError,
)
from repro.facade import build_griphon_testbed
from repro.iplayer import EvcState, IpLayer
from repro.units import gbps, mbps


@pytest.fixture
def ip():
    """A triangle A-B-C plus a spur C-D."""
    layer = IpLayer()
    for node in "ABCD":
        layer.add_router(node)
    layer.add_adjacency("A", "B", capacity_bps=gbps(10))
    layer.add_adjacency("B", "C", capacity_bps=gbps(10))
    layer.add_adjacency("A", "C", capacity_bps=gbps(10))
    layer.add_adjacency("C", "D", capacity_bps=gbps(10))
    return layer


class TestConstruction:
    def test_duplicate_router(self, ip):
        with pytest.raises(ConfigurationError):
            ip.add_router("A")

    def test_adjacency_needs_routers(self):
        layer = IpLayer()
        layer.add_router("A")
        with pytest.raises(ConfigurationError):
            layer.add_adjacency("A", "B", capacity_bps=gbps(1))

    def test_self_adjacency_rejected(self, ip):
        with pytest.raises(ConfigurationError):
            ip.add_adjacency("A", "A", capacity_bps=gbps(1))

    def test_duplicate_adjacency_rejected(self, ip):
        with pytest.raises(ConfigurationError):
            ip.add_adjacency("B", "A", capacity_bps=gbps(1))

    def test_bad_parameters(self, ip):
        with pytest.raises(ConfigurationError):
            ip.add_adjacency("A", "D", capacity_bps=0)
        with pytest.raises(ConfigurationError):
            ip.add_adjacency("A", "D", capacity_bps=gbps(1),
                             oversubscription=0.5)

    def test_oversubscription_multiplies_sellable(self, ip):
        adjacency = ip.adjacency("A", "B")
        assert adjacency.sellable_bps == gbps(20)


class TestRouting:
    def test_shortest_by_hops(self, ip):
        assert ip.route("A", "C", mbps(100)) == ["A", "C"]

    def test_detour_when_direct_full(self, ip):
        ip.adjacency("A", "C").reserve("hog", gbps(20))
        assert ip.route("A", "C", mbps(100)) == ["A", "B", "C"]

    def test_no_path_when_everything_full(self, ip):
        ip.adjacency("A", "C").reserve("hog1", gbps(20))
        ip.adjacency("A", "B").reserve("hog2", gbps(20))
        with pytest.raises(NoPathError):
            ip.route("A", "C", mbps(100))

    def test_unknown_router(self, ip):
        with pytest.raises(ConfigurationError):
            ip.route("A", "Z", mbps(1))

    def test_widest_tiebreak(self, ip):
        # Two 2-hop routes... make direct full and load B differently.
        ip.adjacency("A", "C").reserve("hog", gbps(20))
        ip.adjacency("A", "B").reserve("partial", gbps(15))
        # Only one 2-hop option here, but the bottleneck logic must not
        # crash and must still find it.
        assert ip.route("A", "C", mbps(100)) == ["A", "B", "C"]


class TestEvcs:
    def test_provision_reserves_per_hop(self, ip):
        evc = ip.provision_evc("A", "C", mbps(200))
        assert evc.state is EvcState.UP
        assert ip.adjacency("A", "C").reserved_bps == mbps(200)

    def test_release_returns_bandwidth(self, ip):
        evc = ip.provision_evc("A", "C", mbps(200))
        ip.release_evc(evc.evc_id)
        assert ip.adjacency("A", "C").reserved_bps == 0
        assert evc.state is EvcState.RELEASED

    def test_release_unknown(self, ip):
        with pytest.raises(ResourceError):
            ip.release_evc("evc-ghost")

    def test_rate_must_be_positive(self, ip):
        with pytest.raises(ConfigurationError):
            ip.provision_evc("A", "C", 0)

    def test_double_reserve_same_owner_rejected(self, ip):
        adjacency = ip.adjacency("A", "B")
        adjacency.reserve("x", mbps(1))
        with pytest.raises(ResourceError):
            adjacency.reserve("x", mbps(1))

    def test_capacity_exceeded(self, ip):
        adjacency = ip.adjacency("A", "B")
        with pytest.raises(CapacityExceededError):
            adjacency.reserve("x", gbps(25))

    def test_release_without_reservation(self, ip):
        with pytest.raises(ResourceError):
            ip.adjacency("A", "B").release("ghost")


class TestFailureHandling:
    def test_fail_adjacency_lists_riders(self, ip):
        evc = ip.provision_evc("A", "C", mbps(200))
        affected = ip.fail_adjacency("A", "C")
        assert affected == [evc]

    def test_reroute_is_fast_and_moves_path(self, ip):
        evc = ip.provision_evc("A", "C", mbps(200))
        ip.fail_adjacency("A", "C")
        outage = ip.reroute_evc(evc.evc_id)
        assert outage < 1.0
        assert evc.path == ["A", "B", "C"]
        assert evc.reroute_count == 1
        assert ip.adjacency("A", "C").reserved_bps == 0

    def test_reroute_without_capacity_goes_down(self, ip):
        evc = ip.provision_evc("A", "C", mbps(200))
        ip.fail_adjacency("A", "C")
        ip.adjacency("A", "B").reserve("hog", gbps(20))
        with pytest.raises(NoPathError):
            ip.reroute_evc(evc.evc_id)
        assert evc.state is EvcState.DOWN

    def test_repair_and_reroute_recovers(self, ip):
        evc = ip.provision_evc("A", "C", mbps(200))
        ip.fail_adjacency("A", "C")
        ip.adjacency("A", "B").reserve("hog", gbps(20))
        with pytest.raises(NoPathError):
            ip.reroute_evc(evc.evc_id)
        ip.repair_adjacency("A", "C")
        ip.reroute_evc(evc.evc_id)
        assert evc.state is EvcState.UP


class TestControllerIntegration:
    @pytest.fixture
    def net(self):
        return build_griphon_testbed(seed=41, latency_cv=0.0)

    def test_sub_gig_order_becomes_evc(self, net):
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 0.2)
        net.run()
        assert conn.state is ConnectionState.UP
        assert conn.kind is ConnectionKind.PACKET
        assert len(conn.evc_ids) == 1
        assert not conn.lightpath_ids and not conn.circuit_ids

    def test_evc_setup_is_seconds_not_minutes(self, net):
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 0.2)
        net.run()
        assert conn.setup_duration < 10

    def test_forced_packet_kind(self, net):
        svc = net.service_for("csp")
        conn = svc.request_connection(
            "PREMISES-A", "PREMISES-C", 0.5, kind=ConnectionKind.PACKET
        )
        net.run()
        assert conn.kind is ConnectionKind.PACKET

    def test_packet_without_ip_layer_blocked(self):
        net = build_griphon_testbed(seed=41, latency_cv=0.0, with_ip=False)
        svc = net.service_for("csp")
        conn = svc.request_connection(
            "PREMISES-A", "PREMISES-C", 0.5, kind=ConnectionKind.PACKET
        )
        assert conn.state is ConnectionState.BLOCKED

    def test_teardown_releases_evc(self, net):
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 0.2)
        net.run()
        svc.teardown_connection(conn.connection_id)
        net.run()
        assert conn.state is ConnectionState.RELEASED
        assert net.controller.ip_layer.evcs == []

    def test_fiber_cut_reroutes_evc_subsecond(self, net):
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 0.2)
        net.run()
        evc = net.controller.ip_layer.evcs[0]
        a, b = evc.path[0], evc.path[1]
        net.controller.cut_link(a, b)
        net.run()
        assert conn.state is ConnectionState.UP
        assert 0 < conn.total_outage_s < 1.0
        assert evc.reroute_count == 1

    def test_total_isolation_failure_then_repair(self, net):
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 0.2)
        net.run()
        net.controller.auto_restore = False
        for pair in (
            ("ROADM-I", "ROADM-IV"),
            ("ROADM-I", "ROADM-III"),
            ("ROADM-I", "ROADM-II"),
        ):
            net.controller.cut_link(*pair)
        net.run()
        assert conn.state is ConnectionState.FAILED
        net.controller.repair_link("ROADM-I", "ROADM-III")
        net.run()
        assert conn.state is ConnectionState.UP
