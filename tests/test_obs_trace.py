"""Unit tests for the tracing + metrics subsystem (repro.obs)."""

import json

import pytest

from repro.obs import NULL_SPAN, MetricsRegistry, Span, Tracer


class FakeClock:
    """A settable clock standing in for the simulator's."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock, enabled=True)


class TestTracerBasics:
    def test_disabled_by_default(self, clock):
        tracer = Tracer(clock)
        assert not tracer.enabled
        assert tracer.span("x") is NULL_SPAN
        assert len(tracer) == 0

    def test_null_span_is_inert(self, clock):
        tracer = Tracer(clock)
        span = tracer.span("x", foo=1)
        assert span.trace_id is None
        assert span.child("y") is span
        assert span.set_tag("k", "v") is span
        with span as s:
            assert s is span
        assert span.duration == 0.0

    def test_enable_disable(self, clock):
        tracer = Tracer(clock)
        tracer.enable()
        assert tracer.span("a") is not NULL_SPAN
        tracer.disable()
        assert tracer.span("b") is NULL_SPAN
        assert len(tracer) == 1  # "a" was kept

    def test_span_times_from_clock(self, tracer, clock):
        clock.t = 5.0
        span = tracer.span("work")
        clock.t = 12.5
        span.finish()
        assert span.start == 5.0
        assert span.end == 12.5
        assert span.duration == 7.5

    def test_finish_is_idempotent(self, tracer, clock):
        span = tracer.span("work")
        clock.t = 3.0
        span.finish()
        clock.t = 9.0
        span.finish()
        assert span.end == 3.0

    def test_context_manager_finishes_and_tags_errors(self, tracer, clock):
        with pytest.raises(ValueError):
            with tracer.span("bad") as span:
                clock.t = 1.0
                raise ValueError("boom")
        assert span.finished
        assert span.tags["error"] == "ValueError"

    def test_parenting_and_trace_ids(self, tracer):
        root = tracer.span("root")
        child = root.child("child")
        grandchild = child.child("grandchild")
        assert child.trace_id == root.trace_id
        assert grandchild.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert tracer.children_of(root) == [child]
        assert tracer.children_of(child) == [grandchild]
        other_root = tracer.span("other")
        assert other_root.trace_id != root.trace_id
        assert set(tracer.roots()) == {root, other_root}

    def test_adopted_trace_id(self, tracer):
        root = tracer.span("setup")
        adopted = tracer.span("restoration", trace_id=root.trace_id)
        assert adopted.parent_id is None
        assert adopted.trace_id == root.trace_id
        assert set(tracer.by_trace(root.trace_id)) == {root, adopted}

    def test_event_and_record(self, tracer, clock):
        clock.t = 4.0
        event = tracer.event("cut", link="A=B")
        assert event.start == event.end == 4.0
        recorded = tracer.record("switch", start=4.0, end=4.2)
        assert recorded.duration == pytest.approx(0.2)

    def test_json_export_roundtrip(self, tracer, clock, tmp_path):
        with tracer.span("outer", kind="demo"):
            clock.t = 2.0
        path = tmp_path / "trace.json"
        tracer.dump(str(path))
        data = json.loads(path.read_text())
        assert len(data) == 1
        assert data[0]["name"] == "outer"
        assert data[0]["duration"] == 2.0
        assert data[0]["tags"] == {"kind": "demo"}

    def test_clear_keeps_id_sequence(self, tracer):
        first = tracer.span("a")
        tracer.clear()
        assert len(tracer) == 0
        second = tracer.span("b")
        assert second.span_id != first.span_id


class TestMetricsRegistry:
    def test_counters(self):
        reg = MetricsRegistry()
        assert reg.counter("x") == 0.0
        reg.inc("x")
        reg.inc("x", 2.5)
        assert reg.counter("x") == 3.5
        assert reg.counters() == {"x": 3.5}

    def test_histograms(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.observe("lat", v)
        assert reg.samples("lat") == [1.0, 2.0, 3.0]
        summary = reg.summary("lat")
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)
        assert reg.histograms() == ["lat"]

    def test_gauges_pull_at_snapshot(self):
        reg = MetricsRegistry()
        state = {"v": 1}
        reg.register_gauge("depth", lambda: state["v"])
        assert reg.gauge("depth") == 1
        state["v"] = 7
        assert reg.snapshot()["gauges"]["depth"] == 7

    def test_snapshot_shape_and_gauge_errors(self):
        reg = MetricsRegistry()
        reg.inc("n")
        reg.observe("h", 1.5)
        reg.register_gauge("broken", lambda: 1 / 0)
        snap = reg.snapshot()
        assert snap["counters"] == {"n": 1.0}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["mean"] == 1.5
        assert snap["gauges"]["broken"] is None
        json.dumps(snap)  # must be JSON-serializable

    def test_span_type_exported(self):
        # The public surface used by instrumentation sites.
        assert Span is not None
