"""The public API surface: everything exported exists and is documented."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.api",
    "repro.baselines",
    "repro.cli",
    "repro.core",
    "repro.core.calendar",
    "repro.core.gui",
    "repro.core.maintenance",
    "repro.core.planning",
    "repro.core.provisioning",
    "repro.core.reclamation",
    "repro.core.regrooming",
    "repro.ems",
    "repro.errors",
    "repro.facade",
    "repro.frontend",
    "repro.iplayer",
    "repro.legacy",
    "repro.metrics",
    "repro.obs",
    "repro.optical",
    "repro.optical.osnr",
    "repro.otn",
    "repro.pipeline",
    "repro.sim",
    "repro.topo",
    "repro.units",
    "repro.workload",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} needs a module docstring"


@pytest.mark.parametrize(
    "module_name",
    [m for m in PUBLIC_MODULES if "." in m or m == "repro"],
)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    names = exported if exported is not None else [
        n for n in dir(module) if not n.startswith("_")
    ]
    for name in names:
        obj = getattr(module, name, None)
        if obj is None or not (
            inspect.isclass(obj) or inspect.isfunction(obj)
        ):
            continue
        if getattr(obj, "__module__", "").startswith("repro"):
            assert obj.__doc__, f"{module_name}.{name} needs a docstring"


def test_error_hierarchy_rooted():
    from repro import errors

    exception_types = [
        obj
        for name, obj in vars(errors).items()
        if inspect.isclass(obj) and issubclass(obj, Exception)
    ]
    assert len(exception_types) >= 10
    for exc_type in exception_types:
        assert issubclass(exc_type, errors.GriphonError) or (
            exc_type is errors.GriphonError
        )


def test_version_matches_package_metadata():
    import repro

    assert repro.__version__.count(".") == 2
