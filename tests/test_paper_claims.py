"""The paper's headline claims, verified from the plain test suite.

The benchmarks regenerate every table and figure; this file pins the
handful of quantitative claims the paper makes in prose, so a plain
``pytest tests/`` run already certifies the reproduction:

* §3: "The establishment of a wavelength connection ranges from 60 to
  70 seconds."
* §3: "Tearing down a wavelength connection takes around 10 seconds."
* Table 2: setup time grows with ROADM path length.
* §1: provisioning today "can take several weeks"; restoration of an
  unprotected wavelength takes "4 to 12 hours typically".
* §2.1: the OTN layer cross-connects at ODU0 (1.25 Gbps) and restores
  sub-second; SONET protection switches "in less than a second".
* §2.2: 12 Gbps = one 10G wavelength + two 1G OTN circuits.
"""

import pytest

from repro.baselines import ManualOperations
from repro.core.connection import ConnectionKind, ConnectionState
from repro.facade import build_griphon_testbed
from repro.legacy.sonet import PROTECTION_SWITCH_TIME_S
from repro.sim import RandomStreams
from repro.units import HOUR, ODU_LEVELS, WEEK, gbps


@pytest.fixture(scope="module")
def measured():
    """One deterministic measurement pass on the testbed."""
    net = build_griphon_testbed(seed=7, latency_cv=0.0)
    svc = net.service_for("csp")
    wave = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
    net.run()
    setup_s = wave.setup_duration
    teardown_started = net.sim.now
    svc.teardown_connection(wave.connection_id)
    net.run()
    teardown_s = net.sim.now - teardown_started
    composite = svc.request_connection("PREMISES-A", "PREMISES-B", 12)
    net.run()
    return {
        "setup_s": setup_s,
        "teardown_s": teardown_s,
        "composite": composite,
    }


class TestSection3Claims:
    def test_establishment_60_to_70_seconds(self, measured):
        assert 58 <= measured["setup_s"] <= 72

    def test_teardown_around_ten_seconds(self, measured):
        assert 8 <= measured["teardown_s"] <= 14

    def test_orders_of_magnitude_better_than_weeks(self, measured):
        manual = ManualOperations(RandomStreams(1))
        assert manual.provisioning_time() / measured["setup_s"] > 1000

    def test_setup_grows_with_path_length(self):
        times = {}
        exclusions = {
            1: [],
            2: [("ROADM-I", "ROADM-IV")],
            3: [("ROADM-I", "ROADM-IV"), ("ROADM-I", "ROADM-III")],
        }
        from repro.sim import Process

        for hops, excluded in exclusions.items():
            net = build_griphon_testbed(seed=7, latency_cv=0.0)
            plan = net.controller.rwa.plan(
                "ROADM-I", "ROADM-IV", gbps(10), excluded_links=excluded
            )
            assert plan.hop_count == hops
            lightpath = net.controller.provisioner.claim(plan)
            Process(
                net.sim, net.controller.provisioner.setup_workflow(lightpath)
            )
            net.run()
            times[hops] = net.sim.now
        assert times[1] < times[2] < times[3]


class TestSection1Claims:
    def test_manual_restoration_4_to_12_hours(self):
        manual = ManualOperations(RandomStreams(2))
        for _ in range(10):
            assert 4 * HOUR <= manual.restoration_time() <= 12 * HOUR

    def test_manual_provisioning_weeks(self):
        manual = ManualOperations(RandomStreams(3))
        assert manual.provisioning_time() >= 2 * WEEK


class TestSection2Claims:
    def test_odu0_is_1_25_gbps(self):
        assert ODU_LEVELS["ODU0"].rate_bps == pytest.approx(1.25e9)

    def test_sonet_protection_under_a_second(self):
        assert PROTECTION_SWITCH_TIME_S < 1.0

    def test_otn_restoration_subsecond(self):
        net = build_griphon_testbed(seed=9, latency_cv=0.0)
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 1)
        net.run()
        circuit = net.inventory.circuits[conn.circuit_ids[0]]
        line = net.inventory.otn_lines[circuit.line_ids[0]]
        lightpath = net.inventory.lightpaths[
            net.controller._line_lightpath[line.line_id]
        ]
        net.controller.cut_link(lightpath.path[0], lightpath.path[1])
        net.run()
        assert 0 < conn.total_outage_s < 1.0

    def test_twelve_gig_composite_decomposition(self, measured):
        composite = measured["composite"]
        assert composite.state is ConnectionState.UP
        assert composite.kind is ConnectionKind.COMPOSITE
        assert len(composite.lightpath_ids) == 1
        assert len(composite.circuit_ids) == 2
