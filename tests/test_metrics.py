"""Tests for the metrics collector and summary statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import MetricsCollector, summarize


class TestSummarize:
    def test_single_sample(self):
        summary = summarize([5.0])
        assert summary.count == 1
        assert summary.mean == summary.p50 == summary.p95 == 5.0

    def test_known_values(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.mean == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.p50 == 3.0

    def test_p95_interpolates(self):
        summary = summarize(list(map(float, range(1, 101))))
        assert summary.p95 == pytest.approx(95.05)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_format(self):
        text = str(summarize([1.0, 2.0]))
        assert "n=2" in text
        assert "mean=1.5" in text

    @given(
        samples=st.lists(
            st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100
        )
    )
    def test_invariants(self, samples):
        summary = summarize(samples)
        assert summary.minimum <= summary.p50 <= summary.p95 <= summary.maximum
        # Mean can drift past the extremes by float rounding only.
        tolerance = 1e-9 * max(1.0, abs(summary.maximum), abs(summary.minimum))
        assert summary.minimum - tolerance <= summary.mean
        assert summary.mean <= summary.maximum + tolerance
        assert summary.count == len(samples)


class TestCollector:
    def test_counters(self):
        metrics = MetricsCollector()
        metrics.count("requests")
        metrics.count("requests", 2)
        assert metrics.counter("requests") == 3
        assert metrics.counter("never") == 0

    def test_series(self):
        metrics = MetricsCollector()
        metrics.record("setup", 62.0)
        metrics.record("setup", 66.0)
        assert metrics.samples("setup") == [62.0, 66.0]
        assert metrics.summary("setup").mean == 64.0

    def test_summary_of_empty_series(self):
        with pytest.raises(ValueError):
            MetricsCollector().summary("nothing")

    def test_samples_returns_copy(self):
        metrics = MetricsCollector()
        metrics.record("x", 1.0)
        metrics.samples("x").append(99.0)
        assert metrics.samples("x") == [1.0]

    def test_names(self):
        metrics = MetricsCollector()
        metrics.count("a")
        metrics.record("b", 1.0)
        assert metrics.names() == {"a": "counter", "b": "series"}
