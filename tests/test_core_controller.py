"""Integration tests for the GRIPhoN controller on the Fig. 4 testbed."""

import pytest

from repro.core.connection import ConnectionKind, ConnectionState
from repro.errors import ResourceError
from repro.facade import build_griphon_testbed
from repro.optical import LightpathState
from repro.units import MINUTE, WEEK, gbps


@pytest.fixture
def net():
    """Deterministic testbed network."""
    return build_griphon_testbed(seed=1, latency_cv=0.0)


@pytest.fixture
def svc(net):
    return net.service_for("csp-alpha")


def bring_up(net, svc, a="PREMISES-A", b="PREMISES-C", rate=10, kind=None):
    conn = svc.request_connection(a, b, rate_gbps=rate, kind=kind)
    net.run()
    return conn


class TestWavelengthOrders:
    def test_setup_in_about_a_minute(self, net, svc):
        conn = bring_up(net, svc)
        assert conn.state is ConnectionState.UP
        assert conn.kind is ConnectionKind.WAVELENGTH
        assert 55 <= conn.setup_duration <= 75
        assert conn.setup_duration < 5 * MINUTE < WEEK

    def test_one_lightpath_allocated(self, net, svc):
        conn = bring_up(net, svc)
        assert len(conn.lightpath_ids) == 1
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        assert lightpath.state is LightpathState.UP
        assert lightpath.rate_bps == gbps(10)

    def test_nte_interfaces_claimed_both_ends(self, net, svc):
        conn = bring_up(net, svc)
        assert len(conn.nte_interfaces) == 2
        for kind, premises, index in conn.nte_interfaces:
            assert kind == "wave"
            nte = net.inventory.ntes[premises]
            assert nte.owner_of(index) == conn.connection_id

    def test_teardown_about_ten_seconds(self, net, svc):
        conn = bring_up(net, svc)
        start = net.sim.now
        svc.teardown_connection(conn.connection_id)
        net.run()
        assert conn.state is ConnectionState.RELEASED
        assert 8 <= net.sim.now - start <= 15
        assert conn.lightpath_ids[0] not in net.inventory.lightpaths

    def test_forty_gig_wavelength(self, net, svc):
        conn = bring_up(net, svc, rate=40)
        assert conn.kind is ConnectionKind.WAVELENGTH
        assert conn.state is ConnectionState.UP

    def test_concurrent_orders_get_distinct_channels(self, net, svc):
        first = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        second = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        assert first.state is second.state is ConnectionState.UP
        lp1 = net.inventory.lightpaths[first.lightpath_ids[0]]
        lp2 = net.inventory.lightpaths[second.lightpath_ids[0]]
        if lp1.path == lp2.path:
            assert lp1.channels != lp2.channels


class TestSubWavelengthAndComposite:
    def test_one_gig_is_subwavelength(self, net, svc):
        conn = bring_up(net, svc, rate=1)
        assert conn.kind is ConnectionKind.SUBWAVELENGTH
        assert len(conn.circuit_ids) == 1
        assert not conn.lightpath_ids

    def test_subwavelength_faster_than_wavelength_once_lines_exist(
        self, net, svc
    ):
        # First 1G order stands up an OTN line (costs a wavelength setup).
        bring_up(net, svc, rate=1)
        start = net.sim.now
        second = svc.request_connection("PREMISES-A", "PREMISES-C", 1)
        net.run()
        assert second.state is ConnectionState.UP
        # Electronic-only reconfiguration: a few seconds, not a minute.
        assert net.sim.now - start < 10

    def test_paper_example_12g_composite(self, net, svc):
        """12G = one 10G wavelength + two 1G OTN circuits (paper §2.2)."""
        conn = bring_up(net, svc, rate=12)
        assert conn.kind is ConnectionKind.COMPOSITE
        assert len(conn.lightpath_ids) == 1
        assert len(conn.circuit_ids) == 2

    def test_forced_wavelength_kind(self, net, svc):
        conn = bring_up(net, svc, rate=3, kind=ConnectionKind.WAVELENGTH)
        assert conn.kind is ConnectionKind.WAVELENGTH
        assert not conn.circuit_ids

    def test_forced_subwavelength_kind(self, net, svc):
        conn = bring_up(net, svc, rate=3, kind=ConnectionKind.SUBWAVELENGTH)
        assert conn.kind is ConnectionKind.SUBWAVELENGTH
        assert len(conn.circuit_ids) == 3

    def test_composite_teardown_releases_all(self, net, svc):
        conn = bring_up(net, svc, rate=12)
        svc.teardown_connection(conn.connection_id)
        net.run()
        assert conn.state is ConnectionState.RELEASED
        assert all(c not in net.inventory.circuits for c in conn.circuit_ids)


class TestBlocking:
    def test_quota_block(self, net):
        svc = net.service_for("csp-tiny", max_connections=1)
        first = bring_up(net, svc)
        second = svc.request_connection("PREMISES-A", "PREMISES-B", 10)
        assert second.state is ConnectionState.BLOCKED
        assert "quota" in second.blocked_reason
        assert first.state is ConnectionState.UP

    def test_resource_block_returns_quota(self, net):
        svc = net.service_for("csp-big", max_connections=64,
                              max_total_rate_gbps=10000)
        blocked = None
        for _ in range(40):
            conn = bring_up(net, svc, rate=10)
            if conn.state is ConnectionState.BLOCKED:
                blocked = conn
                break
        assert blocked is not None
        assert blocked.blocked_reason
        # Quota was refunded, so usage equals only the UP connections.
        ups = [
            c
            for c in svc.connections()
            if c.state is ConnectionState.UP
        ]
        assert svc.usage()["connections"] == len(ups)

    def test_unknown_connection(self, net):
        with pytest.raises(ResourceError):
            net.controller.connection("conn-999")


class TestRestoration:
    def test_fiber_cut_restores_in_about_a_minute(self, net, svc):
        conn = bring_up(net, svc)
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        a, b = lightpath.path[0], lightpath.path[1]
        cut_at = net.sim.now
        net.controller.cut_link(a, b)
        net.run()
        assert conn.state is ConnectionState.UP
        assert 30 <= conn.total_outage_s <= 120
        new_lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        assert new_lightpath.path != lightpath.path

    def test_restoration_avoids_failed_links(self, net, svc):
        conn = bring_up(net, svc)
        net.controller.cut_link("ROADM-I", "ROADM-IV")
        net.run()
        new_lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        keys = [
            tuple(sorted(pair))
            for pair in zip(new_lightpath.path, new_lightpath.path[1:])
        ]
        assert ("ROADM-I", "ROADM-IV") not in keys

    def test_no_restore_when_disabled(self):
        net = build_griphon_testbed(seed=1, latency_cv=0.0, auto_restore=False)
        svc = net.service_for("csp")
        conn = bring_up(net, svc)
        net.controller.cut_link("ROADM-I", "ROADM-IV")
        net.run()
        assert conn.state is ConnectionState.FAILED

    def test_repair_triggers_retry(self, net, svc):
        conn = bring_up(net, svc)
        # Cut every route so restoration blocks...
        net.controller.cut_link("ROADM-I", "ROADM-IV")
        net.controller.cut_link("ROADM-I", "ROADM-III")
        net.controller.cut_link("ROADM-I", "ROADM-II")
        net.run()
        assert conn.state is ConnectionState.FAILED
        # ...then repair one route and watch it come back.
        net.controller.repair_link("ROADM-I", "ROADM-III")
        net.run()
        assert conn.state is ConnectionState.UP

    def test_outage_far_shorter_than_manual_repair(self, net, svc):
        """Table 1: automated restoration vs 4-12 h manual outage."""
        conn = bring_up(net, svc)
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        net.controller.cut_link(lightpath.path[0], lightpath.path[1])
        net.run()
        assert conn.total_outage_s < (4 * 3600) / 100

    def test_subwavelength_restores_subsecond(self, net, svc):
        conn = bring_up(net, svc, rate=1)
        circuit = net.inventory.circuits[conn.circuit_ids[0]]
        line = net.inventory.otn_lines[circuit.line_ids[0]]
        lightpath_id = net.controller._line_lightpath[line.line_id]
        lightpath = net.inventory.lightpaths[lightpath_id]
        net.controller.cut_link(lightpath.path[0], lightpath.path[1])
        net.run()
        assert conn.total_outage_s < 1.0


class TestBridgeAndRoll:
    def test_hit_is_milliseconds(self, net, svc):
        conn = bring_up(net, svc)
        results = []
        net.controller.bridge_and_roll(conn.connection_id, on_done=results.append)
        net.run()
        assert len(results) == 1
        assert results[0]["hit_s"] == pytest.approx(0.050)
        assert conn.total_outage_s == pytest.approx(0.050)
        assert conn.state is ConnectionState.UP

    def test_new_path_is_disjoint(self, net, svc):
        conn = bring_up(net, svc)
        old = net.inventory.lightpaths[conn.lightpath_ids[0]]
        old_links = set(
            tuple(sorted(pair)) for pair in zip(old.path, old.path[1:])
        )
        results = []
        net.controller.bridge_and_roll(conn.connection_id, on_done=results.append)
        net.run()
        new_path = results[0]["new_path"]
        new_links = set(
            tuple(sorted(pair)) for pair in zip(new_path, new_path[1:])
        )
        assert not (old_links & new_links)

    def test_old_lightpath_released(self, net, svc):
        conn = bring_up(net, svc)
        old_id = conn.lightpath_ids[0]
        net.controller.bridge_and_roll(conn.connection_id)
        net.run()
        assert old_id not in net.inventory.lightpaths
        assert conn.lightpath_ids[0] != old_id

    def test_rejects_non_up_connection(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        with pytest.raises(ResourceError):
            net.controller.bridge_and_roll(conn.connection_id)

    def test_rejects_subwavelength(self, net, svc):
        conn = bring_up(net, svc, rate=1)
        with pytest.raises(ResourceError):
            net.controller.bridge_and_roll(conn.connection_id)


class TestObservers:
    def test_events_emitted(self, net, svc):
        events = []
        net.controller.observers.append(lambda name, payload: events.append(name))
        conn = bring_up(net, svc)
        net.controller.cut_link("ROADM-I", "ROADM-IV")
        net.run()
        assert "up" in events
        assert "fiber-cut" in events
