"""Tests for ODU circuits and shared-mesh restoration."""

import pytest

from repro.errors import (
    CapacityExceededError,
    ConfigurationError,
    ConnectionStateError,
    ResourceError,
)
from repro.otn import OduCircuit, OduCircuitState, OtnLine, SharedMeshProtection
from repro.units import ODU_LEVELS


def make_circuit(cid, path, backup, level="ODU0"):
    return OduCircuit(
        cid, ODU_LEVELS[level], list(path), backup_path=list(backup)
    )


@pytest.fixture
def mesh():
    """A square A-B-C-D-A managed by shared-mesh protection.

    Working circuits go A-B-C; backup goes A-D-C.
    """
    protection = SharedMeshProtection()
    for line_id, a, b in (
        ("L:A=B", "A", "B"),
        ("L:B=C", "B", "C"),
        ("L:A=D", "A", "D"),
        ("L:C=D", "C", "D"),
    ):
        protection.add_line(OtnLine(line_id, a, b))
    return protection


class TestCircuitStateMachine:
    def test_lifecycle(self):
        ckt = make_circuit("c1", ["A", "B"], ["A", "D", "B"])
        ckt.transition(OduCircuitState.SETTING_UP)
        ckt.transition(OduCircuitState.UP)
        ckt.transition(OduCircuitState.ON_BACKUP)
        ckt.transition(OduCircuitState.UP)
        ckt.transition(OduCircuitState.RELEASED)

    def test_illegal_transition(self):
        ckt = make_circuit("c1", ["A", "B"], ["A", "D", "B"])
        with pytest.raises(ConnectionStateError):
            ckt.transition(OduCircuitState.ON_BACKUP)

    def test_active_path_switches_with_state(self):
        ckt = make_circuit("c1", ["A", "B", "C"], ["A", "D", "C"])
        ckt.transition(OduCircuitState.SETTING_UP)
        ckt.transition(OduCircuitState.UP)
        assert ckt.active_path == ["A", "B", "C"]
        ckt.transition(OduCircuitState.ON_BACKUP)
        assert ckt.active_path == ["A", "D", "C"]

    def test_slots_needed_tracks_level(self):
        odu1 = make_circuit("c1", ["A", "B"], ["A", "D", "B"], level="ODU1")
        assert odu1.slots_needed == 2

    def test_str_mentions_level(self):
        ckt = make_circuit("c1", ["A", "B"], ["A", "D", "B"])
        assert "ODU0" in str(ckt)


class TestRegistration:
    def test_register_reserves_capacity(self, mesh):
        ckt = make_circuit("c1", ["A", "B", "C"], ["A", "D", "C"])
        mesh.register(ckt, ["L:A=D", "L:C=D"])
        assert mesh.reserved_slots("L:A=D") == 1
        assert mesh.reserved_slots("L:B=C") == 0

    def test_register_requires_backup_path(self, mesh):
        ckt = OduCircuit("c1", ODU_LEVELS["ODU0"], ["A", "B"])
        with pytest.raises(ConfigurationError):
            mesh.register(ckt, [])

    def test_register_rejects_wrong_line_count(self, mesh):
        ckt = make_circuit("c1", ["A", "B", "C"], ["A", "D", "C"])
        with pytest.raises(ConfigurationError):
            mesh.register(ckt, ["L:A=D"])

    def test_register_rejects_shared_links(self, mesh):
        ckt = make_circuit("c1", ["A", "B", "C"], ["A", "B", "C"])
        with pytest.raises(ConfigurationError):
            mesh.register(ckt, ["L:A=B", "L:B=C"])

    def test_register_rejects_duplicates(self, mesh):
        ckt = make_circuit("c1", ["A", "B", "C"], ["A", "D", "C"])
        mesh.register(ckt, ["L:A=D", "L:C=D"])
        with pytest.raises(ConfigurationError):
            mesh.register(ckt, ["L:A=D", "L:C=D"])

    def test_disjoint_working_paths_share_backup(self):
        """Two circuits that cannot fail together share reservations."""
        protection = SharedMeshProtection()
        shared = OtnLine("L:X=Y", "X", "Y")
        protection.add_line(shared)
        a = OduCircuit(
            "a", ODU_LEVELS["ODU2"], ["X", "P", "Y"], backup_path=["X", "Y"]
        )
        b = OduCircuit(
            "b", ODU_LEVELS["ODU2"], ["X", "Q", "Y"], backup_path=["X", "Y"]
        )
        protection.register(a, ["L:X=Y"])
        protection.register(b, ["L:X=Y"])
        # Each needs all 8 slots, but their working paths are disjoint, so
        # the worst single-failure reservation is 8, not 16.
        assert protection.reserved_slots("L:X=Y") == 8

    def test_overlapping_working_paths_cannot_oversubscribe(self):
        protection = SharedMeshProtection()
        protection.add_line(OtnLine("L:X=Y", "X", "Y"))
        a = OduCircuit(
            "a", ODU_LEVELS["ODU2"], ["X", "P", "Y"], backup_path=["X", "Y"]
        )
        b = OduCircuit(
            "b", ODU_LEVELS["ODU2"], ["X", "P", "Y"], backup_path=["X", "Y"]
        )
        protection.register(a, ["L:X=Y"])
        with pytest.raises(CapacityExceededError):
            protection.register(b, ["L:X=Y"])

    def test_unregister_releases_reservation(self, mesh):
        ckt = make_circuit("c1", ["A", "B", "C"], ["A", "D", "C"])
        mesh.register(ckt, ["L:A=D", "L:C=D"])
        mesh.unregister("c1")
        assert mesh.reserved_slots("L:A=D") == 0

    def test_unregister_unknown(self, mesh):
        with pytest.raises(ResourceError):
            mesh.unregister("ghost")

    def test_duplicate_line_rejected(self, mesh):
        with pytest.raises(ConfigurationError):
            mesh.add_line(OtnLine("L:A=B", "A", "B"))


class TestRestoration:
    def setup_circuit(self, mesh):
        ckt = make_circuit("c1", ["A", "B", "C"], ["A", "D", "C"])
        ckt.transition(OduCircuitState.SETTING_UP)
        ckt.transition(OduCircuitState.UP)
        mesh.register(ckt, ["L:A=D", "L:C=D"])
        return ckt

    def test_circuits_hit_by_failure(self, mesh):
        ckt = self.setup_circuit(mesh)
        assert mesh.circuits_hit_by(("A", "B")) == [ckt]
        assert mesh.circuits_hit_by(("B", "A")) == [ckt]
        assert mesh.circuits_hit_by(("A", "D")) == []

    def test_restore_is_subsecond(self, mesh):
        ckt = self.setup_circuit(mesh)
        duration = mesh.restore("c1")
        assert 0 < duration < 1.0
        assert ckt.state is OduCircuitState.ON_BACKUP
        assert ckt.backup_line_ids == ["L:A=D", "L:C=D"]

    def test_restore_allocates_real_slots(self, mesh):
        self.setup_circuit(mesh)
        mesh.restore("c1")
        assert mesh.line("L:A=D").owner_of(0) == "c1"
        assert mesh.line("L:C=D").owner_of(0) == "c1"

    def test_restore_unknown_circuit(self, mesh):
        with pytest.raises(ResourceError):
            mesh.restore("ghost")

    def test_revert_frees_backup_slots(self, mesh):
        ckt = self.setup_circuit(mesh)
        mesh.restore("c1")
        mesh.revert("c1")
        assert ckt.state is OduCircuitState.UP
        assert mesh.line("L:A=D").free_slot_count() == 8

    def test_revert_requires_on_backup(self, mesh):
        self.setup_circuit(mesh)
        with pytest.raises(ResourceError):
            mesh.revert("c1")

    def test_partial_restore_rolls_back(self, mesh):
        """A double failure mid-restore must not leak backup slots.

        If the second backup hop is down, the slots grabbed on the first
        hop must be returned (regression test for a leak found by the
        random-operations property test).
        """
        ckt = self.setup_circuit(mesh)
        mesh.line("L:C=D").fail()  # second backup hop is dead
        with pytest.raises((CapacityExceededError, ResourceError)):
            mesh.restore("c1")
        assert mesh.line("L:A=D").free_slot_count() == 8
        assert ckt.backup_line_ids == []

    def test_restore_time_scales_with_hops(self):
        protection = SharedMeshProtection()
        for i in range(6):
            protection.add_line(OtnLine(f"L{i}", f"N{i}", f"N{i + 1}"))
        protection.add_line(OtnLine("SHORT", "N0", "N6"))
        long_backup = OduCircuit(
            "long",
            ODU_LEVELS["ODU0"],
            ["N0", "N6"],
            backup_path=[f"N{i}" for i in range(7)],
        )
        long_backup.transition(OduCircuitState.SETTING_UP)
        long_backup.transition(OduCircuitState.UP)
        protection.register(long_backup, [f"L{i}" for i in range(6)])
        short = OduCircuit(
            "short",
            ODU_LEVELS["ODU0"],
            ["N0", "N3", "N6"],
            backup_path=["N0", "N6"],
        )
        short.transition(OduCircuitState.SETTING_UP)
        short.transition(OduCircuitState.UP)
        # Working path links don't exist as lines; that's fine — only the
        # backup lines must be managed.
        protection.register(short, ["SHORT"])
        assert protection.restore("long") > protection.restore("short")
