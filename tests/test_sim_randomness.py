"""Tests for the named random substreams."""

import statistics

import pytest

from repro.sim import RandomStreams


class TestStreamIdentity:
    def test_same_name_same_stream(self):
        streams = RandomStreams(7)
        assert streams.stream("ems") is streams.stream("ems")

    def test_reproducible_across_instances(self):
        a = RandomStreams(7).stream("ems").random()
        b = RandomStreams(7).stream("ems").random()
        assert a == b

    def test_different_names_diverge(self):
        streams = RandomStreams(7)
        a = [streams.stream("ems").random() for _ in range(5)]
        b = [streams.stream("workload").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_diverge(self):
        a = RandomStreams(1).stream("ems").random()
        b = RandomStreams(2).stream("ems").random()
        assert a != b

    def test_streams_are_independent(self):
        """Drawing from one stream must not perturb another."""
        solo = RandomStreams(3)
        expected = [solo.stream("a").random() for _ in range(5)]

        mixed = RandomStreams(3)
        got = []
        for _ in range(5):
            mixed.stream("noise").random()
            got.append(mixed.stream("a").random())
        assert got == expected


class TestDistributions:
    def test_lognormal_zero_cv_is_deterministic(self):
        streams = RandomStreams(0)
        assert streams.lognormal("x", mean=5.0, cv=0.0) == 5.0

    def test_lognormal_mean_converges(self):
        streams = RandomStreams(11)
        samples = [streams.lognormal("x", mean=10.0, cv=0.2) for _ in range(4000)]
        assert statistics.fmean(samples) == pytest.approx(10.0, rel=0.05)

    def test_lognormal_samples_positive(self):
        streams = RandomStreams(11)
        assert all(
            streams.lognormal("x", mean=1.0, cv=1.0) > 0 for _ in range(200)
        )

    def test_lognormal_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            RandomStreams(0).lognormal("x", mean=0.0, cv=0.1)

    def test_lognormal_rejects_negative_cv(self):
        with pytest.raises(ValueError):
            RandomStreams(0).lognormal("x", mean=1.0, cv=-0.1)

    def test_exponential_mean_converges(self):
        streams = RandomStreams(13)
        samples = [streams.exponential("x", mean=4.0) for _ in range(4000)]
        assert statistics.fmean(samples) == pytest.approx(4.0, rel=0.08)

    def test_exponential_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            RandomStreams(0).exponential("x", mean=-1.0)

    def test_uniform_respects_bounds(self):
        streams = RandomStreams(17)
        for _ in range(100):
            value = streams.uniform("x", 2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            RandomStreams(0).uniform("x", 3.0, 2.0)

    def test_pareto_exceeds_scale(self):
        streams = RandomStreams(19)
        assert all(
            streams.pareto("x", shape=2.0, scale=5.0) >= 5.0 for _ in range(200)
        )

    def test_pareto_rejects_bad_params(self):
        with pytest.raises(ValueError):
            RandomStreams(0).pareto("x", shape=0.0, scale=1.0)

    def test_choice_uniform_coverage(self):
        streams = RandomStreams(23)
        options = ["a", "b", "c"]
        picks = {streams.choice("x", options) for _ in range(200)}
        assert picks == set(options)

    def test_choice_rejects_empty(self):
        with pytest.raises(ValueError):
            RandomStreams(0).choice("x", [])
