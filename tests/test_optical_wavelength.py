"""Tests for the ITU wavelength grid."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.optical import WavelengthGrid


class TestGridBasics:
    def test_default_size(self):
        assert len(WavelengthGrid()) == 80

    def test_custom_size(self):
        assert WavelengthGrid(40).size == 40

    def test_rejects_empty_grid(self):
        with pytest.raises(ConfigurationError):
            WavelengthGrid(0)

    def test_channels_iterates_all(self):
        assert list(WavelengthGrid(4).channels()) == [0, 1, 2, 3]

    def test_contains(self):
        grid = WavelengthGrid(10)
        assert 0 in grid
        assert 9 in grid
        assert 10 not in grid
        assert -1 not in grid
        assert "ch0" not in grid

    def test_validate_passes_through(self):
        assert WavelengthGrid(10).validate(5) == 5

    def test_validate_rejects_off_grid(self):
        grid = WavelengthGrid(10)
        with pytest.raises(ConfigurationError):
            grid.validate(10)
        with pytest.raises(ConfigurationError):
            grid.validate(-1)


class TestFrequencies:
    def test_anchor_channel(self):
        assert WavelengthGrid().frequency_thz(0) == pytest.approx(193.1)

    def test_fifty_ghz_spacing(self):
        grid = WavelengthGrid()
        assert grid.frequency_thz(1) - grid.frequency_thz(0) == pytest.approx(0.05)

    def test_wavelength_in_c_band(self):
        grid = WavelengthGrid(80)
        for channel in (0, 40, 79):
            assert 1520 <= grid.wavelength_nm(channel) <= 1565

    def test_wavelength_decreases_with_frequency(self):
        grid = WavelengthGrid()
        assert grid.wavelength_nm(1) < grid.wavelength_nm(0)

    def test_channel_name_format(self):
        name = WavelengthGrid().channel_name(12)
        assert name.startswith("ch012 (")
        assert name.endswith(" nm)")

    @given(channel=st.integers(min_value=0, max_value=79))
    def test_frequency_wavelength_roundtrip(self, channel):
        grid = WavelengthGrid(80)
        freq = grid.frequency_thz(channel)
        nm = grid.wavelength_nm(channel)
        assert freq * nm == pytest.approx(299_792.458, rel=1e-9)
