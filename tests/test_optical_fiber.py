"""Tests for DWDM link occupancy and the fiber plant."""

import pytest

from repro.errors import ResourceError, TopologyError, WavelengthBlockedError
from repro.optical import DwdmLink, FiberPlant, WavelengthGrid
from repro.topo import Link, NetworkGraph, Node
from repro.topo.testbed import build_testbed_graph


@pytest.fixture
def grid():
    return WavelengthGrid(8)


@pytest.fixture
def dwdm(grid):
    return DwdmLink(Link("A", "B", length_km=100.0), grid)


@pytest.fixture
def plant():
    return FiberPlant(build_testbed_graph(), WavelengthGrid(8))


class TestDwdmLink:
    def test_all_channels_free_initially(self, dwdm, grid):
        assert dwdm.free_channels() == set(range(8))
        assert dwdm.utilization() == 0.0

    def test_occupy_and_owner(self, dwdm):
        dwdm.occupy(3, "lp-1")
        assert dwdm.owner_of(3) == "lp-1"
        assert 3 not in dwdm.free_channels()
        assert dwdm.occupied_channels == {3}

    def test_double_occupy_blocked(self, dwdm):
        dwdm.occupy(3, "lp-1")
        with pytest.raises(WavelengthBlockedError):
            dwdm.occupy(3, "lp-2")

    def test_release_requires_owner_match(self, dwdm):
        dwdm.occupy(3, "lp-1")
        with pytest.raises(ResourceError):
            dwdm.release(3, "lp-2")
        dwdm.release(3, "lp-1")
        assert dwdm.owner_of(3) is None

    def test_release_dark_channel_rejected(self, dwdm):
        with pytest.raises(ResourceError):
            dwdm.release(0, "lp-1")

    def test_fail_reports_affected_owners(self, dwdm):
        dwdm.occupy(1, "lp-1")
        dwdm.occupy(2, "lp-2")
        assert dwdm.fail() == {"lp-1", "lp-2"}
        assert dwdm.failed

    def test_failed_link_rejects_new_channels(self, dwdm):
        dwdm.fail()
        with pytest.raises(ResourceError):
            dwdm.occupy(0, "lp-1")

    def test_repair_restores_service(self, dwdm):
        dwdm.fail()
        dwdm.repair()
        dwdm.occupy(0, "lp-1")
        assert dwdm.owner_of(0) == "lp-1"

    def test_occupancy_survives_failure(self, dwdm):
        """Restoration logic needs to see what was riding a cut link."""
        dwdm.occupy(5, "lp-1")
        dwdm.fail()
        assert dwdm.owner_of(5) == "lp-1"

    def test_utilization(self, dwdm):
        dwdm.occupy(0, "a")
        dwdm.occupy(1, "b")
        assert dwdm.utilization() == pytest.approx(2 / 8)


class TestFiberPlant:
    def test_link_lookup_either_order(self, plant):
        a = plant.dwdm_link("ROADM-I", "ROADM-IV")
        b = plant.dwdm_link("ROADM-IV", "ROADM-I")
        assert a is b

    def test_unknown_link_rejected(self, plant):
        with pytest.raises(TopologyError):
            plant.dwdm_link("ROADM-II", "ROADM-IV")

    def test_common_free_channels_intersection(self, plant):
        path = ["ROADM-I", "ROADM-III", "ROADM-IV"]
        plant.dwdm_link("ROADM-I", "ROADM-III").occupy(0, "x")
        plant.dwdm_link("ROADM-III", "ROADM-IV").occupy(1, "y")
        free = plant.common_free_channels(path)
        assert 0 not in free
        assert 1 not in free
        assert 2 in free

    def test_common_free_channels_trivial_path(self, plant):
        assert plant.common_free_channels(["ROADM-I"]) == set(range(8))

    def test_path_is_up(self, plant):
        path = ["ROADM-I", "ROADM-III", "ROADM-IV"]
        assert plant.path_is_up(path)
        plant.cut_link("ROADM-I", "ROADM-III")
        assert not plant.path_is_up(path)

    def test_cut_link_notifies_callbacks(self, plant):
        observed = []
        plant.on_failure.append(lambda key, owners: observed.append((key, owners)))
        plant.dwdm_link("ROADM-I", "ROADM-IV").occupy(0, "lp-9")
        affected = plant.cut_link("ROADM-I", "ROADM-IV")
        assert affected == {"lp-9"}
        assert observed == [(("ROADM-I", "ROADM-IV"), {"lp-9"})]

    def test_cut_and_repair_srlg(self, plant):
        srlg = "srlg:ROADM-I=ROADM-IV"
        plant.cut_srlg(srlg)
        assert ("ROADM-I", "ROADM-IV") in plant.failed_links()
        plant.repair_srlg(srlg)
        assert plant.failed_links() == []

    def test_unknown_srlg_rejected(self, plant):
        with pytest.raises(TopologyError):
            plant.cut_srlg("srlg:ghost")
        with pytest.raises(TopologyError):
            plant.repair_srlg("srlg:ghost")

    def test_shared_conduit_cut_fails_multiple_links(self):
        graph = NetworkGraph()
        for name in "ABC":
            graph.add_node(Node(name))
        graph.add_link(Link("A", "B", srlgs=frozenset({"conduit"})))
        graph.add_link(Link("B", "C", srlgs=frozenset({"conduit"})))
        plant = FiberPlant(graph, WavelengthGrid(4))
        plant.cut_srlg("conduit")
        assert len(plant.failed_links()) == 2
