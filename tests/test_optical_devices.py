"""Tests for transponders, regens, FXCs, muxponders, and NTEs."""

import pytest

from repro.errors import (
    CapacityExceededError,
    ConfigurationError,
    EquipmentError,
    SignalError,
    TransponderUnavailableError,
)
from repro.optical import (
    FiberCrossConnect,
    LowSpeedMux,
    Muxponder,
    NetworkTerminatingEquipment,
    RegenPool,
    TransponderPool,
    WavelengthGrid,
)
from repro.units import gbps


@pytest.fixture
def grid():
    return WavelengthGrid(8)


class TestTransponder:
    def test_install_and_allocate(self, grid):
        pool = TransponderPool("ROADM-I", grid)
        pool.install(gbps(10), count=2)
        ot = pool.allocate(gbps(10), "lp-1")
        assert ot.in_use
        assert ot.owner == "lp-1"
        assert len(pool.free(gbps(10))) == 1

    def test_tune_requires_allocation(self, grid):
        pool = TransponderPool("ROADM-I", grid)
        ot = pool.install(gbps(10))[0]
        with pytest.raises(SignalError):
            ot.tune(3)

    def test_tune_and_release_detunes(self, grid):
        pool = TransponderPool("ROADM-I", grid)
        ot = pool.install(gbps(10))[0]
        ot.allocate("lp-1")
        ot.tune(3)
        assert ot.channel == 3
        ot.release("lp-1")
        assert ot.channel is None
        assert not ot.in_use

    def test_tune_rejects_off_grid(self, grid):
        pool = TransponderPool("ROADM-I", grid)
        ot = pool.install(gbps(10))[0]
        ot.allocate("lp-1")
        with pytest.raises(ConfigurationError):
            ot.tune(99)

    def test_double_allocate_rejected(self, grid):
        pool = TransponderPool("ROADM-I", grid)
        ot = pool.install(gbps(10))[0]
        ot.allocate("lp-1")
        with pytest.raises(TransponderUnavailableError):
            ot.allocate("lp-2")

    def test_release_owner_mismatch(self, grid):
        pool = TransponderPool("ROADM-I", grid)
        ot = pool.install(gbps(10))[0]
        ot.allocate("lp-1")
        with pytest.raises(TransponderUnavailableError):
            ot.release("lp-2")

    def test_pool_exhaustion(self, grid):
        pool = TransponderPool("ROADM-I", grid)
        pool.install(gbps(10), count=1)
        pool.allocate(gbps(10), "lp-1")
        with pytest.raises(TransponderUnavailableError):
            pool.allocate(gbps(10), "lp-2")

    def test_pool_rate_segregation(self, grid):
        pool = TransponderPool("ROADM-I", grid)
        pool.install(gbps(10), count=1)
        pool.install(gbps(40), count=1)
        with pytest.raises(TransponderUnavailableError):
            pool.allocate(gbps(100), "lp-1")
        assert pool.allocate(gbps(40), "lp-1").line_rate_bps == gbps(40)

    def test_pool_utilization(self, grid):
        pool = TransponderPool("ROADM-I", grid)
        pool.install(gbps(10), count=4)
        pool.allocate(gbps(10), "lp-1")
        assert pool.utilization(gbps(10)) == pytest.approx(0.25)
        assert pool.utilization(gbps(40)) == 0.0

    def test_pool_get_unknown(self, grid):
        pool = TransponderPool("ROADM-I", grid)
        with pytest.raises(TransponderUnavailableError):
            pool.get("OT:ghost:0")

    def test_ids_are_unique(self, grid):
        pool = TransponderPool("ROADM-I", grid)
        ots = pool.install(gbps(10), count=5)
        assert len({ot.ot_id for ot in ots}) == 5


class TestRegen:
    def test_allocate_release_cycle(self):
        pool = RegenPool("CHI")
        pool.install(gbps(40), count=2)
        regen = pool.allocate(gbps(40), "lp-1")
        assert regen.in_use
        regen.release("lp-1")
        assert len(pool.free(gbps(40))) == 2

    def test_exhaustion(self):
        pool = RegenPool("CHI")
        pool.install(gbps(10), count=1)
        pool.allocate(gbps(10), "lp-1")
        with pytest.raises(TransponderUnavailableError):
            pool.allocate(gbps(10), "lp-2")

    def test_release_owner_mismatch(self):
        pool = RegenPool("CHI")
        regen = pool.install(gbps(10))[0]
        regen.allocate("lp-1")
        with pytest.raises(TransponderUnavailableError):
            regen.release("lp-2")


class TestFxc:
    def test_connect_and_peer(self):
        fxc = FiberCrossConnect("FXC:1", 8)
        fxc.connect(0, 5, "conn-1")
        assert fxc.peer_of(0) == 5
        assert fxc.peer_of(5) == 0

    def test_minimum_ports(self):
        with pytest.raises(ConfigurationError):
            FiberCrossConnect("FXC:1", 1)

    def test_self_connect_rejected(self):
        fxc = FiberCrossConnect("FXC:1", 4)
        with pytest.raises(EquipmentError):
            fxc.connect(2, 2, "conn-1")

    def test_busy_port_rejected(self):
        fxc = FiberCrossConnect("FXC:1", 4)
        fxc.connect(0, 1, "conn-1")
        with pytest.raises(EquipmentError):
            fxc.connect(1, 2, "conn-2")

    def test_disconnect_by_either_port(self):
        fxc = FiberCrossConnect("FXC:1", 4)
        fxc.connect(0, 1, "conn-1")
        fxc.disconnect(1, "conn-1")
        assert fxc.peer_of(0) is None
        assert fxc.free_ports() == [0, 1, 2, 3]

    def test_disconnect_owner_mismatch(self):
        fxc = FiberCrossConnect("FXC:1", 4)
        fxc.connect(0, 1, "conn-1")
        with pytest.raises(EquipmentError):
            fxc.disconnect(0, "conn-2")

    def test_disconnect_idle_rejected(self):
        fxc = FiberCrossConnect("FXC:1", 4)
        with pytest.raises(EquipmentError):
            fxc.disconnect(0, "conn-1")

    def test_unknown_port_rejected(self):
        fxc = FiberCrossConnect("FXC:1", 4)
        with pytest.raises(EquipmentError):
            fxc.connect(0, 9, "conn-1")

    def test_labels_and_find(self):
        fxc = FiberCrossConnect("FXC:1", 4)
        fxc.label_port(2, "OT:ROADM-I:0")
        assert fxc.port_label(2) == "OT:ROADM-I:0"
        assert fxc.find_port("OT:ROADM-I:0") == 2
        with pytest.raises(EquipmentError):
            fxc.find_port("ghost")

    def test_connections_listing(self):
        fxc = FiberCrossConnect("FXC:1", 6)
        fxc.connect(4, 1, "conn-1")
        fxc.connect(0, 5, "conn-2")
        assert fxc.connections() == [(0, 5, "conn-2"), (1, 4, "conn-1")]


class TestMuxponder:
    def test_testbed_shape(self):
        mxp = Muxponder("MXP:A")
        assert mxp.client_port_count == 4
        assert mxp.line_rate_bps == gbps(40)

    def test_oversubscription_rejected(self):
        with pytest.raises(ConfigurationError):
            Muxponder("MXP:bad", client_rate_bps=gbps(10), client_ports=5,
                      line_rate_bps=gbps(40))

    def test_allocate_lowest_free(self):
        mxp = Muxponder("MXP:A")
        assert mxp.allocate_client_port("c1") == 0
        assert mxp.allocate_client_port("c2") == 1
        mxp.release_client_port(0, "c1")
        assert mxp.allocate_client_port("c3") == 0

    def test_exhaustion(self):
        mxp = Muxponder("MXP:A")
        for i in range(4):
            mxp.allocate_client_port(f"c{i}")
        with pytest.raises(CapacityExceededError):
            mxp.allocate_client_port("c5")

    def test_occupy_specific_port(self):
        mxp = Muxponder("MXP:A")
        mxp.occupy_client_port(2, "c1")
        assert mxp.owner_of(2) == "c1"
        with pytest.raises(EquipmentError):
            mxp.occupy_client_port(2, "c2")

    def test_release_validation(self):
        mxp = Muxponder("MXP:A")
        with pytest.raises(EquipmentError):
            mxp.release_client_port(0, "c1")
        mxp.occupy_client_port(0, "c1")
        with pytest.raises(EquipmentError):
            mxp.release_client_port(0, "c2")

    def test_line_fill(self):
        mxp = Muxponder("MXP:A")
        mxp.allocate_client_port("c1")
        assert mxp.line_fill() == pytest.approx(0.25)

    def test_low_speed_mux_shape(self):
        mux = LowSpeedMux("MUX:A")
        assert mux.client_port_count == 10
        assert mux.client_rate_bps == gbps(1)
        assert mux.line_rate_bps == gbps(10)


class TestNte:
    def test_claim_and_view(self):
        nte = NetworkTerminatingEquipment("NTE:A", "PREMISES-A")
        index = nte.claim_interface("conn-1", channelized=False)
        assert index == 0
        assert nte.owner_of(0) == "conn-1"
        assert not nte.is_channelized(0)
        view = nte.customer_view()
        assert len(view) == 4
        assert "wavelength for conn-1" in view[0]
        assert view[1].endswith("free")

    def test_channelized_flag(self):
        nte = NetworkTerminatingEquipment("NTE:A", "PREMISES-A")
        index = nte.claim_interface("conn-1", channelized=True)
        assert nte.is_channelized(index)
        assert "channelized" in nte.customer_view()[index]

    def test_exhaustion(self):
        nte = NetworkTerminatingEquipment("NTE:A", "PREMISES-A", interface_count=1)
        nte.claim_interface("conn-1", channelized=False)
        with pytest.raises(CapacityExceededError):
            nte.claim_interface("conn-2", channelized=False)

    def test_release_and_reuse(self):
        nte = NetworkTerminatingEquipment("NTE:A", "PREMISES-A")
        index = nte.claim_interface("conn-1", channelized=False)
        nte.release_interface(index, "conn-1")
        assert nte.free_interfaces() == [0, 1, 2, 3]

    def test_release_validation(self):
        nte = NetworkTerminatingEquipment("NTE:A", "PREMISES-A")
        with pytest.raises(EquipmentError):
            nte.release_interface(0, "conn-1")
        index = nte.claim_interface("conn-1", channelized=False)
        with pytest.raises(EquipmentError):
            nte.release_interface(index, "conn-2")

    def test_is_channelized_on_idle_interface(self):
        nte = NetworkTerminatingEquipment("NTE:A", "PREMISES-A")
        with pytest.raises(EquipmentError):
            nte.is_channelized(0)
