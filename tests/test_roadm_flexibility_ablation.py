"""Ablation: what colorless/non-directional add/drop ports buy.

The paper leans on ROADMs "with add/drop ports which are both
'colorless' ... and 'non-directional'" (§2.1) — it is what lets any
free transponder serve any wavelength toward any degree, making the
FXC-based dynamic sharing work.  This ablation shows the failure modes
of the older port types:

* **directional** ports are wired to one degree: ports toward a quiet
  degree sit stranded while demand on a busy degree blocks;
* **colored** ports carry one fixed wavelength: a port is useless the
  moment its wavelength is taken on the needed degree.
"""

import pytest

from repro.errors import TransponderUnavailableError, WavelengthBlockedError
from repro.optical import Roadm, WavelengthGrid


@pytest.fixture
def grid():
    return WavelengthGrid(8)


def connect_n(roadm, degree, count, start_channel=0):
    """Connect ``count`` add/drops toward ``degree``; returns successes."""
    done = 0
    for i in range(count):
        free = roadm.free_ports(degree=degree, channel=start_channel + i)
        if not free:
            break
        try:
            roadm.connect_add_drop(
                free[0].port_id, degree, start_channel + i, f"lp-{degree}-{i}"
            )
        except (TransponderUnavailableError, WavelengthBlockedError):
            break
        done += 1
    return done


class TestDirectionalAblation:
    def test_flexible_ports_follow_demand(self, grid):
        roadm = Roadm("X", grid)  # colorless + non-directional
        roadm.add_degree("EAST")
        roadm.add_degree("WEST")
        roadm.add_ports(4)
        # All demand toward EAST: every port is usable.
        assert connect_n(roadm, "EAST", 4) == 4

    def test_directional_ports_strand_capacity(self, grid):
        roadm = Roadm("X", grid, non_directional=False)
        roadm.add_degree("EAST")
        roadm.add_degree("WEST")
        roadm.add_ports(2, fixed_degree="EAST")
        roadm.add_ports(2, fixed_degree="WEST")
        # Same 4 ports, same all-EAST demand: only 2 usable, 2 stranded.
        assert connect_n(roadm, "EAST", 4) == 2
        stranded = [
            p for p in roadm.ports if not p.in_use and p.fixed_degree == "WEST"
        ]
        assert len(stranded) == 2

    def test_same_port_count_different_service(self, grid):
        """Quantify the gap: flexible ports serve 2x the skewed demand."""
        flexible = Roadm("F", grid)
        for degree in ("EAST", "WEST"):
            flexible.add_degree(degree)
        flexible.add_ports(6)

        directional = Roadm("D", grid, non_directional=False)
        for degree in ("EAST", "WEST"):
            directional.add_degree(degree)
        directional.add_ports(3, fixed_degree="EAST")
        directional.add_ports(3, fixed_degree="WEST")

        assert connect_n(flexible, "EAST", 6) == 6
        assert connect_n(directional, "EAST", 6) == 3


class TestColoredAblation:
    def test_colorless_ports_dodge_taken_wavelengths(self, grid):
        roadm = Roadm("X", grid)
        roadm.add_degree("EAST")
        roadm.add_ports(2)
        # Channel 0 already used by an express connection...
        roadm.add_degree("WEST")
        roadm.connect_express("EAST", "WEST", 0, "through-traffic")
        # ...a colorless port simply tunes to channel 1.
        port = roadm.free_ports()[0]
        roadm.connect_add_drop(port.port_id, "EAST", 1, "lp-1")
        assert port.in_use

    def test_colored_port_useless_when_wavelength_taken(self, grid):
        roadm = Roadm("X", grid, colorless=False)
        roadm.add_degree("EAST")
        roadm.add_degree("WEST")
        roadm.add_ports(1, fixed_channel=0)
        roadm.connect_express("EAST", "WEST", 0, "through-traffic")
        port = roadm.ports[0]
        # The port's one wavelength is taken on both degrees: blocked.
        for degree in ("EAST", "WEST"):
            with pytest.raises(WavelengthBlockedError):
                roadm.connect_add_drop(port.port_id, degree, 0, "lp-1")

    def test_colored_bank_needs_port_per_channel(self, grid):
        """To guarantee any-wavelength add/drop, a colored design needs a
        port per channel; colorless needs one per simultaneous signal."""
        colored = Roadm("C", grid, colorless=False)
        colored.add_degree("EAST")
        for channel in grid.channels():
            colored.add_ports(1, fixed_channel=channel)
        flexible = Roadm("F", grid)
        flexible.add_degree("EAST")
        flexible.add_ports(1)
        # One signal at an arbitrary channel: both serve it, but the
        # colored bank spent 8 ports to the flexible node's 1.
        assert len(colored.ports) == grid.size
        assert len(flexible.ports) == 1
        flexible.connect_add_drop(
            flexible.ports[0].port_id, "EAST", 5, "lp-1"
        )
        target = [p for p in colored.ports if p.fixed_channel == 5][0]
        colored.connect_add_drop(target.port_id, "EAST", 5, "lp-1")
