"""Tests for the Fig. 4 testbed and synthetic backbone builders."""

import pytest

from repro.topo import (
    BACKBONE_CITIES,
    TESTBED_PREMISES,
    TESTBED_ROADMS,
    build_backbone_graph,
    build_testbed_graph,
)
from repro.topo.backbone import BACKBONE_DATA_CENTERS
from repro.topo.testbed import table2_paths


class TestTestbedTopology:
    @pytest.fixture
    def graph(self):
        return build_testbed_graph()

    def test_has_four_roadms(self, graph):
        roadms = [node for node in graph.nodes if node.kind == "roadm"]
        assert sorted(node.name for node in roadms) == sorted(TESTBED_ROADMS)

    def test_two_three_degree_and_two_two_degree(self, graph):
        """The paper: 'two 3-degree ROADMs and two 2-degree ROADMs'."""
        core_degree = {}
        for name in TESTBED_ROADMS:
            inter_roadm = [
                n for n in graph.neighbors(name) if n in TESTBED_ROADMS
            ]
            core_degree[name] = len(inter_roadm)
        degrees = sorted(core_degree.values())
        assert degrees == [2, 2, 3, 3]
        assert core_degree["ROADM-I"] == 3
        assert core_degree["ROADM-III"] == 3

    def test_three_premises_attached(self, graph):
        for premises, pop in TESTBED_PREMISES.items():
            assert graph.node(premises).kind == "premises"
            assert pop in graph.neighbors(premises)

    def test_table2_paths_are_valid(self, graph):
        for hops, path in table2_paths().items():
            links = graph.links_on_path(path)
            assert len(links) == hops

    def test_table2_paths_share_endpoints(self):
        paths = table2_paths()
        assert all(p[0] == "ROADM-I" and p[-1] == "ROADM-IV" for p in paths.values())

    def test_one_hop_is_the_shortest(self, graph):
        assert graph.shortest_path("ROADM-I", "ROADM-IV") == ["ROADM-I", "ROADM-IV"]

    def test_each_core_link_has_srlg(self, graph):
        for link in graph.links:
            assert link.srlgs, f"link {link.key} missing an SRLG tag"


class TestBackboneTopology:
    @pytest.fixture
    def graph(self):
        return build_backbone_graph()

    def test_all_cities_present(self, graph):
        for city in BACKBONE_CITIES:
            assert graph.has_node(city)

    def test_data_centers_attached(self, graph):
        for dc, pop in BACKBONE_DATA_CENTERS.items():
            assert pop in graph.neighbors(dc)

    def test_without_data_centers(self):
        graph = build_backbone_graph(with_data_centers=False)
        assert not graph.has_node("DC-EAST")
        assert len(graph.nodes) == len(BACKBONE_CITIES)

    def test_backbone_is_connected(self, graph):
        cities = list(BACKBONE_CITIES)
        for city in cities[1:]:
            graph.shortest_path(cities[0], city)

    def test_coast_to_coast_needs_multiple_hops(self, graph):
        path = graph.shortest_path("NYC", "LAX")
        assert len(path) >= 3

    def test_transcontinental_distance_realistic(self, graph):
        km = graph.path_length_km(
            graph.shortest_path("NYC", "LAX", weight=lambda link: link.length_km)
        )
        assert 3500 <= km <= 7000

    def test_survives_any_single_link_cut(self, graph):
        """The mesh should be 2-edge-connected between all city pairs."""
        for link in graph.links:
            if link.a in BACKBONE_DATA_CENTERS or link.b in BACKBONE_DATA_CENTERS:
                continue  # access links are intentionally single-homed
            graph.shortest_path("NYC", "LAX", excluded_links=[link.key])

    def test_shared_conduit_srlgs_exist(self, graph):
        assert len(graph.links_in_srlg("conduit:texas")) == 2
        assert len(graph.links_in_srlg("conduit:northeast")) == 2
