"""Differential: sharded and monolithic deployments, identical outcomes.

The acceptance gate for the sharded controller: on the same 2-region
hierarchy and the same order stream, the per-region-shard deployment
and the single full-graph controller must produce byte-identical
structural outcomes — same segment paths, same first-fit channels, same
regen sites, same blocked reasons.  Sequence-assigned identifiers and
timings are deliberately outside the fingerprint (they legitimately
differ between deployments).

Also pins the shard-plan sweep's process-count independence: one worker
or many, the aggregate JSON is byte-identical.
"""

from repro.core.admission import CustomerProfile
from repro.core.connection import ConnectionState
from repro.shard import build_sharded_network, outcome_fingerprint
from repro.sweep.engine import run_sweep
from repro.topo.hierarchy import build_hierarchy
from repro.units import GBPS

#: A mixed order stream: cross-region, intra-region, gateway-endpoint
#: (degenerate segment), repeated pair (overlay contention), and an
#: unregistered customer (admission block) — every code path the
#: fingerprint covers.
ORDERS = [
    ("csp", "DC-R00-P03", "DC-R01-P04", 10 * GBPS),
    ("csp", "DC-R00-P02", "DC-R00-P05", 10 * GBPS),
    ("csp", "DC-R00-P00", "DC-R01-P03", 10 * GBPS),
    ("csp", "DC-R00-P03", "DC-R01-P04", 10 * GBPS),
    ("ghost", "DC-R00-P02", "DC-R01-P05", 10 * GBPS),
    ("csp", "DC-R01-P01", "DC-R00-P04", 10 * GBPS),
]


def _run_deployment(mode, hierarchy):
    net = build_sharded_network(seed=11, mode=mode, hierarchy=hierarchy)
    net.register_customer(
        CustomerProfile(
            "csp", max_connections=64, max_total_rate_bps=10000 * GBPS
        )
    )
    orders = net.place_orders(ORDERS)
    net.run()
    # Exercise the cross-shard teardown too, then a follow-up round that
    # plans against the post-teardown occupancy.
    released = next(
        o for o in orders if o.state is ConnectionState.UP
    )
    net.teardown_order(released)
    net.run()
    orders.extend(
        net.place_orders([("csp", "DC-R00-P03", "DC-R01-P05", 10 * GBPS)])
    )
    net.run()
    return net, orders


class TestShardedVsMonolithic:
    def test_outcomes_byte_identical(self):
        hierarchy = build_hierarchy(
            seed=11, regions=2, pops_per_region=6, with_premises=True
        )
        sharded_net, sharded = _run_deployment("sharded", hierarchy)
        mono_net, mono = _run_deployment("monolithic", hierarchy)
        assert outcome_fingerprint(sharded) == outcome_fingerprint(mono)
        # Spot-check the fingerprint is not vacuous: states span the
        # space and at least one order was admission-blocked.
        states = {o.state for o in sharded}
        assert ConnectionState.UP in states
        assert ConnectionState.BLOCKED in states
        assert ConnectionState.RELEASED in states
        for net in (sharded_net, mono_net):
            for unit, report in net.audit_shards().items():
                assert report.ok, f"{unit}: {report.violations}"

    def test_fingerprint_sensitive_to_outcome(self):
        hierarchy = build_hierarchy(
            seed=11, regions=2, pops_per_region=6, with_premises=True
        )
        _, orders = _run_deployment("sharded", hierarchy)
        before = outcome_fingerprint(orders)
        orders[0].plan_record[0]["channels"] = [9999]
        assert outcome_fingerprint(orders) != before


class TestSweepProcessIndependence:
    def test_shard_plan_sweep_identical_across_job_counts(self):
        from repro.shard.bench import shard_plan_spec

        spec = shard_plan_spec(
            topology_seed=11,
            regions=2,
            pops_per_region=6,
            rounds=2,
            orders_per_round=8,
        )
        serial = run_sweep(spec, jobs=1)
        parallel = run_sweep(spec, jobs=3)
        assert serial.to_json() == parallel.to_json()
