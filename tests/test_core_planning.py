"""Tests for the resource planner and Erlang-B machinery (paper §4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.planning import (
    DemandForecast,
    ResourcePlanner,
    erlang_b,
    servers_for_blocking,
)
from repro.errors import ConfigurationError
from repro.topo.backbone import build_backbone_graph


class TestErlangB:
    def test_zero_load_never_blocks(self):
        assert erlang_b(0, 0.0) == 0.0
        assert erlang_b(5, 0.0) == 0.0

    def test_zero_servers_always_blocks(self):
        assert erlang_b(0, 3.0) == 1.0

    def test_textbook_value(self):
        # A classic: 10 Erlangs on 10 servers blocks ~21.5%.
        assert erlang_b(10, 10.0) == pytest.approx(0.2146, abs=1e-3)

    def test_another_textbook_value(self):
        # 2 Erlangs on 5 servers blocks ~3.7%.
        assert erlang_b(5, 2.0) == pytest.approx(0.0367, abs=1e-3)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            erlang_b(-1, 1.0)
        with pytest.raises(ConfigurationError):
            erlang_b(1, -1.0)

    @given(
        servers=st.integers(min_value=0, max_value=50),
        load=st.floats(min_value=0.0, max_value=50.0),
    )
    def test_probability_bounds(self, servers, load):
        blocking = erlang_b(servers, load)
        assert 0.0 <= blocking <= 1.0

    @given(
        servers=st.integers(min_value=1, max_value=30),
        load=st.floats(min_value=0.1, max_value=30.0),
    )
    def test_monotone_in_servers(self, servers, load):
        assert erlang_b(servers, load) <= erlang_b(servers - 1, load)


class TestServersForBlocking:
    def test_meets_target(self):
        servers = servers_for_blocking(10.0, 0.01)
        assert erlang_b(servers, 10.0) <= 0.01
        assert erlang_b(servers - 1, 10.0) > 0.01

    def test_zero_load_needs_zero(self):
        assert servers_for_blocking(0.0, 0.01) == 0

    def test_bad_target(self):
        with pytest.raises(ConfigurationError):
            servers_for_blocking(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            servers_for_blocking(1.0, 1.0)

    @given(load=st.floats(min_value=0.1, max_value=40.0))
    def test_result_always_satisfies_target(self, load):
        servers = servers_for_blocking(load, 0.05)
        assert erlang_b(servers, load) <= 0.05


class TestForecast:
    def test_offered_erlangs(self):
        forecast = DemandForecast("NYC", "LAX", 2.0, 1.5)
        assert forecast.offered_erlangs == 3.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DemandForecast("NYC", "LAX", -1.0, 1.0)
        with pytest.raises(ConfigurationError):
            DemandForecast("NYC", "LAX", 1.0, 0.0)


class TestResourcePlanner:
    @pytest.fixture
    def planner(self):
        return ResourcePlanner(build_backbone_graph(with_data_centers=False))

    @pytest.fixture
    def forecasts(self):
        return [
            DemandForecast("NYC", "LAX", 1.0, 2.0),  # 2 Erlangs
            DemandForecast("NYC", "ATL", 0.5, 2.0),  # 1 Erlang
            DemandForecast("ATL", "LAX", 0.5, 4.0),  # 2 Erlangs
        ]

    def test_per_node_load_sums_endpoints(self, planner, forecasts):
        load = planner.offered_load_per_node(forecasts)
        assert load["NYC"] == pytest.approx(3.0)
        assert load["LAX"] == pytest.approx(4.0)
        assert load["ATL"] == pytest.approx(3.0)
        assert "CHI" not in load  # pass-through nodes hold no OTs

    def test_size_pools_meets_target(self, planner, forecasts):
        pools = planner.size_pools(forecasts, target_blocking=0.01,
                                   restoration_headroom=0)
        blocking = planner.expected_blocking(forecasts, pools)
        assert all(b <= 0.01 for b in blocking.values())

    def test_headroom_adds_spares(self, planner, forecasts):
        lean = planner.size_pools(forecasts, restoration_headroom=0)
        padded = planner.size_pools(forecasts, restoration_headroom=2)
        assert all(padded[node] == lean[node] + 2 for node in lean)

    def test_negative_headroom_rejected(self, planner, forecasts):
        with pytest.raises(ConfigurationError):
            planner.size_pools(forecasts, restoration_headroom=-1)

    def test_tighter_target_needs_more_ots(self, planner, forecasts):
        loose = planner.size_pools(forecasts, target_blocking=0.1,
                                   restoration_headroom=0)
        tight = planner.size_pools(forecasts, target_blocking=0.001,
                                   restoration_headroom=0)
        assert all(tight[node] >= loose[node] for node in loose)
        assert sum(tight.values()) > sum(loose.values())

    def test_regen_load_on_long_routes(self, planner):
        # NYC -> LAX by km passes through the middle of the country;
        # with a 2500 km reach at least one regen site gets load.
        forecasts = [DemandForecast("NYC", "LAX", 1.0, 1.0)]
        load = planner.regen_load(forecasts, reach_km=2500.0)
        assert load, "expected at least one regen site"
        assert all(erlangs == 1.0 for erlangs in load.values())

    def test_regen_load_short_route_empty(self, planner):
        forecasts = [DemandForecast("NYC", "DCA", 1.0, 1.0)]
        assert planner.regen_load(forecasts, reach_km=2500.0) == {}

    def test_regen_load_bad_reach(self, planner, forecasts):
        with pytest.raises(ConfigurationError):
            planner.regen_load(forecasts, reach_km=0)

    def test_plan_summary_rows(self, planner, forecasts):
        rows = planner.plan_summary(forecasts, target_blocking=0.01)
        nodes = [row[0] for row in rows]
        assert nodes == sorted(nodes)
        for _, erlangs, ots, blocking in rows:
            assert ots >= 1
            assert blocking <= 0.01 or ots > 0
