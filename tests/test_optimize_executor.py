"""Executor tests: moves land, stale moves skip, failures roll back,
and the migration lock serializes the executor against re-grooming.
"""

import pytest

from repro.core.connection import ConnectionState
from repro.core.regrooming import RegroomingEngine
from repro.errors import MigrationLockedError
from repro.faults.audit import audit_network
from repro.optimize import (
    MigrationExecutor,
    MigrationMove,
    MigrationPlan,
    NetworkSnapshot,
    plan_migrations,
)
from repro.optimize.bench import (
    build_optimize_network,
    fragment_network,
    place_orders,
)

SEED = 7
NODE_COUNT = 24
WARM_ORDERS = 60


def fragmented_network():
    net = build_optimize_network(SEED, node_count=NODE_COUNT)
    service = net.service_for(
        "executor-test", max_connections=4096, max_total_rate_gbps=1000000
    )
    warm = place_orders(net, service, WARM_ORDERS)
    fragment_network(net, service, warm, keep_every=3)
    return net, service


def planned_network():
    net, service = fragmented_network()
    snapshot = NetworkSnapshot.from_controller(net.controller)
    plan = plan_migrations(snapshot)
    assert plan.moves, "scenario must yield moves"
    return net, service, plan


def assignment_of(net, connection_id):
    connection = net.controller.connections[connection_id]
    lightpath = net.inventory.lightpaths[connection.lightpath_ids[0]]
    return tuple(lightpath.path), tuple(lightpath.channels)


def test_execute_lands_every_move():
    net, _, plan = planned_network()
    executor = MigrationExecutor(net.controller)
    report = executor.execute(plan)
    net.run()
    assert report.completed == len(plan.moves)
    assert report.failed == 0 and report.stale == 0
    assert not report.rollback_triggered
    assert report.audit_failures == []
    assert report.dropped_connections == []
    assert report.clean
    # Every touched connection now carries its move's target assignment.
    final = {}
    for move in plan.moves:
        final[move.connection_id] = (move.new_path, move.new_channels)
    for conn_id, expected in final.items():
        assert assignment_of(net, conn_id) == expected
    assert audit_network(net.controller).ok


def test_execute_releases_every_migration_lock():
    net, _, plan = planned_network()
    MigrationExecutor(net.controller).execute(plan)
    net.run()
    for move in plan.moves:
        assert (
            net.controller.migration_lock_holder(move.connection_id) is None
        )


def test_stale_move_is_skipped_not_executed():
    net, service, plan = planned_network()
    victim = plan.moves[0].connection_id
    # The network changed between planning and execution: the victim
    # was torn down, so its move no longer describes reality.
    service.teardown_connection(victim)
    net.run()
    report = MigrationExecutor(net.controller).execute(plan)
    net.run()
    by_conn = {r.move.connection_id: r.outcome for r in report.results}
    assert by_conn[victim] == "stale"
    assert report.stale >= 1
    # The rest of the plan still ran.
    assert report.completed == len(plan.moves) - report.stale
    assert not report.rollback_triggered


def test_failed_move_rolls_back_completed_moves():
    net, _, plan = planned_network()
    first = plan.moves[0]
    # Craft a poison second move: its target channel is the slot the
    # victim connection already occupies, so plan_explicit refuses it.
    victim = next(
        m.connection_id
        for m in plan.moves[1:]
        if m.connection_id != first.connection_id
    )
    path, channels = assignment_of(net, victim)
    poison = MigrationMove(
        index=1,
        connection_id=victim,
        rate_bps=plan.moves[0].rate_bps,
        old_path=path,
        old_channels=channels,
        new_path=path,
        new_channels=channels,  # already lit -> WavelengthBlockedError
        cost_before=1.0,
        cost_after=0.5,
    )
    doomed = MigrationPlan(moves=[first, poison])
    report = MigrationExecutor(net.controller).execute(doomed)
    net.run()
    assert report.rollback_triggered
    assert report.failed == 1
    assert report.rolled_back == 1
    # The first move was undone: its connection is back on the old
    # assignment, and nothing dropped along the way.
    assert assignment_of(net, first.connection_id) == (
        first.old_path,
        first.old_channels,
    )
    assert report.dropped_connections == []
    for conn_id in (first.connection_id, victim):
        state = net.controller.connections[conn_id].state
        assert state is ConnectionState.UP
    assert audit_network(net.controller).ok


def test_lock_blocks_lock_aware_rival_and_releases_on_settle():
    net, _, plan = planned_network()
    conn_id = plan.moves[0].connection_id
    assert net.controller.lock_migration(conn_id, "optimize")
    with pytest.raises(MigrationLockedError):
        net.controller.bridge_and_roll(conn_id, lock_holder="regrooming")
    net.controller.unlock_migration(conn_id, "optimize")
    assert net.controller.migration_lock_holder(conn_id) is None


def test_regrooming_and_executor_cannot_race_one_connection():
    """Deterministic regression for the regrooming/executor race: while
    the executor's first move is mid-roll, a re-grooming pass must not
    touch that connection — and must still work afterwards."""
    net, _, plan = planned_network()
    moving = plan.moves[0].connection_id
    executor = MigrationExecutor(net.controller)
    executor.execute(plan)
    # The executor's first roll is now in flight (sim not yet run), so
    # the connection is locked under the executor's holder tag.
    assert net.controller.migration_lock_holder(moving) == "optimize"
    engine = RegroomingEngine(net.controller, improvement_threshold=0.0)
    # Its scan skips the locked connection entirely...
    assert moving not in {
        c.connection_id for c in engine.scan()
    }
    # ...and a direct lock-aware roll attempt is refused, not raced.
    with pytest.raises(MigrationLockedError):
        net.controller.bridge_and_roll(moving, lock_holder="regrooming")
    net.run()
    # Once the plan drains, the lock is gone and audits are clean.
    assert net.controller.migration_lock_holder(moving) is None
    assert audit_network(net.controller).ok


def test_rollback_can_be_disabled():
    net, _, plan = planned_network()
    first = plan.moves[0]
    victim = next(
        m.connection_id
        for m in plan.moves[1:]
        if m.connection_id != first.connection_id
    )
    path, channels = assignment_of(net, victim)
    poison = MigrationMove(
        index=1,
        connection_id=victim,
        rate_bps=first.rate_bps,
        old_path=path,
        old_channels=channels,
        new_path=path,
        new_channels=channels,
        cost_before=1.0,
        cost_after=0.5,
    )
    doomed = MigrationPlan(moves=[first, poison])
    report = MigrationExecutor(
        net.controller, rollback_on_failure=False
    ).execute(doomed)
    net.run()
    assert report.failed == 1
    assert report.rolled_back == 0
    assert not report.rollback_triggered
    # The completed move stays in place.
    assert assignment_of(net, first.connection_id) == (
        first.new_path,
        first.new_channels,
    )
