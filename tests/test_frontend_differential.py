"""Differential: one frontend, two backends, identical outcomes.

The :class:`~repro.api.OrderIntake` protocol promises the frontend is
deployment-agnostic.  This file proves it twice over:

* the same :class:`~repro.frontend.BodFrontend` drives the sharded and
  the monolithic-twin deployment of one 2-region hierarchy to identical
  typed outcome streams (satellite 2's acceptance gate);
* both the monolithic :class:`~repro.pipeline.OrderPipeline` and the
  :class:`~repro.shard.ShardIntake` adapter satisfy the runtime
  protocol and the same event vocabulary.
"""

from repro import api
from repro.core.admission import CustomerProfile
from repro.frontend.service import BodFrontend
from repro.shard import ShardIntake, build_sharded_network
from repro.topo.hierarchy import build_hierarchy
from repro.units import GBPS

#: The frontend submission stream: cross-region orders, an intra-region
#: order, and a repeat pair for contention — same for both deployments.
SUBMISSIONS = [
    ("csp", "DC-R00-P03", "DC-R01-P04", 10 * GBPS),
    ("csp", "DC-R00-P02", "DC-R00-P05", 10 * GBPS),
    ("csp", "DC-R00-P00", "DC-R01-P03", 10 * GBPS),
    ("csp", "DC-R00-P03", "DC-R01-P04", 10 * GBPS),
    ("csp", "DC-R01-P01", "DC-R00-P04", 10 * GBPS),
]


def _drive_frontend(mode):
    """Run the same submission stream through a frontend over ``mode``."""
    hierarchy = build_hierarchy(
        seed=11, regions=2, pops_per_region=6, with_premises=True
    )
    network = build_sharded_network(seed=11, mode=mode, hierarchy=hierarchy)
    network.register_customer(
        CustomerProfile(
            "csp", max_connections=64, max_total_rate_bps=10000 * GBPS
        )
    )
    intake = ShardIntake(network, round_size=4, round_interval=0.01)
    frontend = BodFrontend(
        intake,
        network.admission,
        network.sim,
        queue_capacity=32,
        bucket_rate=100.0,
        bucket_burst=100.0,
    )
    events = []
    frontend.add_listener(
        lambda ticket, event: events.append((ticket.request_id, event))
    )
    tickets = [
        frontend.submit(customer, a, b, rate)
        for customer, a, b, rate in SUBMISSIONS
    ]
    network.run()
    return frontend, tickets, events


def _per_request(events):
    """Each request's own event sequence, keyed by request id."""
    sequences = {}
    for request_id, event in events:
        sequences.setdefault(request_id, []).append(event)
    return sequences


def _outcome_signature(tickets):
    """Deployment-independent view of the typed outcomes."""
    signature = []
    for ticket in tickets:
        outcome = ticket.outcome
        entry = {
            "request": ticket.request_id,
            "type": type(outcome).__name__,
        }
        if isinstance(outcome, api.Blocked):
            entry["reason"] = outcome.blocked_reason
        signature.append(entry)
    return signature


class TestFrontendOverBothDeployments:
    def test_sharded_and_monolithic_outcomes_identical(self):
        _, sharded_tickets, sharded_events = _drive_frontend("sharded")
        _, mono_tickets, mono_events = _drive_frontend("monolithic")
        assert _outcome_signature(sharded_tickets) == _outcome_signature(
            mono_tickets
        )
        # Setup *timings* legitimately differ between deployments (the
        # shard fingerprint excludes them too), so concurrent setups may
        # conclude in a different global order — but each request's own
        # event sequence must be identical.
        assert _per_request(sharded_events) == _per_request(mono_events)

    def test_every_submission_resolves_typed(self):
        _, tickets, _ = _drive_frontend("sharded")
        for ticket in tickets:
            assert isinstance(ticket.outcome, api.TERMINAL_OUTCOMES)

    def test_active_orders_stream_released_on_teardown(self):
        frontend, tickets, events = _drive_frontend("sharded")
        active = [
            t for t in tickets if isinstance(t.outcome, api.Active)
        ]
        assert active  # the stream must place at least one order
        frontend._intake.teardown(active[0].order_ticket)
        frontend._sim.run()
        assert (active[0].request_id, "released") in events


class TestIntakeProtocol:
    def test_both_backends_satisfy_order_intake(self):
        from repro.facade import build_griphon_testbed

        net = build_griphon_testbed(seed=2)
        pipeline = net.enable_pipeline()
        assert isinstance(pipeline, api.OrderIntake)

        hierarchy = build_hierarchy(
            seed=2, regions=2, pops_per_region=4, with_premises=True
        )
        network = build_sharded_network(seed=2, hierarchy=hierarchy)
        assert isinstance(ShardIntake(network), api.OrderIntake)

    def test_shard_intake_queue_full_is_backpressure(self):
        hierarchy = build_hierarchy(
            seed=3, regions=2, pops_per_region=4, with_premises=True
        )
        network = build_sharded_network(seed=3, hierarchy=hierarchy)
        network.register_customer(
            CustomerProfile(
                "csp", max_connections=64, max_total_rate_bps=10000 * GBPS
            )
        )
        intake = ShardIntake(network, capacity=2)
        tickets = [
            intake.submit("csp", "DC-R00-P00", "DC-R01-P01", 10 * GBPS)
            for _ in range(3)
        ]
        refused = intake.outcome(tickets[2])
        assert isinstance(refused, api.QueueFull)
        assert refused.capacity == 2
