"""The grand tour: every subsystem in one simulated day.

A single scenario exercising the whole stack together — wavelength,
composite, sub-wavelength, and packet orders; an advance reservation; a
fiber cut with automated restoration; a maintenance window behind
bridge-and-roll; a re-grooming pass; and an OTN-line reclamation sweep —
then checks that the books balance at the end of the day.
"""

import pytest

from repro.core.calendar import ReservationBook, ReservationState
from repro.core.connection import ConnectionKind, ConnectionState
from repro.core.reclamation import OtnLineReclaimer
from repro.core.regrooming import RegroomingEngine
from repro.facade import build_griphon_testbed
from repro.units import HOUR


@pytest.fixture(scope="module")
def day():
    """Run the whole day once; the tests below assert on the outcome."""
    net = build_griphon_testbed(seed=2026, latency_cv=0.0, nte_interfaces=12)
    svc = net.service_for("acme", max_connections=64,
                          max_total_rate_gbps=10000)
    outcome = {"net": net, "svc": svc}

    # 00:00 - four orders across every service class.
    outcome["wave"] = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
    outcome["composite"] = svc.request_connection("PREMISES-A", "PREMISES-B", 12)
    outcome["sub"] = svc.request_connection("PREMISES-B", "PREMISES-C", 2)
    outcome["packet"] = svc.request_connection("PREMISES-A", "PREMISES-C", 0.3)
    net.run(until=1 * HOUR)

    # 01:00 - book tonight's backup window (22:00-24:00).
    book = ReservationBook(net.controller)
    outcome["reservation"] = book.book(
        "acme", "PREMISES-B", "PREMISES-C", 10,
        start=22 * HOUR, end=24 * HOUR,
    )

    # 02:00 - a backhoe: cut the wavelength connection's first span.
    net.run(until=2 * HOUR)
    wave_path = net.inventory.lightpaths[
        outcome["wave"].lightpath_ids[0]
    ].path
    outcome["cut_link"] = (wave_path[0], wave_path[1])
    net.controller.cut_link(*outcome["cut_link"])
    net.run(until=2.5 * HOUR)  # restoration completes (~1 min)

    # 05:00 - the span is spliced.
    net.run(until=5 * HOUR)
    net.controller.repair_link(*outcome["cut_link"])
    net.run(until=5.5 * HOUR)

    # 06:00 - re-grooming pass moves the restored connection back.
    net.run(until=6 * HOUR)
    regroomer = RegroomingEngine(net.controller)
    outcome["regroom"] = regroomer.run_pass()
    net.run(until=7 * HOUR)

    # 09:00-13:00 - maintenance on the composite's wavelength span,
    # protected by bridge-and-roll.
    comp_path = net.inventory.lightpaths[
        outcome["composite"].lightpath_ids[0]
    ].path
    net.maintenance.schedule(
        comp_path[0], comp_path[1],
        start_in=9 * HOUR - net.sim.now, duration=4 * HOUR,
    )
    net.run(until=14 * HOUR)

    # 15:00 - the 2G sub-wavelength service is no longer needed.
    net.run(until=15 * HOUR)
    svc.teardown_connection(outcome["sub"].connection_id)
    net.run(until=15.5 * HOUR)

    # 16:00 - reclamation sweeps (the sub's lines may still be shared
    # by the composite's circuits, so only truly idle lines go).
    reclaimer = OtnLineReclaimer(net.controller, holding_time_s=0.5 * HOUR)
    reclaimer.sweep()
    net.run(until=17 * HOUR)
    outcome["reclaim"] = reclaimer.sweep()
    net.run(until=18 * HOUR)

    # 24:00+ - let the reservation window run out.
    net.run(until=25 * HOUR)
    net.run()
    return outcome


class TestDemoDay:
    def test_all_service_classes_came_up(self, day):
        assert day["wave"].kind is ConnectionKind.WAVELENGTH
        assert day["composite"].kind is ConnectionKind.COMPOSITE
        assert day["sub"].kind is ConnectionKind.SUBWAVELENGTH
        assert day["packet"].kind is ConnectionKind.PACKET
        for name in ("wave", "composite", "packet"):
            assert day[name].state is ConnectionState.UP, name

    def test_restoration_kept_wave_alive(self, day):
        wave = day["wave"]
        # One restoration (~1 min) plus one bridge-and-roll hit (50 ms).
        assert 30 < wave.total_outage_s < 180

    def test_regroom_moved_wave_back(self, day):
        assert day["regroom"].migrated == [day["wave"].connection_id]
        net = day["net"]
        path = net.inventory.lightpaths[day["wave"].lightpath_ids[0]].path
        assert tuple(sorted((path[0], path[1]))) == tuple(
            sorted(day["cut_link"])
        )

    def test_maintenance_was_nearly_hitless_for_composite(self, day):
        # The wavelength component migrates ahead of the window via
        # bridge-and-roll (~50 ms roll hit); the OTN circuits are not
        # migrated and take a sub-second shared-mesh restoration blip
        # when the span actually opens.  Total: well under a second,
        # versus a four-hour window.
        assert 0.04 <= day["composite"].total_outage_s < 0.5

    def test_sub_released_and_lines_reclaimed(self, day):
        assert day["sub"].state is ConnectionState.RELEASED
        # Any line left standing either carries circuits or is reserved
        # backup capacity for the composite's protected circuits.
        net = day["net"]
        for line_id, line in net.inventory.otn_lines.items():
            busy = bool(line.owners()) or (
                net.controller.protection.reserved_slots(line_id) > 0
            )
            assert busy, f"{line_id} should have been reclaimed"

    def test_reservation_served_and_closed(self, day):
        reservation = day["reservation"]
        assert reservation.state is ReservationState.COMPLETED
        assert reservation.connection.state is ConnectionState.RELEASED
        assert reservation.connection.up_at <= reservation.start + 300

    def test_books_balance(self, day):
        """Quota accounting matches the live connections at end of day."""
        net, svc = day["net"], day["svc"]
        live = [
            c for c in svc.connections() if c.state is ConnectionState.UP
        ]
        usage = svc.usage()
        assert usage["connections"] == len(live)
        assert usage["rate_bps"] == pytest.approx(
            sum(c.rate_bps for c in live)
        )

    def test_no_stranded_lightpaths(self, day):
        """Every lightpath is owned by a live connection or an OTN line."""
        net = day["net"]
        owned = set()
        for conn in net.controller.connections.values():
            owned.update(conn.lightpath_ids)
        owned.update(net.controller._line_lightpath.values())
        for lightpath_id in net.inventory.lightpaths:
            assert lightpath_id in owned
