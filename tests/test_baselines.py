"""Tests for the baseline systems: manual ops, 1+1, static, store-and-forward."""

import pytest

from repro.baselines import (
    ManualOperations,
    OnePlusOneProtection,
    StaticProvisioningPlan,
    StoreForwardScheduler,
)
from repro.core.inventory import InventoryDatabase
from repro.core.provisioning import LightpathProvisioner
from repro.core.rwa import RwaEngine
from repro.ems.latency import LatencyModel
from repro.ems.roadm_ems import RoadmEms
from repro.errors import ConfigurationError, ResourceError
from repro.optical import WavelengthGrid
from repro.sim import RandomStreams
from repro.topo.testbed import build_testbed_graph
from repro.units import DAY, HOUR, WEEK, gbps


class TestManualOperations:
    def test_provisioning_takes_weeks(self):
        ops = ManualOperations(RandomStreams(1))
        for _ in range(20):
            t = ops.provisioning_time()
            assert 2 * WEEK <= t <= 8 * WEEK

    def test_restoration_takes_hours(self):
        ops = ManualOperations(RandomStreams(1))
        for _ in range(20):
            t = ops.restoration_time()
            assert 4 * HOUR <= t <= 12 * HOUR

    def test_maintenance_impact_is_whole_window(self):
        ops = ManualOperations(RandomStreams(1))
        assert ops.maintenance_impact(2 * HOUR) == 2 * HOUR
        with pytest.raises(ConfigurationError):
            ops.maintenance_impact(-1)

    def test_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            ManualOperations(RandomStreams(0), provisioning_weeks_min=0)
        with pytest.raises(ConfigurationError):
            ManualOperations(
                RandomStreams(0),
                restoration_hours_min=5,
                restoration_hours_max=4,
            )


class TestStaticProvisioning:
    def test_peak_sizing(self):
        plan = StaticProvisioningPlan([gbps(3), gbps(12), gbps(7)])
        assert plan.peak_demand_bps == gbps(12)
        assert plan.leased_capacity_bps == gbps(20)  # two 10G circuits

    def test_headroom(self):
        plan = StaticProvisioningPlan([gbps(10)], headroom=0.2)
        assert plan.leased_capacity_bps == gbps(20)

    def test_capacity_accounting(self):
        plan = StaticProvisioningPlan([gbps(5), gbps(10)], granularity_bps=gbps(10))
        assert plan.capacity_hours() == pytest.approx(gbps(10) * 2)
        assert plan.used_capacity_hours() == pytest.approx(gbps(15))
        assert plan.utilization() == pytest.approx(0.75)
        assert plan.stranded_capacity_hours() == pytest.approx(gbps(5))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StaticProvisioningPlan([])
        with pytest.raises(ConfigurationError):
            StaticProvisioningPlan([-1.0])
        with pytest.raises(ConfigurationError):
            StaticProvisioningPlan([1.0], granularity_bps=0)
        with pytest.raises(ConfigurationError):
            StaticProvisioningPlan([1.0], headroom=-0.1)


class TestOnePlusOne:
    def make(self):
        inventory = InventoryDatabase(build_testbed_graph(), WavelengthGrid(8))
        for node in ("ROADM-I", "ROADM-II", "ROADM-III", "ROADM-IV"):
            inventory.install_roadm(node, add_drop_ports=8)
            inventory.install_transponders(node, gbps(10), 4)
        latency = LatencyModel(RandomStreams(0), cv=0.0)
        provisioner = LightpathProvisioner(
            inventory, RoadmEms(inventory.roadms, inventory.plant, latency), latency
        )
        rwa = RwaEngine(inventory)
        return inventory, OnePlusOneProtection(inventory, rwa, provisioner)

    def test_pair_is_disjoint(self):
        _, protection = self.make()
        pair = protection.claim_pair("ROADM-I", "ROADM-IV", gbps(10))
        working_links = set(zip(pair.working.path, pair.working.path[1:]))
        protect_links = set(zip(pair.protection.path, pair.protection.path[1:]))
        assert not (working_links & protect_links)

    def test_double_resource_cost(self):
        _, protection = self.make()
        protection.claim_pair("ROADM-I", "ROADM-IV", gbps(10))
        assert protection.total_resource_cost() == 4  # 2 OTs per leg
        assert protection.pairs[0].resource_cost_factor == 2.0

    def test_switchover_is_fast(self):
        inventory, protection = self.make()
        pair = protection.claim_pair("ROADM-I", "ROADM-IV", gbps(10))
        inventory.plant.cut_link(pair.working.path[0], pair.working.path[1])
        outage = protection.on_failure(pair)
        assert outage == pytest.approx(0.050)
        assert pair.active == "protection"

    def test_double_failure_not_covered(self):
        inventory, protection = self.make()
        pair = protection.claim_pair("ROADM-I", "ROADM-IV", gbps(10))
        for path in (pair.working.path, pair.protection.path):
            for u, v in zip(path, path[1:]):
                inventory.plant.cut_link(u, v)
        assert protection.on_failure(pair) is None

    def test_release_pair(self):
        inventory, protection = self.make()
        pair = protection.claim_pair("ROADM-I", "ROADM-IV", gbps(10))
        protection.release_pair(pair)
        assert inventory.lightpaths == {}
        with pytest.raises(ResourceError):
            protection.release_pair(pair)

    def test_failed_protection_leg_rolls_back_working(self):
        inventory, protection = self.make()
        # Use up ROADM-IV's transponders so the second leg cannot claim.
        pool = inventory.transponders["ROADM-IV"]
        for index in range(3):
            pool.allocate(gbps(10), f"hog-{index}")
        from repro.errors import TransponderUnavailableError

        with pytest.raises(TransponderUnavailableError):
            protection.claim_pair("ROADM-I", "ROADM-IV", gbps(10))
        # Working leg must have been rolled back.
        assert inventory.lightpaths == {}


class TestStoreForward:
    def test_constant_profile(self):
        scheduler = StoreForwardScheduler({"h1": [gbps(1)] * 24})
        t = scheduler.hop_completion_time("h1", gbps(1) * 3600)
        assert t == pytest.approx(3600.0)

    def test_waits_through_dead_hours(self):
        profile = [0.0] * 12 + [gbps(1)] * 12
        scheduler = StoreForwardScheduler({"h1": profile})
        t = scheduler.hop_completion_time("h1", gbps(1) * 3600)
        assert t == pytest.approx(12 * HOUR + 3600)

    def test_start_offset(self):
        profile = [0.0] * 12 + [gbps(1)] * 12
        scheduler = StoreForwardScheduler({"h1": profile})
        t = scheduler.hop_completion_time("h1", gbps(1) * 3600, start_s=12 * HOUR)
        assert t == pytest.approx(3600.0)

    def test_profile_repeats_daily(self):
        profile = [gbps(1)] + [0.0] * 23
        scheduler = StoreForwardScheduler({"h1": profile})
        # Two hours of work at 1G available one hour per day.
        t = scheduler.hop_completion_time("h1", gbps(1) * 2 * 3600)
        assert t == pytest.approx(DAY + HOUR)

    def test_path_bottleneck(self):
        scheduler = StoreForwardScheduler(
            {"fast": [gbps(10)] * 24, "slow": [gbps(1)] * 24}
        )
        t = scheduler.path_completion_time(["fast", "slow"], gbps(1) * 3600)
        assert t == pytest.approx(3600.0)

    def test_best_path(self):
        scheduler = StoreForwardScheduler(
            {"direct": [gbps(0.5)] * 24, "via1": [gbps(2)] * 24, "via2": [gbps(2)] * 24}
        )
        path, t = scheduler.best_path_completion(
            [["direct"], ["via1", "via2"]], gbps(1) * 3600
        )
        assert path == ["via1", "via2"]
        assert t == pytest.approx(1800.0)

    def test_all_zero_profile_rejected(self):
        scheduler = StoreForwardScheduler({"h1": [0.0] * 24})
        with pytest.raises(ValueError):
            scheduler.hop_completion_time("h1", 1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StoreForwardScheduler({})
        with pytest.raises(ConfigurationError):
            StoreForwardScheduler({"h": []})
        with pytest.raises(ConfigurationError):
            StoreForwardScheduler({"h": [-1.0]})
        scheduler = StoreForwardScheduler({"h": [1.0]})
        with pytest.raises(ConfigurationError):
            scheduler.hop_completion_time("ghost", 1.0)
        with pytest.raises(ConfigurationError):
            scheduler.path_completion_time([], 1.0)
