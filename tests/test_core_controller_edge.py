"""Edge-case tests for the controller: odd orders, race-y operations."""

import pytest

from repro.core.connection import ConnectionKind, ConnectionState
from repro.errors import ConnectionStateError, ResourceError
from repro.facade import build_griphon_testbed


@pytest.fixture
def net():
    return build_griphon_testbed(seed=71, latency_cv=0.0)


@pytest.fixture
def svc(net):
    return net.service_for("csp")


class TestOddOrders:
    def test_same_premises_blocked(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-A", 10)
        assert conn.state is ConnectionState.BLOCKED
        assert conn.blocked_reason

    def test_unknown_premises_blocked(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-X", 10)
        assert conn.state is ConnectionState.BLOCKED

    def test_rate_above_any_wavelength_composite(self, net, svc):
        # 52G = 40G + 10G + 2 x 1G circuits.
        conn = svc.request_connection("PREMISES-A", "PREMISES-B", 52)
        net.run()
        assert conn.state is ConnectionState.UP
        assert conn.kind is ConnectionKind.COMPOSITE
        assert len(conn.lightpath_ids) == 2
        assert len(conn.circuit_ids) == 2

    def test_forced_wavelength_above_max_blocked(self, net, svc):
        conn = svc.request_connection(
            "PREMISES-A", "PREMISES-B", 52, kind=ConnectionKind.WAVELENGTH
        )
        assert conn.state is ConnectionState.BLOCKED
        assert "single wavelength" in conn.blocked_reason

    def test_tiny_rate_is_packet(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-B", 0.05)
        net.run()
        assert conn.state is ConnectionState.UP
        assert conn.kind is ConnectionKind.PACKET


class TestRaceyOperations:
    def test_teardown_during_setup_rejected(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        # Still SETTING_UP (or REQUESTED) — teardown is not legal yet.
        with pytest.raises(ConnectionStateError):
            svc.teardown_connection(conn.connection_id)
        net.run()
        assert conn.state is ConnectionState.UP

    def test_double_teardown_rejected(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        svc.teardown_connection(conn.connection_id)
        with pytest.raises(ConnectionStateError):
            svc.teardown_connection(conn.connection_id)
        net.run()
        assert conn.state is ConnectionState.RELEASED

    def test_teardown_of_blocked_connection_rejected(self, net):
        tiny = net.service_for("tiny", max_connections=0)
        conn = tiny.request_connection("PREMISES-A", "PREMISES-C", 10)
        assert conn.state is ConnectionState.BLOCKED
        with pytest.raises(ConnectionStateError):
            tiny.teardown_connection(conn.connection_id)

    def test_teardown_of_failed_connection_works(self, net, svc):
        net.controller.auto_restore = False
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        net.controller.cut_link(lightpath.path[0], lightpath.path[1])
        assert conn.state is ConnectionState.FAILED
        svc.teardown_connection(conn.connection_id)
        net.run()
        assert conn.state is ConnectionState.RELEASED
        assert net.inventory.lightpaths == {}

    def test_cut_during_setup_recovers(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        # Cut the direct span 30 simulated seconds into the setup.
        net.sim.schedule(
            30.0, net.controller.cut_link, "ROADM-I", "ROADM-IV"
        )
        net.run()
        assert conn.state is ConnectionState.UP
        path = net.inventory.lightpaths[conn.lightpath_ids[0]].path
        keys = {tuple(sorted(p)) for p in zip(path, path[1:])}
        assert ("ROADM-I", "ROADM-IV") not in keys

    def test_bridge_and_roll_during_restoration_rejected(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        net.controller.cut_link(lightpath.path[0], lightpath.path[1])
        # Restoration is in flight; the connection is not UP.
        assert conn.state is ConnectionState.RESTORING
        with pytest.raises(ResourceError):
            net.controller.bridge_and_roll(conn.connection_id)
        net.run()
        assert conn.state is ConnectionState.UP

    def test_repeated_cut_repair_cycles(self, net, svc):
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        for _ in range(4):
            lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
            a, b = lightpath.path[0], lightpath.path[1]
            net.controller.cut_link(a, b)
            net.run()
            net.controller.repair_link(a, b)
            net.run()
        assert conn.state is ConnectionState.UP
        # Exactly one lightpath remains registered for this connection.
        owned = [
            lp
            for lp_id, lp in net.inventory.lightpaths.items()
            if net.controller._lightpath_conn.get(lp_id)
            == conn.connection_id
        ]
        assert len(owned) == 1


class TestBridgeRollRaces:
    def test_teardown_during_bridge_aborts_roll(self, net, svc):
        """A teardown landing mid-bridge must release the bridge cleanly
        (regression: used to crash and strand the bridge lightpath)."""
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        events = []
        net.controller.observers.append(
            lambda name, payload: events.append(name)
        )
        net.controller.bridge_and_roll(conn.connection_id)
        net.sim.schedule(10.0, svc.teardown_connection, conn.connection_id)
        net.run()
        assert conn.state is ConnectionState.RELEASED
        assert net.inventory.lightpaths == {}
        assert "bridge-and-roll-aborted" in events
        for pool in net.inventory.transponders.values():
            assert all(not ot.in_use for ot in pool.transponders)

    def test_teardown_during_roll_hit_aborts_roll(self, net, svc):
        """A teardown landing inside the ~50 ms roll hit must leave the
        old path to the teardown and release the bridge (regression:
        used to re-tear the old lightpath and crash the workflow)."""
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        events = []
        net.controller.observers.append(
            lambda name, payload: events.append(name)
        )
        net.controller.bridge_and_roll(conn.connection_id)
        fired = []

        def probe():
            if conn.outage_started_at is not None:  # inside the roll hit
                fired.append(net.sim.now)
                svc.teardown_connection(conn.connection_id)
            else:
                net.sim.schedule(0.01, probe)

        net.sim.schedule(0.01, probe)
        net.run()
        assert fired
        assert conn.state is ConnectionState.RELEASED
        assert net.inventory.lightpaths == {}
        assert "bridge-and-roll-aborted" in events
        for pool in net.inventory.transponders.values():
            assert all(not ot.in_use for ot in pool.transponders)

    def test_concurrent_bridge_and_roll_single_winner(self, net, svc):
        """Two overlapping bridge-and-rolls: the loser must notice the
        connection already moved off the old path and release its own
        bridge (regression: used to orphan the winner's bridge and
        re-tear the old lightpath)."""
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        events = []
        net.controller.observers.append(
            lambda name, payload: events.append(name)
        )
        net.controller.bridge_and_roll(conn.connection_id)
        net.controller.bridge_and_roll(conn.connection_id)
        net.run()
        assert conn.state is ConnectionState.UP
        assert events.count("bridge-and-roll") == 1
        assert events.count("bridge-and-roll-aborted") == 1
        # Exactly one lightpath survives, and the connection owns it.
        assert set(net.inventory.lightpaths) == set(conn.lightpath_ids)
        svc.teardown_connection(conn.connection_id)
        net.run()
        assert net.inventory.lightpaths == {}
        for pool in net.inventory.transponders.values():
            assert all(not ot.in_use for ot in pool.transponders)

    def test_cut_during_bridge_aborts_roll(self, net, svc):
        """A failure of the old path mid-bridge hands the connection to
        restoration; the half-built bridge must not survive as a ghost."""
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        old = net.inventory.lightpaths[conn.lightpath_ids[0]]
        net.controller.bridge_and_roll(conn.connection_id)
        net.sim.schedule(
            10.0, net.controller.cut_link, old.path[0], old.path[1]
        )
        net.run()
        assert conn.state is ConnectionState.UP  # restoration won
        # Exactly one lightpath serves the connection; nothing stranded.
        lightpath_ids = set(net.inventory.lightpaths)
        owned = set(conn.lightpath_ids) | set(
            net.controller._line_lightpath.values()
        )
        assert lightpath_ids <= owned


class TestManualWorldRevival:
    def test_failed_connection_revives_on_repair(self, net, svc):
        net.controller.auto_restore = False
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        a, b = lightpath.path[0], lightpath.path[1]
        net.controller.cut_link(a, b)
        net.run(until=net.sim.now + 3600)
        assert conn.state is ConnectionState.FAILED
        net.controller.repair_link(a, b)
        assert conn.state is ConnectionState.UP
        assert conn.total_outage_s == pytest.approx(3600, rel=0.01)
