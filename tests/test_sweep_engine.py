"""Tests for the scale-out sweep engine: specs, workers, determinism."""

import json
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SweepTimeoutError
from repro.sweep import (
    SweepResult,
    SweepSpec,
    TrialResult,
    run_sweep,
    run_trial,
    seed_table,
)


# -- module-level runners (workers import these by reference) ---------------


def echo_runner(trial):
    """Return the trial's own identity as values: cheap and checkable."""
    return {
        "seed_mod": trial.seed % 1000,
        "x": trial.params.get("x", 0),
        "scale": trial.params.get("scale", 1.0),
    }


def sampling_runner(trial):
    streams = trial.streams()
    draws = [streams.uniform("draw", 0.0, 1.0) for _ in range(5)]
    result = TrialResult(
        values={"mean_draw": sum(draws) / len(draws)},
        samples={"draws": draws},
    )
    result.metrics = {
        "counters": {"trials": 1.0},
        "samples": {"draw": draws},
    }
    return result


def failing_runner(trial):
    if trial.params.get("x", 0) == 2:
        raise ValueError("x=2 is cursed")
    return {"x": trial.params["x"]}


def bad_return_runner(trial):
    return 42


def slow_runner(trial):
    time.sleep(30.0)
    return {}


# -- spec expansion ----------------------------------------------------------


class TestSweepSpec:
    def test_grid_is_sorted_cartesian_product(self):
        spec = SweepSpec(
            name="s",
            runner=echo_runner,
            axes={"b": (1, 2), "a": ("x", "y")},
        )
        assert spec.grid_points() == [
            {"a": "x", "b": 1},
            {"a": "x", "b": 2},
            {"a": "y", "b": 1},
            {"a": "y", "b": 2},
        ]

    def test_trials_expand_grid_outer_repeats_inner(self):
        spec = SweepSpec(
            name="s", runner=echo_runner, axes={"x": (1, 2)}, repeats=3
        )
        trials = spec.trials()
        assert len(trials) == 6
        assert [t.index for t in trials] == list(range(6))
        assert trials[0].trial_id == "s/x=1/rep0"
        assert trials[3].trial_id == "s/x=2/rep0"

    def test_fixed_params_merged_under_axes(self):
        spec = SweepSpec(
            name="s",
            runner=echo_runner,
            axes={"x": (1,)},
            fixed={"scale": 2.0, "x": 99},  # axis value wins
        )
        (trial,) = spec.trials()
        assert trial.params == {"scale": 2.0, "x": 1}

    def test_axisless_spec_still_runs(self):
        spec = SweepSpec(name="s", runner=echo_runner, repeats=2)
        trials = spec.trials()
        assert [t.trial_id for t in trials] == ["s/-/rep0", "s/-/rep1"]

    def test_seeds_are_distinct_and_stable(self):
        spec = SweepSpec(
            name="s", runner=echo_runner, axes={"x": (1, 2, 3)}, repeats=4
        )
        table = seed_table(spec)
        assert len(set(table.values())) == len(table) == 12
        assert table == seed_table(spec)  # derivation is pure

    def test_base_seed_changes_every_trial_seed(self):
        kwargs = dict(name="s", runner=echo_runner, axes={"x": (1, 2)})
        a = seed_table(SweepSpec(base_seed=1, **kwargs))
        b = seed_table(SweepSpec(base_seed=2, **kwargs))
        assert all(a[key] != b[key] for key in a)

    def test_lambda_runner_rejected(self):
        with pytest.raises(ConfigurationError, match="lambda"):
            SweepSpec(name="s", runner=lambda t: {})

    def test_closure_runner_rejected(self):
        def local_runner(trial):
            return {}

        with pytest.raises(ConfigurationError, match="module-level"):
            SweepSpec(name="s", runner=local_runner)

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="no values"):
            SweepSpec(name="s", runner=echo_runner, axes={"x": ()})

    def test_bad_repeats_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(name="s", runner=echo_runner, repeats=0)

    def test_from_dict_resolves_study(self):
        spec = SweepSpec.from_dict(
            {
                "name": "custom",
                "study": "availability",
                "axes": {"auto_restore": [True, False]},
                "repeats": 2,
                "base_seed": 7,
            }
        )
        assert spec.name == "custom"
        assert spec.repeats == 2
        assert len(spec.trials()) == 4

    def test_from_dict_missing_key(self):
        with pytest.raises(ConfigurationError, match="missing key"):
            SweepSpec.from_dict({"name": "x"})

    def test_unknown_study_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown study"):
            SweepSpec.from_dict({"name": "x", "study": "nope"})


class TestSeedSpawnProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        axis_size=st.integers(min_value=1, max_value=6),
        repeats=st.integers(min_value=1, max_value=6),
        base_seed=st.integers(min_value=0, max_value=2**32),
    )
    def test_trial_seeds_never_collide(self, axis_size, repeats, base_seed):
        spec = SweepSpec(
            name="prop",
            runner=echo_runner,
            axes={"x": tuple(range(axis_size))},
            repeats=repeats,
            base_seed=base_seed,
        )
        seeds = [t.seed for t in spec.trials()]
        assert len(set(seeds)) == len(seeds)

    @settings(max_examples=25, deadline=None)
    @given(base_seed=st.integers(min_value=0, max_value=2**32))
    def test_shard_spawned_substreams_never_collide(self, base_seed):
        """16 shards x 64 trial substreams: every master seed distinct.

        The sharded network derives each shard's stream family with
        ``spawn("shard:<region>")`` and the shard benchmark derives each
        trial's with a further spawn; a collision anywhere would let two
        shards (or two trials) replay each other's randomness.
        """
        from repro.sim.randomness import RandomStreams
        from repro.topo.hierarchy import region_name

        root = RandomStreams(base_seed)
        masters = [base_seed]
        for index in range(16):
            shard = root.spawn(f"shard:{region_name(index)}")
            masters.append(shard.master_seed)
            masters.extend(
                shard.spawn(f"trial:{trial}").master_seed
                for trial in range(64)
            )
        assert len(set(masters)) == len(masters)


# -- trial execution ---------------------------------------------------------


class TestRunTrial:
    def _trial(self, runner, **params):
        spec = SweepSpec(
            name="t", runner=runner, axes={k: (v,) for k, v in params.items()}
        )
        return spec.trials()[0]

    def test_mapping_becomes_values(self):
        result = run_trial(self._trial(echo_runner, x=5))
        assert result.error is None
        assert result.values["x"] == 5
        assert result.trial_id == "t/x=5/rep0"
        assert result.index == 0

    def test_trial_result_identity_overwritten(self):
        result = run_trial(self._trial(sampling_runner))
        assert result.trial_id == "t/-/rep0"
        assert result.seed != 0
        assert len(result.samples["draws"]) == 5

    def test_exception_becomes_error_result(self):
        result = run_trial(self._trial(failing_runner, x=2))
        assert result.error == "ValueError: x=2 is cursed"
        assert result.values == {}

    def test_bad_return_type_rejected(self):
        with pytest.raises(ConfigurationError, match="expected a"):
            run_trial(self._trial(bad_return_runner))


# -- sweeps, serial and parallel ---------------------------------------------


class TestRunSweep:
    def test_serial_results_in_trial_order(self):
        spec = SweepSpec(
            name="s", runner=echo_runner, axes={"x": (3, 1, 2)}, repeats=2
        )
        result = run_sweep(spec)
        assert isinstance(result, SweepResult)
        assert [r.index for r in result.results] == list(range(6))
        assert not result.failed

    def test_failures_are_collected_not_raised(self):
        spec = SweepSpec(
            name="s", runner=failing_runner, axes={"x": (1, 2, 3)}
        )
        result = run_sweep(spec)
        assert len(result.failed) == 1
        assert result.failed[0].params["x"] == 2

    def test_grouped_values_mean_over_repeats(self):
        spec = SweepSpec(
            name="s", runner=echo_runner, axes={"x": (1, 2)}, repeats=3
        )
        grouped = run_sweep(spec).grouped_values()
        assert set(grouped) == {"x=1", "x=2"}
        assert grouped["x=1"]["x"] == 1.0
        assert grouped["x=2"]["x"] == 2.0

    def test_pooled_samples_and_merged_metrics(self):
        spec = SweepSpec(name="s", runner=sampling_runner, repeats=3)
        result = run_sweep(spec)
        assert len(result.pooled_samples()["draws"]) == 15
        merged = result.merged_metrics()
        assert merged.counter("trials") == 3.0
        assert len(merged.samples("draw")) == 15

    def test_aggregate_excludes_wall_clock(self):
        spec = SweepSpec(name="s", runner=echo_runner)
        aggregate = run_sweep(spec).aggregate()
        flat = json.dumps(aggregate)
        assert "elapsed" not in flat
        assert "jobs" not in flat
        assert aggregate["trial_count"] == 1

    def test_bad_jobs_rejected(self):
        spec = SweepSpec(name="s", runner=echo_runner)
        with pytest.raises(ConfigurationError):
            run_sweep(spec, jobs=0)

    def test_parallel_matches_serial_byte_identically(self):
        spec = SweepSpec(
            name="det",
            runner=sampling_runner,
            axes={"x": (1, 2)},
            repeats=3,
            base_seed=42,
        )
        serial = run_sweep(spec, jobs=1)
        parallel = run_sweep(spec, jobs=4)
        assert serial.to_json() == parallel.to_json()
        assert parallel.jobs == 4

    def test_parallel_collects_failures(self):
        spec = SweepSpec(
            name="s", runner=failing_runner, axes={"x": (1, 2, 3)}, repeats=2
        )
        result = run_sweep(spec, jobs=2)
        assert len(result.failed) == 2
        assert all(r.params["x"] == 2 for r in result.failed)

    def test_watchdog_times_out_stuck_pool(self):
        spec = SweepSpec(name="stuck", runner=slow_runner, repeats=2)
        with pytest.raises(SweepTimeoutError, match="no trial completed"):
            run_sweep(spec, jobs=2, timeout_s=0.3)

    def test_real_study_parallel_matches_serial(self):
        """The x9 availability study — real networks built in workers —
        aggregates byte-identically at jobs=1 and jobs=4."""
        from repro.sweep import x9_availability_spec
        from repro.units import DAY

        spec = x9_availability_spec(repeats=2, horizon_s=4 * DAY)
        serial = run_sweep(spec, jobs=1)
        parallel = run_sweep(spec, jobs=4)
        assert not serial.failed and not parallel.failed
        assert serial.to_json() == parallel.to_json()
