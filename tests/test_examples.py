"""Smoke tests: every example script runs clean end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must print a report"
    assert "Traceback" not in result.stderr
