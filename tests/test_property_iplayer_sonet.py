"""Property-based conservation tests for the IP layer and SONET rings."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GriphonError
from repro.iplayer import IpLayer
from repro.legacy import SonetRing
from repro.units import gbps


def build_ip_triangle():
    layer = IpLayer()
    for node in "ABC":
        layer.add_router(node)
    layer.add_adjacency("A", "B", capacity_bps=gbps(10))
    layer.add_adjacency("B", "C", capacity_bps=gbps(10))
    layer.add_adjacency("A", "C", capacity_bps=gbps(10))
    return layer


ip_operation = st.one_of(
    st.tuples(
        st.just("provision"),
        st.sampled_from([("A", "B"), ("B", "C"), ("A", "C")]),
        st.floats(min_value=50e6, max_value=5e9),
    ),
    st.tuples(st.just("release"), st.integers(min_value=0, max_value=20)),
    st.tuples(
        st.just("fail"),
        st.sampled_from([("A", "B"), ("B", "C"), ("A", "C")]),
    ),
    st.tuples(
        st.just("repair"),
        st.sampled_from([("A", "B"), ("B", "C"), ("A", "C")]),
    ),
    st.tuples(st.just("reroute"), st.integers(min_value=0, max_value=20)),
)


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(ip_operation, max_size=30))
def test_ip_layer_reservations_always_balance(ops):
    """Invariant: every adjacency's reserved_bps equals the sum of its
    per-EVC reservations, and never exceeds the sellable rate."""
    layer = build_ip_triangle()
    for op in ops:
        try:
            if op[0] == "provision":
                _, (a, b), rate = op
                layer.provision_evc(a, b, rate)
            elif op[0] == "release":
                _, index = op
                evcs = layer.evcs
                if evcs:
                    layer.release_evc(evcs[index % len(evcs)].evc_id)
            elif op[0] == "fail":
                _, (a, b) = op
                layer.fail_adjacency(a, b)
            elif op[0] == "repair":
                _, (a, b) = op
                layer.repair_adjacency(a, b)
            elif op[0] == "reroute":
                _, index = op
                evcs = layer.evcs
                if evcs:
                    layer.reroute_evc(evcs[index % len(evcs)].evc_id)
        except GriphonError:
            pass  # legitimate rejections do not break invariants
        for pair in (("A", "B"), ("B", "C"), ("A", "C")):
            adjacency = layer.adjacency(*pair)
            assert adjacency.reserved_bps == sum(
                adjacency.owners.values()
            ), "reservation ledger out of sync"
            assert adjacency.reserved_bps <= adjacency.sellable_bps + 1e-6


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(
                st.just("provision"),
                st.sampled_from(
                    [("N", "D"), ("D", "A"), ("A", "C"), ("N", "A"), ("C", "N")]
                ),
                st.integers(min_value=1, max_value=12),
            ),
            st.tuples(st.just("release"), st.integers(min_value=0, max_value=20)),
            st.tuples(st.just("fail"), st.integers(min_value=0, max_value=3)),
            st.tuples(st.just("repair"), st.integers(min_value=0, max_value=3)),
        ),
        max_size=25,
    )
)
def test_sonet_ring_timeslots_always_balance(ops):
    """Invariant: used working+protection timeslots on each span equal
    the sum over circuits of their footprints, and never go negative or
    exceed capacity."""
    ring = SonetRing("R", ["N", "D", "A", "C"], line_sts=48)
    for op in ops:
        try:
            if op[0] == "provision":
                _, (a, b), sts = op
                ring.provision(a, b, sts=sts)
            elif op[0] == "release":
                _, index = op
                circuits = ring.circuits()
                if circuits:
                    ring.release(circuits[index % len(circuits)].circuit_id)
            elif op[0] == "fail":
                ring.fail_span(op[1])
            elif op[0] == "repair":
                ring.repair_span(op[1])
        except GriphonError:
            pass
        # Reconstruct expected usage from the circuit list.
        expected_working = [0] * ring.span_count
        expected_protection = [0] * ring.span_count
        for circuit in ring.circuits():
            if circuit.on_protection:
                spans = [
                    s
                    for s in range(ring.span_count)
                    if s not in circuit.spans
                ]
                for s in spans:
                    expected_protection[s] += circuit.sts
            else:
                for s in circuit.spans:
                    expected_working[s] += circuit.sts
        for span in range(ring.span_count):
            assert ring._working_used[span] == expected_working[span]
            assert ring._protection_used[span] == expected_protection[span]
            assert 0 <= ring._working_used[span] <= ring.working_capacity
            assert 0 <= ring._protection_used[span] <= ring.working_capacity
