"""Differential tests: the pipeline against the serial controller path.

Two layers of evidence that the concurrent pipeline cannot silently
change results:

* **Byte identity at round size 1.**  A pipeline that processes one
  order per round is the serial path with extra steps — same
  connection records, same RWA choices, same blocked reasons, same
  setup timings, byte for byte in a canonical JSON fingerprint.  This
  holds because claims draw no randomness (first-fit assignment), the
  EMS latency draws come from per-lightpath named substreams whose
  relative order is preserved, and planning never mutates inventory.

* **Invariants at any round size.**  Hypothesis drives random order
  traces through round sizes > 1, where batching genuinely reorders
  work; outcomes may then differ from serial (contention is resolved
  per round), but every ticket must settle, accepted connections must
  come up, defers must respect the retry budget, quota must balance,
  and the fault auditor must find no leaked or double-booked resources.
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.connection import ConnectionState
from repro.facade import build_griphon_testbed
from repro.faults import audit_network
from repro.pipeline import TicketState

#: (submit time, premises pair, rate Gbps): mixed wavelength, composite,
#: sub-wavelength, and packet-EVC orders, including same-instant pairs
#: and a late order against a partially loaded network.
TRACE = [
    (0.0, "PREMISES-A", "PREMISES-B", 10),
    (0.0, "PREMISES-A", "PREMISES-C", 12),
    (0.5, "PREMISES-B", "PREMISES-C", 40),
    (0.5, "PREMISES-A", "PREMISES-B", 1),
    (2.0, "PREMISES-A", "PREMISES-C", 0.5),
    (2.0, "PREMISES-B", "PREMISES-C", 12),
    (75.0, "PREMISES-A", "PREMISES-B", 10),
]

PAIRS = [
    ("PREMISES-A", "PREMISES-B"),
    ("PREMISES-A", "PREMISES-C"),
    ("PREMISES-B", "PREMISES-C"),
]


def fingerprint(net, connections):
    """Canonical JSON of everything an order trace produced."""
    data = {}
    for conn in connections:
        lightpaths = [net.inventory.lightpaths[i] for i in conn.lightpath_ids]
        data[conn.connection_id] = {
            "state": conn.state.value,
            "kind": conn.kind.value,
            "blocked": conn.blocked_reason,
            "rate": conn.rate_bps,
            "lightpaths": [
                {
                    "path": list(lp.path),
                    "channels": [s.channel for s in lp.segments],
                    "segments": [list(s.nodes) for s in lp.segments],
                }
                for lp in lightpaths
            ],
            "circuits": list(conn.circuit_ids),
            "evcs": list(conn.evc_ids),
            "setup_s": (
                None
                if conn.setup_duration is None
                else round(conn.setup_duration, 9)
            ),
        }
    data["audit_ok"] = audit_network(net.controller).ok
    data["usage"] = dict(net.controller.admission.usage("csp"))
    return json.dumps(data, sort_keys=True)


def run_serial(seed, trace=TRACE, latency_cv=None):
    net = build_griphon_testbed(seed=seed, latency_cv=latency_cv)
    service = net.service_for("csp", max_connections=64,
                              max_total_rate_gbps=10000)
    out = []
    for t, a, b, rate in trace:
        net.sim.schedule(
            t, lambda a=a, b=b, rate=rate: out.append(
                service.request_connection(a, b, rate)
            )
        )
    net.run()
    return fingerprint(net, out)


def run_pipelined(seed, round_size, trace=TRACE, latency_cv=None, **kwargs):
    net = build_griphon_testbed(seed=seed, latency_cv=latency_cv)
    net.enable_pipeline(round_size=round_size, **kwargs)
    service = net.service_for("csp", max_connections=64,
                              max_total_rate_gbps=10000)
    tickets = []
    for t, a, b, rate in trace:
        net.sim.schedule(
            t, lambda a=a, b=b, rate=rate: tickets.append(
                service.submit_connection(a, b, rate)
            )
        )
    net.run()
    connections = [
        net.controller.connection(ticket.connection_id) for ticket in tickets
    ]
    return net, tickets, connections


# -- round size 1: byte identity with the serial path ------------------------


def test_round_size_1_is_byte_identical_to_serial():
    for seed in (0, 7, 42):
        serial = run_serial(seed)
        net, tickets, connections = run_pipelined(seed, round_size=1)
        assert all(t.state is not TicketState.QUEUED for t in tickets)
        assert fingerprint(net, connections) == serial, f"seed {seed}"


def test_round_size_1_identity_with_latency_noise():
    # Non-zero latency CV exercises the per-substream draw ordering.
    serial = run_serial(11, latency_cv=0.3)
    net, _, connections = run_pipelined(11, round_size=1, latency_cv=0.3)
    assert fingerprint(net, connections) == serial


def test_round_size_1_never_defers():
    # A one-order round has an empty claim overlay, so contention defers
    # are impossible — a precondition of the identity above.
    _, tickets, _ = run_pipelined(0, round_size=1)
    assert all(t.rounds_deferred == 0 for t in tickets)


# -- any round size: invariants under reordering -----------------------------

order_traces = st.lists(
    st.tuples(
        st.sampled_from(PAIRS),
        st.sampled_from([0.5, 1, 10, 12, 40]),
        st.sampled_from([0.0, 0.0, 1.0, 30.0]),
    ),
    min_size=1,
    max_size=10,
)

PIPELINE_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


@PIPELINE_SETTINGS
@given(
    trace=order_traces,
    round_size=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=5),
)
def test_pipeline_invariants_any_round_size(trace, round_size, seed):
    net = build_griphon_testbed(seed=seed)
    net.enable_pipeline(round_size=round_size, max_defers=2)
    service = net.service_for("csp", max_connections=64,
                              max_total_rate_gbps=10000)
    tickets = []
    for (a, b), rate, at in trace:
        net.sim.schedule(
            at, lambda a=a, b=b, rate=rate: tickets.append(
                service.submit_connection(a, b, rate)
            )
        )
    net.run()

    assert len(tickets) == len(trace)
    assert all(t.settled for t in tickets)
    assert net.pipeline.queue_depth() == 0
    accepted = [t for t in tickets if t.state is TicketState.ACCEPTED]
    for ticket in accepted:
        conn = net.controller.connection(ticket.connection_id)
        assert conn.state is ConnectionState.UP
    for ticket in tickets:
        assert ticket.rounds_deferred <= 2
        if ticket.state is TicketState.BLOCKED:
            assert ticket.reason
    # Quota balances: exactly the accepted orders hold admission.
    usage = net.controller.admission.usage("csp")
    assert usage["connections"] == len(accepted)
    assert usage["rate_bps"] == sum(t.rate_bps for t in accepted)
    # The fault auditor is the oracle for leaks/double-booking.
    report = audit_network(net.controller)
    assert report.ok, report.violations
