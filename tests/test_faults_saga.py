"""Integration tests for the compensating setup saga.

A fault injected at any stage of a setup workflow must unwind every
executed step and release every claimed resource (the invariant auditor
is the oracle), composites must settle to DEGRADED when only some
components abort, and restoration / bridge-and-roll must abort cleanly
when the resilient layer gives up mid-rebuild.
"""

import pytest

from repro.core.connection import ConnectionState
from repro.core.service import ServiceDegraded, SetupFailed
from repro.facade import build_griphon_testbed
from repro.faults import FaultPlan, FaultSpec, audit_network
from repro.units import HOUR
from repro.workload import (
    AmplifierFailureInjector,
    OtnSwitchFailureInjector,
    TransponderFailureInjector,
)

PAIR = ("PREMISES-A", "PREMISES-B")


def build(plan=None, seed=7):
    net = build_griphon_testbed(seed=seed, fault_plan=plan)
    return net, net.service_for("acme")


def assert_clean(net):
    report = audit_network(net.controller)
    assert report.ok, str(report)


class TestWaveSetupSaga:
    @pytest.mark.parametrize(
        "stage", ["order", "fxc", "tune", "roadm", "equalize", "verify"]
    )
    def test_failure_at_each_stage_unwinds_completely(self, stage):
        plan = FaultPlan([FaultSpec(command=stage, mode="fail")])
        net, svc = build(plan)
        conn = svc.request_connection(*PAIR, 10)
        net.run()
        assert conn.state is ConnectionState.BLOCKED
        assert conn.blocked_reason.startswith("setup failed")
        outcome = svc.setup_outcome(conn.connection_id)
        assert isinstance(outcome, SetupFailed)
        # Zero residue: no lightpaths registered, quota back to zero,
        # and the hardware agrees with the (empty) inventory.
        assert not net.inventory.lightpaths
        usage = svc.usage()
        assert usage["connections"] == 0
        assert usage["committed_gbps"] == 0
        assert_clean(net)
        counters = net.metrics.counters()
        assert counters["lightpath.setup_aborted"] >= 1
        assert counters["connection.setup_failed"] == 1

    def test_transient_fault_is_retried_transparently(self):
        # A single transient hiccup: the retry wins and the customer
        # sees a normal UP connection.
        plan = FaultPlan(
            [FaultSpec(count=1, mode="transient", command="tune")]
        )
        net, svc = build(plan)
        conn = svc.request_connection(*PAIR, 10)
        net.run()
        assert conn.state is ConnectionState.UP
        assert svc.setup_outcome(conn.connection_id) is None
        counters = net.metrics.counters()
        assert counters["ems.retry"] >= 1
        assert counters["faults.injected.transient"] == 1
        assert_clean(net)

    def test_fault_report_carries_structured_fields(self):
        plan = FaultPlan([FaultSpec(command="tune", mode="fail")])
        net, svc = build(plan)
        conn = svc.request_connection(*PAIR, 10)
        net.run()
        report = svc.fault_report(conn.connection_id)
        assert report.failed_command
        assert report.failed_element


class TestCompositeSettlement:
    def test_otn_failure_degrades_composite(self):
        # 12G = a 10G wavelength plus a groomed OTN circuit; killing
        # only the OTN EMS aborts the circuit and keeps the wave.
        plan = FaultPlan([FaultSpec(ems="otn_ems", mode="fail")])
        net, svc = build(plan)
        conn = svc.request_connection(*PAIR, 12)
        net.run()
        assert conn.state is ConnectionState.DEGRADED
        assert conn.lightpath_ids and not conn.circuit_ids
        outcome = svc.setup_outcome(conn.connection_id)
        assert isinstance(outcome, ServiceDegraded)
        assert outcome.up_components >= 1
        counters = net.metrics.counters()
        assert counters["otn.circuit.setup_aborted"] >= 1
        assert counters["connection.setup_degraded"] == 1
        assert_clean(net)
        # The degraded survivor tears down like any other connection.
        svc.teardown_connection(conn.connection_id)
        net.run()
        assert conn.state is ConnectionState.RELEASED
        assert svc.usage()["connections"] == 0
        assert_clean(net)

    def test_total_failure_blocks_and_unwinds_composite(self):
        plan = FaultPlan([FaultSpec(mode="fail")])
        net, svc = build(plan)
        conn = svc.request_connection(*PAIR, 12)
        net.run()
        assert conn.state is ConnectionState.BLOCKED
        assert isinstance(svc.setup_outcome(conn.connection_id), SetupFailed)
        assert svc.usage()["connections"] == 0
        assert_clean(net)


class TestRecoveryPathSagas:
    def test_restoration_abort_leaves_connection_failed_and_clean(self):
        net, svc = build(FaultPlan())
        conn = svc.request_connection(*PAIR, 10)
        net.run()
        assert conn.state is ConnectionState.UP
        # From now on every EMS command fails hard: the replacement
        # lightpath cannot be built and restoration must give up.
        net.controller.fault_plan.add(
            FaultSpec(mode="fail", after_s=net.sim.now)
        )
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        core = [
            (a, b)
            for a, b in zip(lightpath.path, lightpath.path[1:])
            if not (a.startswith("PREMISES") or b.startswith("PREMISES"))
        ]
        net.controller.cut_link(*core[0])
        net.run()
        assert conn.state is ConnectionState.FAILED
        assert conn.lightpath_ids == []
        assert net.metrics.counters()["restoration.aborted"] == 1
        assert_clean(net)

    def test_bridge_and_roll_abort_keeps_original_up(self):
        net, svc = build(FaultPlan())
        conn = svc.request_connection(*PAIR, 10)
        net.run()
        assert conn.state is ConnectionState.UP
        original = list(conn.lightpath_ids)
        net.controller.fault_plan.add(
            FaultSpec(mode="fail", after_s=net.sim.now)
        )
        net.controller.bridge_and_roll(conn.connection_id)
        net.run()
        # The bridge saga rolled back; traffic never left the old path.
        assert conn.state is ConnectionState.UP
        assert conn.lightpath_ids == original
        assert net.metrics.counters()["bridge_and_roll.aborted"] == 1
        assert_clean(net)

    def test_teardown_is_best_effort_under_faults(self):
        net, svc = build(FaultPlan())
        conn = svc.request_connection(*PAIR, 10)
        net.run()
        net.controller.fault_plan.add(
            FaultSpec(mode="transient", after_s=net.sim.now)
        )
        svc.teardown_connection(conn.connection_id)
        net.run()
        assert conn.state is ConnectionState.RELEASED
        assert not net.inventory.lightpaths
        assert net.metrics.counters()["ems.command.forced"] >= 1
        assert_clean(net)


class TestElementFailures:
    def test_failed_transponder_restores_onto_a_healthy_card(self):
        net, svc = build(None)
        conn = svc.request_connection(*PAIR, 10)
        net.run()
        lp_id = conn.lightpath_ids[0]
        owned = [
            ot.ot_id
            for pool in net.inventory.transponders.values()
            for ot in pool.transponders
            if ot.owner == lp_id
        ]
        net.controller.fail_transponder(owned[0])
        net.run()
        assert net.metrics.counters()["failure.transponder"] == 1
        assert conn.state is ConnectionState.UP
        assert conn.lightpath_ids != [lp_id]
        assert_clean(net)
        net.controller.repair_transponder(owned[0])
        node = owned[0].split(":")[1]
        assert not net.inventory.transponders[node].get(owned[0]).failed

    def test_fail_otn_switch_requires_an_installed_switch(self):
        from repro.errors import EquipmentError

        net, _ = build(None)
        with pytest.raises(EquipmentError):
            net.controller.fail_otn_switch("PREMISES-A")

    def test_element_injectors_fire_and_repair(self):
        net, svc = build(None)
        conn = svc.request_connection(*PAIR, 10)
        net.run()
        injectors = [
            TransponderFailureInjector(
                net.controller, net.streams, 6 * HOUR, stop_at=2 * 24 * HOUR
            ),
            AmplifierFailureInjector(
                net.controller, net.streams, 8 * HOUR, stop_at=2 * 24 * HOUR
            ),
            OtnSwitchFailureInjector(
                net.controller, net.streams, 12 * HOUR, stop_at=2 * 24 * HOUR
            ),
        ]
        net.run(until=3 * 24 * HOUR)
        net.run()
        for injector in injectors:
            assert injector.records, injector.kind
            assert not injector.open_failures, injector.kind
        counters = net.metrics.counters()
        for kind in ("transponder", "amplifier", "otn_switch"):
            assert counters[f"failure.injected.{kind}"] >= 1
            assert counters[f"failure.injected.{kind}"] == counters[
                f"failure.repaired.{kind}"
            ]
        assert_clean(net)
