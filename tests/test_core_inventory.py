"""Tests for the controller's inventory database."""

import pytest

from repro.core.inventory import InventoryDatabase
from repro.errors import ConfigurationError, ResourceError, TopologyError
from repro.optical import Lightpath, WavelengthGrid
from repro.optical.lightpath import Segment
from repro.topo.testbed import build_testbed_graph
from repro.units import ODU_LEVELS, gbps


@pytest.fixture
def inventory():
    return InventoryDatabase(build_testbed_graph(), WavelengthGrid(8))


class TestEquipmentInstallation:
    def test_roadm_degrees_match_topology(self, inventory):
        roadm = inventory.install_roadm("ROADM-I")
        # ROADM-I faces three ROADMs plus PREMISES-A.
        assert roadm.degrees == {
            "ROADM-II",
            "ROADM-III",
            "ROADM-IV",
            "PREMISES-A",
        }

    def test_duplicate_roadm_rejected(self, inventory):
        inventory.install_roadm("ROADM-I")
        with pytest.raises(ConfigurationError):
            inventory.install_roadm("ROADM-I")

    def test_transponders_need_roadm(self, inventory):
        with pytest.raises(ConfigurationError):
            inventory.install_transponders("ROADM-I", gbps(10), 2)
        inventory.install_roadm("ROADM-I")
        inventory.install_transponders("ROADM-I", gbps(10), 2)
        assert len(inventory.transponders["ROADM-I"].free(gbps(10))) == 2

    def test_regens_need_roadm(self, inventory):
        with pytest.raises(ConfigurationError):
            inventory.install_regens("ROADM-I", gbps(10), 1)

    def test_fxc_installation(self, inventory):
        fxc = inventory.install_fxc("ROADM-I", port_count=8)
        assert fxc.port_count == 8
        with pytest.raises(ConfigurationError):
            inventory.install_fxc("ROADM-I")

    def test_nte_installation_and_pop(self, inventory):
        inventory.install_nte("PREMISES-A", "ROADM-I")
        assert inventory.pop_of("PREMISES-A") == "ROADM-I"
        with pytest.raises(ConfigurationError):
            inventory.install_nte("PREMISES-A", "ROADM-I")

    def test_nte_requires_known_pop(self, inventory):
        with pytest.raises(TopologyError):
            inventory.install_nte("PREMISES-X", "ROADM-X")

    def test_unknown_premises_pop(self, inventory):
        with pytest.raises(ResourceError):
            inventory.pop_of("PREMISES-GHOST")

    def test_otn_line_requires_switches(self, inventory):
        with pytest.raises(ConfigurationError):
            inventory.create_otn_line("ROADM-I", "ROADM-IV")
        inventory.install_otn_switch("ROADM-I")
        inventory.install_otn_switch("ROADM-IV")
        line = inventory.create_otn_line(
            "ROADM-I", "ROADM-IV", level=ODU_LEVELS["ODU2"]
        )
        assert line.line_id in inventory.otn_lines
        assert line in inventory.otn_switches["ROADM-I"].lines

    def test_otn_line_ids_unique(self, inventory):
        inventory.install_otn_switch("ROADM-I")
        inventory.install_otn_switch("ROADM-IV")
        a = inventory.create_otn_line("ROADM-I", "ROADM-IV")
        b = inventory.create_otn_line("ROADM-I", "ROADM-IV")
        assert a.line_id != b.line_id


class TestRegistry:
    def make_lightpath(self, inventory):
        return Lightpath(
            inventory.next_lightpath_id(),
            ["ROADM-I", "ROADM-IV"],
            gbps(10),
            segments=[Segment(["ROADM-I", "ROADM-IV"], 0)],
        )

    def test_lightpath_register_forget(self, inventory):
        lp = self.make_lightpath(inventory)
        inventory.register_lightpath(lp)
        assert lp.lightpath_id in inventory.lightpaths
        inventory.forget_lightpath(lp.lightpath_id)
        assert lp.lightpath_id not in inventory.lightpaths

    def test_duplicate_lightpath_rejected(self, inventory):
        lp = self.make_lightpath(inventory)
        inventory.register_lightpath(lp)
        with pytest.raises(ConfigurationError):
            inventory.register_lightpath(lp)

    def test_forget_unknown_lightpath(self, inventory):
        with pytest.raises(ResourceError):
            inventory.forget_lightpath("lp-ghost")

    def test_ids_monotonic(self, inventory):
        assert inventory.next_lightpath_id() == "lp-0"
        assert inventory.next_lightpath_id() == "lp-1"
        assert inventory.next_circuit_id() == "ckt-0"

    def test_lightpaths_using_link(self, inventory):
        lp = self.make_lightpath(inventory)
        inventory.register_lightpath(lp)
        assert inventory.lightpaths_using_link("ROADM-IV", "ROADM-I") == [lp]
        assert inventory.lightpaths_using_link("ROADM-I", "ROADM-III") == []

    def test_roadm_utilization(self, inventory):
        inventory.install_roadm("ROADM-I", add_drop_ports=4)
        roadm = inventory.roadms["ROADM-I"]
        roadm.connect_add_drop(roadm.ports[0].port_id, "ROADM-IV", 0, "lp-0")
        assert inventory.roadm_utilization() == {"ROADM-I": 0.25}
