"""Integration coverage for the SLA remediation loop.

Drives the full detect → impact → remediate → monitor → restore cycle on
the 12-city backbone: reroutes land off the degraded trunk and revert
once it heals, connections with no viable alternate escalate to DEGRADED
with a typed :class:`~repro.api.SlaBreached` and de-escalate on
recovery, scheduled maintenance defers remediation, the utilization gate
refuses headroom-less alternates, and the invariant auditor stays the
oracle after every action.
"""

from repro import api
from repro.core.connection import ConnectionState
from repro.core.gui import render_fault_panel, render_network_view
from repro.faults import DegradationPlan, DegradationSpec
from repro.faults.audit import audit_network
from repro.slo import SloPolicy, default_policies
from repro.slo.bench import (
    build_slo_network,
    bring_up_workload,
    default_degradation_plan,
    network_fingerprint,
    run_slo_trial,
)


def _drift_plan(link="ATL=DFW", start_s=300.0, duration_s=2400.0,
                magnitude_db=8.0):
    plan = DegradationPlan()
    plan.add(DegradationSpec(
        link=link, mode="osnr-drift", start_s=start_s,
        duration_s=duration_s, magnitude_db=magnitude_db,
    ))
    return plan


def _margin_policy():
    return (SloPolicy(name="osnr-margin"),)


class TestRerouteAndRevert:
    def test_reroute_leaves_degraded_link_then_reverts(self):
        net = build_slo_network(0)
        service = net.service_for("t", max_connections=8,
                                  max_total_rate_gbps=1000)
        conn = service.request_connection("DC-CENTRAL", "DC-SOUTH", 10)
        net.run()
        runtime = net.enable_slo(
            plan=_drift_plan(), policies=_margin_policy(),
            audit_each_action=True,
        )
        # Run into the degradation window far enough for the burn-rate
        # windows to trip and the bridge-and-roll to land.
        net.run(until=1500.0)
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        assert conn.state is ConnectionState.UP
        assert ("ATL", "DFW") not in [
            key for seg in lightpath.segments for key in seg.links
        ]
        assert runtime.engine.phase_of(conn.connection_id) == "rerouted"
        # Let the spec end; the engine rolls the connection back.
        net.run()
        lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
        assert conn.state is ConnectionState.UP
        assert runtime.engine.phase_of(conn.connection_id) == "watch"
        counters = net.metrics.counters()
        assert counters["slo.rerouted"] >= 1
        assert counters["slo.reverted"] >= 1
        assert runtime.engine.audit_ok

    def test_reroutes_respect_the_utilization_gate(self):
        result = run_slo_trial(seed=0, policy_on=True)
        assert result["rerouted"] > 0
        assert result["max_reroute_utilization"] < 0.80

    def test_amp_flap_gain_restored_at_plan_end(self):
        plan = DegradationPlan()
        plan.add(DegradationSpec(
            link="LAX=SEA", mode="amp-flap", start_s=0.0,
            duration_s=1200.0, magnitude_db=6.0, period_s=300.0,
        ))
        net = build_slo_network(0)
        net.enable_slo(plan=plan, policies=())
        net.run()
        chain = net.controller.roadm_ems.chain("LAX", "SEA")
        assert chain.gain_error_db == 0.0
        plant = net.inventory.plant
        assert plant.dwdm_link("LAX", "SEA").osnr_penalty_db == 0.0


class TestEscalation:
    def _escalated_network(self):
        """DC-EAST <-> DC-SOUTH rides NYC-DCA-ATL; the northeast conduit
        SRLG covers both NYC exits, so degrading NYC=DCA leaves no
        disjoint alternate and the engine must escalate."""
        net = build_slo_network(0)
        service = net.service_for("t", max_connections=8,
                                  max_total_rate_gbps=1000)
        conn = service.request_connection("DC-EAST", "DC-SOUTH", 10)
        net.run()
        runtime = net.enable_slo(
            plan=_drift_plan(link="DCA=NYC"), policies=_margin_policy(),
            audit_each_action=True,
        )
        return net, service, conn, runtime

    def test_no_alternate_escalates_with_typed_breach(self):
        net, service, conn, runtime = self._escalated_network()
        net.run(until=1500.0)
        assert conn.state is ConnectionState.DEGRADED
        assert conn.degradation_cause.startswith("osnr-drift")
        assert conn.degradation_policy == "osnr-margin"
        outcome = api.classify_record(conn)
        assert isinstance(outcome, api.SlaBreached)
        assert outcome.policy == "osnr-margin"
        assert outcome.margin_db < 2.0
        assert runtime.engine.breaches
        assert runtime.engine.audit_ok

    def test_fault_report_renders_gray_failure_distinctly(self):
        net, service, conn, runtime = self._escalated_network()
        net.run(until=1500.0)
        report = service.fault_report(conn.connection_id)
        assert report.degradation_cause.startswith("osnr-drift")
        assert report.osnr_margin_db is not None
        assert "GRAY DEGRADED" in str(report)
        assert "dB margin" in str(report)
        panel = render_fault_panel(service)
        assert "GRAY DEGRADED" in panel

    def test_network_view_marks_degraded_links(self):
        net, service, conn, runtime = self._escalated_network()
        net.run(until=1500.0)
        view = render_network_view(net.controller)
        assert "DEGRADED -" in view
        assert "FAILED" not in view

    def test_recovery_restores_to_up_and_clears_fields(self):
        net, service, conn, runtime = self._escalated_network()
        net.run()
        assert conn.state is ConnectionState.UP
        assert conn.degradation_cause == ""
        assert conn.degradation_margin_db is None
        assert api.classify_record(conn).__class__ is api.Active
        assert net.metrics.counters()["slo.restored"] >= 1


class TestRunbookGates:
    def test_scheduled_maintenance_defers_remediation(self):
        net = build_slo_network(0)
        service = net.service_for("t", max_connections=8,
                                  max_total_rate_gbps=1000)
        conn = service.request_connection("DC-CENTRAL", "DC-SOUTH", 10)
        net.run()
        # A window on the degraded trunk inside the defer horizon: the
        # maintenance migration will move the traffic, the engine waits.
        net.maintenance.schedule("ATL", "DFW", start_in=3000.0,
                                 duration=600.0)
        runtime = net.enable_slo(
            plan=_drift_plan(), policies=_margin_policy(),
            audit_each_action=True,
        )
        net.run(until=1500.0)
        assert runtime.engine.phase_of(conn.connection_id) == "deferred"
        assert net.metrics.counters()["slo.deferred"] == 1
        assert net.metrics.counters().get("slo.rerouted", 0) == 0

    def test_zero_headroom_gate_forces_escalation(self):
        net = build_slo_network(0)
        service = net.service_for("t", max_connections=8,
                                  max_total_rate_gbps=1000)
        conn = service.request_connection("DC-CENTRAL", "DC-SOUTH", 10)
        net.run()
        net.enable_slo(
            plan=_drift_plan(), policies=_margin_policy(),
            utilization_gate=0.0,
        )
        net.run(until=1500.0)
        assert conn.state is ConnectionState.DEGRADED
        counters = net.metrics.counters()
        assert counters["slo.no_headroom"] >= 1
        assert counters["slo.escalated"] == 1

    def test_global_policy_breach_raises_alert_only(self):
        net = build_slo_network(0)
        bring_up_workload(net)
        policy = SloPolicy(
            name="error-burst", metric="resilient.faults.injected",
            threshold=-1.0, scope="global", orientation="above",
            short_window_s=60.0, long_window_s=60.0,
        )
        runtime = net.enable_slo(
            plan=_drift_plan(), policies=(policy,),
        )
        net.run()
        alerts = [r for r in runtime.engine.records if r.action == "alert"]
        assert alerts and all(r.connection_id == "" for r in alerts)
        assert net.metrics.counters().get("slo.rerouted", 0) == 0


class TestBenchTrial:
    def test_policy_on_cuts_violation_minutes_3x(self):
        off = run_slo_trial(seed=0, policy_on=False)
        on = run_slo_trial(seed=0, policy_on=True)
        assert off["violation_minutes"] >= 3.0 * on["violation_minutes"]
        assert on["audit_violations"] == 0
        assert off["audit_violations"] == 0
        assert on["injector_finished"] and off["injector_finished"]

    def test_empty_plan_is_fingerprint_identical_to_no_subsystem(self):
        bare = build_slo_network(3)
        bring_up_workload(bare)
        bare.run()
        attached = build_slo_network(3)
        bring_up_workload(attached)
        assert attached.enable_slo(plan=DegradationPlan(), policies=()) is None
        attached.run()
        assert network_fingerprint(bare) == network_fingerprint(attached)

    def test_default_plan_exercises_every_mode(self):
        modes = {spec.mode for spec in default_degradation_plan().specs}
        assert modes == {"osnr-drift", "amp-flap", "attenuation-creep"}

    def test_post_trial_network_audits_clean(self):
        net = build_slo_network(0)
        bring_up_workload(net)
        net.enable_slo(plan=default_degradation_plan(),
                       policies=default_policies())
        net.run()
        assert audit_network(net.controller).ok
