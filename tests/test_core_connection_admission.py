"""Tests for connection records, rate decomposition, and admission control."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.admission import AdmissionControl, CustomerProfile
from repro.core.connection import Connection, ConnectionKind, ConnectionState
from repro.core.controller import decompose_rate
from repro.errors import AdmissionError, ConfigurationError, ConnectionStateError
from repro.units import gbps


def make_connection(**kwargs):
    defaults = dict(
        connection_id="conn-0",
        customer="csp",
        premises_a="A",
        premises_b="B",
        rate_bps=gbps(10),
        kind=ConnectionKind.WAVELENGTH,
    )
    defaults.update(kwargs)
    return Connection(**defaults)


class TestConnectionStateMachine:
    def test_happy_path(self):
        conn = make_connection()
        conn.transition(ConnectionState.SETTING_UP)
        conn.transition(ConnectionState.UP)
        conn.transition(ConnectionState.TEARING_DOWN)
        conn.transition(ConnectionState.RELEASED)

    def test_failure_restore_cycle(self):
        conn = make_connection()
        conn.transition(ConnectionState.SETTING_UP)
        conn.transition(ConnectionState.UP)
        conn.transition(ConnectionState.FAILED)
        conn.transition(ConnectionState.RESTORING)
        conn.transition(ConnectionState.UP)

    def test_illegal_transition(self):
        conn = make_connection()
        with pytest.raises(ConnectionStateError):
            conn.transition(ConnectionState.UP)

    def test_blocked_is_terminal(self):
        conn = make_connection()
        conn.transition(ConnectionState.BLOCKED)
        with pytest.raises(ConnectionStateError):
            conn.transition(ConnectionState.SETTING_UP)

    def test_setup_duration(self):
        conn = make_connection(requested_at=10.0)
        assert conn.setup_duration is None
        conn.up_at = 72.0
        assert conn.setup_duration == pytest.approx(62.0)

    def test_outage_accounting(self):
        conn = make_connection()
        conn.begin_outage(100.0)
        conn.begin_outage(105.0)  # idempotent while open
        conn.end_outage(160.0)
        assert conn.total_outage_s == pytest.approx(60.0)
        conn.end_outage(170.0)  # no open outage: no-op
        assert conn.total_outage_s == pytest.approx(60.0)

    def test_str_mentions_rate(self):
        assert "10 Gbps" in str(make_connection())


class TestDecomposeRate:
    def test_paper_example_12g(self):
        """The paper's example: 12G = one 10G wavelength + 2 x 1G OTN."""
        waves, circuits = decompose_rate(gbps(12), [gbps(10), gbps(40)])
        assert waves == [gbps(10)]
        assert circuits == 2

    def test_exact_wavelength(self):
        waves, circuits = decompose_rate(gbps(10), [gbps(10), gbps(40)])
        assert waves == [gbps(10)]
        assert circuits == 0

    def test_forty_gig(self):
        waves, circuits = decompose_rate(gbps(40), [gbps(10), gbps(40)])
        assert waves == [gbps(40)]
        assert circuits == 0

    def test_sub_wavelength_only(self):
        waves, circuits = decompose_rate(gbps(3), [gbps(10), gbps(40)])
        assert waves == []
        assert circuits == 3

    def test_fractional_rate_rounds_up(self):
        waves, circuits = decompose_rate(gbps(0.4), [gbps(10)])
        assert waves == []
        assert circuits == 1

    def test_fifty_gig_mixes(self):
        waves, circuits = decompose_rate(gbps(52), [gbps(10), gbps(40)])
        assert waves == [gbps(40), gbps(10)]
        assert circuits == 2

    def test_no_wavelength_rates(self):
        waves, circuits = decompose_rate(gbps(5), [])
        assert waves == []
        assert circuits == 5

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            decompose_rate(0, [gbps(10)])

    @given(rate=st.floats(min_value=0.1, max_value=200.0))
    def test_decomposition_covers_rate(self, rate):
        waves, circuits = decompose_rate(gbps(rate), [gbps(10), gbps(40)])
        total = sum(waves) + circuits * gbps(1)
        assert total >= gbps(rate) - 1e-3


class TestAdmissionControl:
    @pytest.fixture
    def admission(self):
        control = AdmissionControl()
        control.register_customer(
            CustomerProfile(
                "csp-a",
                max_connections=2,
                max_total_rate_bps=gbps(25),
                premises=["DC-1", "DC-2"],
            )
        )
        return control

    def test_admit_and_usage(self, admission):
        admission.admit("csp-a", "DC-1", "DC-2", gbps(10))
        usage = admission.usage("csp-a")
        assert usage["connections"] == 1
        assert usage["rate_bps"] == gbps(10)

    def test_duplicate_customer(self, admission):
        with pytest.raises(AdmissionError):
            admission.register_customer(CustomerProfile("csp-a"))

    def test_unknown_customer(self, admission):
        with pytest.raises(AdmissionError):
            admission.admit("ghost", "DC-1", "DC-2", gbps(1))

    def test_premises_restriction(self, admission):
        with pytest.raises(AdmissionError):
            admission.admit("csp-a", "DC-1", "DC-3", gbps(1))

    def test_unrestricted_premises(self):
        control = AdmissionControl()
        control.register_customer(CustomerProfile("csp-b"))
        control.admit("csp-b", "ANY-1", "ANY-2", gbps(1))

    def test_connection_quota(self, admission):
        admission.admit("csp-a", "DC-1", "DC-2", gbps(1))
        admission.admit("csp-a", "DC-1", "DC-2", gbps(1))
        with pytest.raises(AdmissionError):
            admission.admit("csp-a", "DC-1", "DC-2", gbps(1))

    def test_rate_quota(self, admission):
        admission.admit("csp-a", "DC-1", "DC-2", gbps(20))
        with pytest.raises(AdmissionError):
            admission.admit("csp-a", "DC-1", "DC-2", gbps(10))

    def test_release_returns_quota(self, admission):
        admission.admit("csp-a", "DC-1", "DC-2", gbps(20))
        admission.release("csp-a", gbps(20))
        admission.admit("csp-a", "DC-1", "DC-2", gbps(20))

    def test_release_without_admit(self, admission):
        with pytest.raises(AdmissionError):
            admission.release("csp-a", gbps(1))

    def test_isolation_between_customers(self, admission):
        """One customer's usage never counts against another's quota."""
        admission.register_customer(
            CustomerProfile("csp-b", max_connections=2,
                            max_total_rate_bps=gbps(25))
        )
        admission.admit("csp-a", "DC-1", "DC-2", gbps(20))
        admission.admit("csp-b", "X", "Y", gbps(20))  # unaffected by csp-a
        assert admission.usage("csp-b")["rate_bps"] == gbps(20)

    def test_customers_listing(self, admission):
        assert admission.customers() == ["csp-a"]
