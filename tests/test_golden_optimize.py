"""Golden-plan test: the canonical 32-PoP fragmented migration plan.

A checked-in JSON golden (``tests/golden/optimize_plan.json``) pins the
full :class:`~repro.optimize.MigrationPlan` — every move's connection,
old/new route and channels, execution order, dependency edges, and the
objective values — for one canonical fragmentation scenario: seed 21,
32 PoPs, 96 warm orders, two-of-three churned away.

The planner is a pure function of the snapshot, so any drift here means
the planning heuristic (or anything upstream of it: RWA assignment
order, topology generation, churn pattern) changed behavior.  After an
*intentional* change, regenerate and review the diff::

    PYTHONPATH=src python -c \
        "from tests.test_golden_optimize import regenerate; regenerate()"
"""

import json
from pathlib import Path

from repro.optimize import NetworkSnapshot, plan_migrations
from repro.optimize.bench import (
    build_optimize_network,
    fragment_network,
    place_orders,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "optimize_plan.json"

#: The canonical scenario.
SEED = 21
NODE_COUNT = 32
WARM_ORDERS = 96
KEEP_EVERY = 3


def build_payload():
    """Recompute the canonical scenario's plan."""
    net = build_optimize_network(SEED, node_count=NODE_COUNT)
    service = net.service_for(
        "golden", max_connections=4096, max_total_rate_gbps=1000000
    )
    warm = place_orders(net, service, WARM_ORDERS)
    torn = fragment_network(net, service, warm, keep_every=KEEP_EVERY)
    snapshot = NetworkSnapshot.from_controller(net.controller)
    plan = plan_migrations(snapshot)
    return {
        "scenario": {
            "seed": SEED,
            "node_count": NODE_COUNT,
            "warm_orders": WARM_ORDERS,
            "keep_every": KEEP_EVERY,
            "torn_down": torn,
            "demands": len(snapshot.demands),
        },
        "plan": plan.to_dict(),
    }


def regenerate():
    """Rewrite the golden file from the current implementation."""
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(build_payload(), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {GOLDEN_PATH}")


def _load_golden():
    assert GOLDEN_PATH.exists(), (
        f"golden file missing: {GOLDEN_PATH} — run regenerate()"
    )
    return json.loads(GOLDEN_PATH.read_text())


def test_scenario_shape_matches_golden():
    actual = build_payload()["scenario"]
    golden = _load_golden()["scenario"]
    assert actual == golden


def test_plan_matches_golden_exactly():
    actual = build_payload()["plan"]
    golden = _load_golden()["plan"]
    assert actual["objective_before"] == golden["objective_before"]
    assert actual["objective_after"] == golden["objective_after"]
    assert actual["wavelengths_before"] == golden["wavelengths_before"]
    assert actual["wavelengths_after"] == golden["wavelengths_after"]
    assert actual["passes"] == golden["passes"]
    assert actual["frozen_demands"] == golden["frozen_demands"]
    assert len(actual["moves"]) == len(golden["moves"]), (
        f"move count drift: {len(actual['moves'])} vs "
        f"{len(golden['moves'])}"
    )
    for got, want in zip(actual["moves"], golden["moves"]):
        assert got == want, (
            f"move {want['index']} drifted:\n"
            f"  got  {json.dumps(got, sort_keys=True)}\n"
            f"  want {json.dumps(want, sort_keys=True)}"
        )


def test_golden_plan_actually_improves_the_network():
    """The pinned plan must stay a *useful* one — wavelengths reclaimed
    and a strictly better objective — so the golden can't silently pin
    a degenerate empty plan."""
    golden = _load_golden()["plan"]
    assert golden["moves"], "golden scenario must yield moves"
    assert golden["objective_after"] < golden["objective_before"]
    assert golden["wavelengths_after"] < golden["wavelengths_before"]
