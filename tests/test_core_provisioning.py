"""Tests for lightpath claiming, rollback, and workflow timing."""

import pytest

from repro.core.inventory import InventoryDatabase
from repro.core.provisioning import LightpathProvisioner
from repro.core.rwa import RwaEngine
from repro.ems.latency import LatencyModel
from repro.ems.roadm_ems import RoadmEms
from repro.errors import TransponderUnavailableError
from repro.optical import LightpathState, WavelengthGrid
from repro.sim import Process, RandomStreams, Simulator
from repro.topo.testbed import build_testbed_graph
from repro.units import gbps


def make_stack(ots_at=None, ports=8, parallel_ems=False):
    """Inventory + engines on the testbed with deterministic latency."""
    inventory = InventoryDatabase(build_testbed_graph(), WavelengthGrid(8))
    for node in ("ROADM-I", "ROADM-II", "ROADM-III", "ROADM-IV"):
        inventory.install_roadm(node, add_drop_ports=ports)
        count = (ots_at or {}).get(node, 4)
        if count:
            inventory.install_transponders(node, gbps(10), count)
    latency = LatencyModel(RandomStreams(0), cv=0.0)
    roadm_ems = RoadmEms(inventory.roadms, inventory.plant, latency)
    provisioner = LightpathProvisioner(
        inventory, roadm_ems, latency, parallel_ems=parallel_ems
    )
    rwa = RwaEngine(inventory)
    return inventory, provisioner, rwa


class TestClaim:
    def test_claim_allocates_everything(self):
        inventory, provisioner, rwa = make_stack()
        plan = rwa.plan("ROADM-I", "ROADM-IV", gbps(10))
        lightpath = provisioner.claim(plan)
        assert lightpath.lightpath_id in inventory.lightpaths
        assert len(lightpath.ot_ids) == 2
        link = inventory.plant.dwdm_link("ROADM-I", "ROADM-IV")
        assert link.owner_of(0) == lightpath.lightpath_id
        roadm = inventory.roadms["ROADM-I"]
        assert roadm.channel_owner("ROADM-IV", 0) == lightpath.lightpath_id

    def test_claim_express_at_intermediates(self):
        inventory, provisioner, rwa = make_stack()
        plan = rwa.plan(
            "ROADM-I",
            "ROADM-IV",
            gbps(10),
            excluded_links=[("ROADM-I", "ROADM-IV")],
        )
        lightpath = provisioner.claim(plan)
        middle = plan.path[1]
        roadm = inventory.roadms[middle]
        assert (
            roadm.channel_owner(plan.path[0], plan.segments[0].channel)
            == lightpath.lightpath_id
        )

    def test_claim_rolls_back_on_missing_ot(self):
        inventory, provisioner, rwa = make_stack(
            ots_at={"ROADM-I": 4, "ROADM-IV": 0}
        )
        plan = rwa.plan("ROADM-I", "ROADM-IV", gbps(10))
        with pytest.raises(TransponderUnavailableError):
            provisioner.claim(plan)
        # Nothing must remain allocated.
        assert inventory.lightpaths == {}
        assert inventory.plant.dwdm_link("ROADM-I", "ROADM-IV").occupied_channels == set()
        assert all(
            not ot.in_use
            for ot in inventory.transponders["ROADM-I"].transponders
        )

    def test_claim_rolls_back_on_missing_port(self):
        inventory, provisioner, rwa = make_stack(ports=1)
        plan = rwa.plan("ROADM-I", "ROADM-IV", gbps(10))
        roadm = inventory.roadms["ROADM-IV"]
        roadm.connect_add_drop(roadm.ports[0].port_id, "ROADM-I", 5, "squatter")
        with pytest.raises(TransponderUnavailableError):
            provisioner.claim(plan)
        assert inventory.lightpaths == {}

    def test_reuse_ots(self):
        inventory, provisioner, rwa = make_stack()
        plan = rwa.plan("ROADM-I", "ROADM-IV", gbps(10))
        first = provisioner.claim(plan)
        ot_ids = list(first.ot_ids)
        provisioner.release(first)
        plan2 = rwa.plan("ROADM-I", "ROADM-IV", gbps(10))
        second = provisioner.claim(plan2, reuse_ots=ot_ids)
        assert second.ot_ids == ot_ids

    def test_reuse_ots_needs_two(self):
        inventory, provisioner, rwa = make_stack()
        plan = rwa.plan("ROADM-I", "ROADM-IV", gbps(10))
        with pytest.raises(TransponderUnavailableError):
            provisioner.claim(plan, reuse_ots=["OT:ROADM-I:0"])

    def test_release_frees_everything(self):
        inventory, provisioner, rwa = make_stack()
        plan = rwa.plan("ROADM-I", "ROADM-IV", gbps(10))
        lightpath = provisioner.claim(plan)
        provisioner.release(lightpath)
        assert inventory.lightpaths == {}
        link = inventory.plant.dwdm_link("ROADM-I", "ROADM-IV")
        assert link.occupied_channels == set()
        roadm = inventory.roadms["ROADM-I"]
        assert roadm.channel_owner("ROADM-IV", 0) is None


class TestWorkflowTiming:
    def run_setup(self, provisioner, rwa, path_links=()):
        sim = Simulator()
        plan = rwa.plan(
            "ROADM-I", "ROADM-IV", gbps(10), excluded_links=path_links
        )
        lightpath = provisioner.claim(plan)
        Process(sim, provisioner.setup_workflow(lightpath))
        sim.run()
        return lightpath, sim.now

    def test_one_hop_setup_matches_table2(self):
        _, provisioner, rwa = make_stack()
        lightpath, elapsed = self.run_setup(provisioner, rwa)
        assert lightpath.state is LightpathState.UP
        assert elapsed == pytest.approx(62.35)

    def test_two_hop_setup_slower(self):
        _, provisioner, rwa = make_stack()
        _, one_hop = self.run_setup(provisioner, rwa)
        _, two_hop = self.run_setup(
            provisioner, rwa, path_links=[("ROADM-I", "ROADM-IV")]
        )
        assert two_hop > one_hop
        assert 2.0 < (two_hop - one_hop) < 8.0

    def test_teardown_is_about_ten_seconds(self):
        _, provisioner, rwa = make_stack()
        sim = Simulator()
        plan = rwa.plan("ROADM-I", "ROADM-IV", gbps(10))
        lightpath = provisioner.claim(plan)
        Process(sim, provisioner.setup_workflow(lightpath))
        sim.run()
        start = sim.now
        Process(sim, provisioner.teardown_workflow(lightpath))
        sim.run()
        assert sim.now - start == pytest.approx(10.0)
        assert lightpath.state is LightpathState.RELEASED

    def test_parallel_ems_is_faster(self):
        _, sequential, rwa_a = make_stack()
        _, parallel, rwa_b = make_stack(parallel_ems=True)
        _, seq_time = self.run_setup(sequential, rwa_a)
        _, par_time = self.run_setup(parallel, rwa_b)
        assert par_time < seq_time
        # Parallelizing per-stage can't beat the longest single step sum.
        assert par_time > 20.0

    def test_setup_steps_structure(self):
        _, provisioner, rwa = make_stack()
        plan = rwa.plan("ROADM-I", "ROADM-IV", gbps(10))
        lightpath = provisioner.claim(plan)
        steps = provisioner.setup_steps(lightpath)
        stages = [stage for stage, _, _ in steps]
        assert stages[0] == "order"
        assert stages[-1] == "verify"
        assert stages.count("tune") == 2
        assert stages.count("equalize") == lightpath.hop_count

    def test_total_duration_sequential_vs_parallel(self):
        _, provisioner, rwa = make_stack()
        plan = rwa.plan("ROADM-I", "ROADM-IV", gbps(10))
        lightpath = provisioner.claim(plan)
        steps = provisioner.setup_steps(lightpath)
        sequential_total = provisioner.total_duration(steps)
        assert sequential_total == pytest.approx(
            sum(duration for _, _, duration in steps)
        )

    def test_on_up_callback(self):
        _, provisioner, rwa = make_stack()
        sim = Simulator()
        plan = rwa.plan("ROADM-I", "ROADM-IV", gbps(10))
        lightpath = provisioner.claim(plan)
        seen = []
        Process(sim, provisioner.setup_workflow(lightpath, on_up=seen.append))
        sim.run()
        assert seen == [lightpath]
