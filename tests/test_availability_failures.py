"""Tests for availability math and the fiber-cut injector."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.connection import Connection, ConnectionKind, ConnectionState
from repro.errors import ConfigurationError
from repro.facade import build_griphon_testbed
from repro.metrics import (
    availability_from_mtbf_mttr,
    downtime_minutes_per_year,
    fleet_availability,
    measured_availability,
    nines,
)
from repro.units import DAY, HOUR, WEEK, gbps
from repro.workload import FiberCutInjector


class TestAvailabilityMath:
    def test_zero_mttr_is_perfect(self):
        assert availability_from_mtbf_mttr(1000.0, 0.0) == 1.0

    def test_known_value(self):
        # MTBF 99 h, MTTR 1 h -> 99%.
        assert availability_from_mtbf_mttr(99.0, 1.0) == pytest.approx(0.99)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            availability_from_mtbf_mttr(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            availability_from_mtbf_mttr(1.0, -1.0)

    def test_downtime_minutes(self):
        # Three nines ~= 526 minutes per year.
        assert downtime_minutes_per_year(0.999) == pytest.approx(525.96, rel=1e-3)

    def test_downtime_validation(self):
        with pytest.raises(ConfigurationError):
            downtime_minutes_per_year(1.5)

    def test_nines(self):
        assert nines(0.999) == pytest.approx(3.0)
        assert nines(0.0) == 0.0

    def test_nines_validation(self):
        with pytest.raises(ConfigurationError):
            nines(1.0)

    @given(
        mtbf=st.floats(min_value=1.0, max_value=1e9),
        mttr=st.floats(min_value=0.0, max_value=1e9),
    )
    def test_availability_bounds(self, mtbf, mttr):
        value = availability_from_mtbf_mttr(mtbf, mttr)
        assert 0.0 < value <= 1.0

    def test_mttr_dominates_comparison(self):
        """Same cut rate, different restoration: GRIPhoN's one-minute
        MTTR beats manual repair's hours by orders of magnitude of
        downtime."""
        mtbf = 2 * WEEK
        griphon = availability_from_mtbf_mttr(mtbf, 64.0)
        manual = availability_from_mtbf_mttr(mtbf, 8 * HOUR)
        assert nines(griphon) - nines(manual) > 2.0


class TestMeasuredAvailability:
    def make_connection(self, outage_s):
        conn = Connection(
            "c", "csp", "A", "B", gbps(10), ConnectionKind.WAVELENGTH
        )
        conn.total_outage_s = outage_s
        return conn

    def test_no_outage_is_one(self):
        conn = self.make_connection(0.0)
        assert measured_availability(conn, 0.0, DAY) == 1.0

    def test_partial_outage(self):
        conn = self.make_connection(DAY / 4)
        assert measured_availability(conn, 0.0, DAY) == pytest.approx(0.75)

    def test_open_outage_counts_to_window_end(self):
        conn = self.make_connection(0.0)
        conn.begin_outage(DAY / 2)
        assert measured_availability(conn, 0.0, DAY) == pytest.approx(0.5)

    def test_outage_capped_at_window(self):
        conn = self.make_connection(10 * DAY)
        assert measured_availability(conn, 0.0, DAY) == 0.0

    def test_empty_window_rejected(self):
        conn = self.make_connection(0.0)
        with pytest.raises(ConfigurationError):
            measured_availability(conn, 5.0, 5.0)

    def test_fleet_mean(self):
        fleet = [self.make_connection(0.0), self.make_connection(DAY / 2)]
        assert fleet_availability(fleet, 0.0, DAY) == pytest.approx(0.75)

    def test_fleet_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            fleet_availability([], 0.0, DAY)


class TestFiberCutInjector:
    def test_cuts_and_repairs_over_a_month(self):
        net = build_griphon_testbed(seed=61, latency_cv=0.0)
        injector = FiberCutInjector(
            net.controller,
            net.streams,
            mean_time_between_cuts_s=2 * DAY,
            mean_repair_s=6 * HOUR,
            stop_at=28 * DAY,
        )
        net.run(until=35 * DAY)
        net.run()
        assert len(injector.records) > 5
        assert injector.open_cuts == []
        for record in injector.records:
            assert record.repair_duration >= 1 * HOUR
        # The plant is healthy again at the end.
        assert net.inventory.plant.failed_links() == []

    def test_connection_survives_the_month(self):
        net = build_griphon_testbed(seed=62, latency_cv=0.0)
        svc = net.service_for("csp")
        conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        FiberCutInjector(
            net.controller,
            net.streams,
            mean_time_between_cuts_s=2 * DAY,
            stop_at=28 * DAY,
        )
        net.run(until=35 * DAY)
        net.run()
        assert conn.state is ConnectionState.UP
        availability = measured_availability(conn, conn.up_at, 35 * DAY)
        # Restoration keeps availability high despite ~14 cuts.
        assert availability > 0.99

    def test_validation(self):
        net = build_griphon_testbed(seed=63)
        with pytest.raises(ConfigurationError):
            FiberCutInjector(
                net.controller, net.streams, mean_time_between_cuts_s=0
            )
        with pytest.raises(ConfigurationError):
            FiberCutInjector(
                net.controller,
                net.streams,
                mean_time_between_cuts_s=DAY,
                mean_repair_s=0,
            )

    def test_never_cuts_access_links(self):
        net = build_griphon_testbed(seed=64, latency_cv=0.0)
        injector = FiberCutInjector(
            net.controller,
            net.streams,
            mean_time_between_cuts_s=HOUR,
            stop_at=2 * DAY,
        )
        net.run(until=3 * DAY)
        for record in injector.records:
            assert not any(
                node.startswith("PREMISES") for node in record.link
            )
