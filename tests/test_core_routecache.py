"""Unit tests for the generation-stamped LRU route cache."""

import pytest

from repro.core.inventory import InventoryDatabase
from repro.core.routecache import RouteCache, make_route_key
from repro.core.rwa import RwaEngine
from repro.errors import ConfigurationError, NoPathError
from repro.topo.testbed import build_testbed_graph


def make_inventory():
    return InventoryDatabase(build_testbed_graph())


class TestRouteCache:
    def test_put_get_roundtrip(self):
        cache = RouteCache()
        key = make_route_key("A", "B", 4)
        cache.put(key, 1, 0, [["A", "B"]])
        assert cache.get(key, 1, 0) == [["A", "B"]]
        assert cache.hits == 1

    def test_miss_on_unknown_key(self):
        cache = RouteCache()
        assert cache.get(make_route_key("A", "B", 4), 0, 0) is None
        assert cache.misses == 1

    def test_generation_mismatch_invalidates(self):
        cache = RouteCache()
        key = make_route_key("A", "B", 4)
        cache.put(key, 1, 0, [["A", "B"]])
        assert cache.get(key, 2, 0) is None
        assert cache.invalidations == 1
        # The stale entry is evicted, not retried.
        assert len(cache) == 0

    def test_epoch_mismatch_invalidates(self):
        cache = RouteCache()
        key = make_route_key("A", "B", 4)
        cache.put(key, 1, 0, [["A", "B"]])
        assert cache.get(key, 1, 1) is None
        assert cache.invalidations == 1

    def test_lru_eviction_order(self):
        cache = RouteCache(capacity=2)
        k1, k2, k3 = (make_route_key("A", n, 1) for n in ("B", "C", "D"))
        cache.put(k1, 0, 0, [["A"]])
        cache.put(k2, 0, 0, [["A"]])
        cache.get(k1, 0, 0)  # refresh k1
        cache.put(k3, 0, 0, [["A"]])  # evicts k2
        assert cache.get(k2, 0, 0) is None
        assert cache.get(k1, 0, 0) is not None
        assert cache.get(k3, 0, 0) is not None

    def test_returned_list_is_a_copy(self):
        cache = RouteCache()
        key = make_route_key("A", "B", 4)
        cache.put(key, 0, 0, [["A", "B"]])
        cache.get(key, 0, 0).clear()
        assert cache.get(key, 0, 0) == [["A", "B"]]

    def test_key_normalizes_exclusion_order(self):
        k1 = make_route_key("A", "B", 4, [("X", "Y"), ("P", "Q")], ["N1", "N2"])
        k2 = make_route_key("A", "B", 4, [("P", "Q"), ("X", "Y")], ["N2", "N1"])
        assert k1 == k2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            RouteCache(capacity=0)

    def test_stats_shape(self):
        cache = RouteCache(capacity=8)
        cache.get(make_route_key("A", "B", 1), 0, 0)
        stats = cache.stats()
        assert stats["capacity"] == 8
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.0


class TestEngineCaching:
    def test_warm_plan_hits_cache_and_matches(self):
        inventory = make_inventory()
        engine = RwaEngine(inventory)
        cold = engine.plan("ROADM-I", "ROADM-IV", 10e9)
        warm = engine.plan("ROADM-I", "ROADM-IV", 10e9)
        assert warm == cold
        assert engine.route_cache.hits == 1

    def test_cut_and_repair_invalidate(self):
        inventory = make_inventory()
        engine = RwaEngine(inventory)
        direct = engine.plan("ROADM-I", "ROADM-IV", 10e9)
        assert direct.path == ["ROADM-I", "ROADM-IV"]
        inventory.plant.cut_link("ROADM-I", "ROADM-IV")
        detour = engine.plan("ROADM-I", "ROADM-IV", 10e9)
        assert detour.path != direct.path
        inventory.plant.repair_link("ROADM-I", "ROADM-IV")
        again = engine.plan("ROADM-I", "ROADM-IV", 10e9)
        assert again == direct

    def test_add_link_invalidates(self):
        from repro.topo.graph import Link

        inventory = make_inventory()
        engine = RwaEngine(inventory)
        before = engine.plan("ROADM-II", "ROADM-IV", 10e9)
        assert before.hop_count == 2
        inventory.graph.add_link(Link("ROADM-II", "ROADM-IV", length_km=70.0))
        after = engine.plan("ROADM-II", "ROADM-IV", 10e9)
        assert after.path == ["ROADM-II", "ROADM-IV"]

    def test_no_path_outcome_is_cached(self):
        inventory = make_inventory()
        engine = RwaEngine(inventory)
        blocked = [("ROADM-I", "ROADM-IV"), ("ROADM-I", "ROADM-III"),
                   ("ROADM-I", "ROADM-II")]
        for _ in range(2):
            with pytest.raises(NoPathError):
                engine.plan("ROADM-I", "ROADM-IV", 10e9, excluded_links=blocked)
        assert engine.route_cache.hits == 1

    def test_cache_can_be_disabled(self):
        engine = RwaEngine(make_inventory(), route_cache_size=0)
        assert engine.route_cache is None
        plan = engine.plan("ROADM-I", "ROADM-IV", 10e9)
        assert plan.path == ["ROADM-I", "ROADM-IV"]

    def test_shared_cache_instance(self):
        inventory = make_inventory()
        shared = RouteCache(capacity=16)
        a = RwaEngine(inventory, route_cache=shared)
        b = RwaEngine(inventory, route_cache=shared)
        a.plan("ROADM-I", "ROADM-IV", 10e9)
        b.plan("ROADM-I", "ROADM-IV", 10e9)
        assert shared.hits == 1
