"""Per-tenant priority classes at the service edge.

Premium tenants ride a separate queue level: their orders are pumped
before any standard order, hysteresis shedding never refuses them (only
the hard capacity bound does), and the conservation law
``submitted == admitted + shed + throttled`` holds per class.
"""

import pytest

from repro import api
from repro.facade import build_griphon_testbed
from repro.frontend import PRIORITY_CLASSES, STATE_SHEDDING


@pytest.fixture
def net():
    return build_griphon_testbed(seed=5, latency_cv=0.0)


def _frontend(net, **kwargs):
    kwargs.setdefault("round_interval", 0.01)
    kwargs.setdefault("bucket_rate", 1000.0)
    kwargs.setdefault("bucket_burst", 1000.0)
    kwargs.setdefault("premium_tenants", ("vip",))
    return net.enable_frontend(**kwargs)


def _register(net, *tenants):
    for tenant in tenants:
        net.service_for(tenant, max_connections=256,
                        max_total_rate_gbps=10000.0)


class TestPriorityClasses:
    def test_classes_registry_orders_premium_first(self):
        assert PRIORITY_CLASSES == ("premium", "standard")

    def test_tickets_carry_their_class(self, net):
        frontend = _frontend(net)
        _register(net, "vip", "csp")
        assert frontend.priority_of("vip") == "premium"
        assert frontend.priority_of("csp") == "standard"
        vip = frontend.submit("vip", "PREMISES-A", "PREMISES-B", 1e9)
        std = frontend.submit("csp", "PREMISES-A", "PREMISES-B", 1e9)
        assert vip.priority == "premium"
        assert std.priority == "standard"

    def test_premium_rides_through_hysteresis_shedding(self, net):
        frontend = _frontend(net, queue_capacity=8, shed_high=4, shed_low=1,
                             pump_interval=5.0)
        _register(net, "vip", "csp")
        for _ in range(6):
            frontend.submit("csp", "PREMISES-A", "PREMISES-B", 1e9)
        assert frontend.state == STATE_SHEDDING
        std = frontend.submit("csp", "PREMISES-A", "PREMISES-B", 1e9)
        assert std.rejected and std.outcome.code == api.REJECT_SHED
        vip = frontend.submit("vip", "PREMISES-A", "PREMISES-B", 1e9)
        assert not vip.rejected  # shed last
        counters = net.metrics.counters()
        assert counters["frontend.shed.standard"] >= 1
        assert counters.get("frontend.shed.premium", 0) == 0

    def test_hard_capacity_bound_refuses_even_premium(self, net):
        frontend = _frontend(net, queue_capacity=4, shed_high=3, shed_low=1,
                             pump_interval=5.0)
        _register(net, "vip")
        tickets = [
            frontend.submit("vip", "PREMISES-A", "PREMISES-B", 1e9)
            for _ in range(6)
        ]
        refused = [t for t in tickets if t.rejected]
        assert len(refused) == 2  # only the two over capacity
        assert all(t.outcome.code == api.REJECT_SHED for t in refused)
        assert net.metrics.counters()["frontend.shed.premium"] == 2
        assert frontend.queue_depth() <= frontend.capacity

    def test_pump_forwards_premium_before_earlier_standard(self, net):
        frontend = _frontend(net, pump_interval=5.0)
        _register(net, "vip", "csp")
        forwarded = []
        frontend.add_listener(
            lambda ticket, event: (
                forwarded.append(ticket.tenant)
                if event == "settled" else None
            )
        )
        # Standard submissions land first, premium after — yet the pump
        # must drain the premium level first.
        std = frontend.submit("csp", "PREMISES-A", "PREMISES-B", 1e9)
        vip = frontend.submit("vip", "PREMISES-A", "PREMISES-C", 1e9)
        net.run()
        assert forwarded[0] == "vip"
        assert vip.order_ticket is not None and std.order_ticket is not None

    def test_conservation_holds_per_class(self, net):
        frontend = _frontend(net, queue_capacity=6, shed_high=3, shed_low=1,
                             pump_interval=5.0, bucket_rate=1.0,
                             bucket_burst=4.0)
        _register(net, "vip", "csp")
        for _ in range(8):
            frontend.submit("vip", "PREMISES-A", "PREMISES-B", 1e9)
            frontend.submit("csp", "PREMISES-A", "PREMISES-B", 1e9)
        counters = net.metrics.counters()
        for level in PRIORITY_CLASSES:
            submitted = counters.get(f"frontend.submitted.{level}", 0)
            accounted = (
                counters.get(f"frontend.admitted.{level}", 0)
                + counters.get(f"frontend.shed.{level}", 0)
                + counters.get(f"frontend.throttled.{level}", 0)
            )
            assert submitted == accounted > 0
        # The aggregate law still holds over the class split.
        assert counters["frontend.submitted"] == (
            counters["frontend.admitted"]
            + counters["frontend.shed"]
            + counters["frontend.throttled"]
        )

    def test_premium_depth_gauge_reports(self, net):
        frontend = _frontend(net, pump_interval=5.0)
        _register(net, "vip")
        frontend.submit("vip", "PREMISES-A", "PREMISES-B", 1e9)
        gauges = net.metrics.snapshot()["gauges"]
        assert gauges["frontend.queue_depth.premium"] == 1
        net.run()
        assert frontend.queue_depth() == 0
