"""Tests for the random backbone generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim import RandomStreams
from repro.topo.generator import generate_backbone


class TestGeneration:
    def test_node_count(self):
        graph = generate_backbone(RandomStreams(1), node_count=12)
        assert len(graph.nodes) == 12

    def test_deterministic_per_seed(self):
        def edge_set(seed):
            graph = generate_backbone(RandomStreams(seed), node_count=10)
            return {link.key for link in graph.links}

        assert edge_set(5) == edge_set(5)
        assert edge_set(5) != edge_set(6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_backbone(RandomStreams(0), node_count=2)
        with pytest.raises(ConfigurationError):
            generate_backbone(RandomStreams(0), plane_km=0)
        with pytest.raises(ConfigurationError):
            generate_backbone(RandomStreams(0), alpha=0)
        with pytest.raises(ConfigurationError):
            generate_backbone(RandomStreams(0), beta=1.5)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        node_count=st.integers(min_value=3, max_value=24),
    )
    def test_always_connected(self, seed, node_count):
        graph = generate_backbone(RandomStreams(seed), node_count=node_count)
        names = [node.name for node in graph.nodes]
        for name in names[1:]:
            graph.shortest_path(names[0], name)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        node_count=st.integers(min_value=3, max_value=24),
    )
    def test_minimum_degree_two(self, seed, node_count):
        graph = generate_backbone(RandomStreams(seed), node_count=node_count)
        for node in graph.nodes:
            assert graph.degree(node.name) >= 2

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_links_have_positive_length_and_srlgs(self, seed):
        graph = generate_backbone(RandomStreams(seed), node_count=12)
        for link in graph.links:
            assert link.length_km >= 25.0
            assert link.srlgs

    def test_usable_by_the_full_stack(self):
        """A generated mesh drops straight into the controller stack."""
        from repro.core.inventory import InventoryDatabase
        from repro.core.rwa import RwaEngine
        from repro.optical import WavelengthGrid
        from repro.units import gbps

        graph = generate_backbone(RandomStreams(9), node_count=10,
                                  plane_km=1500.0)
        inventory = InventoryDatabase(graph, WavelengthGrid(16))
        for node in graph.nodes:
            inventory.install_roadm(node.name, add_drop_ports=4)
            inventory.install_transponders(node.name, gbps(10), 2)
        engine = RwaEngine(inventory)
        names = sorted(node.name for node in graph.nodes)
        plan = engine.plan(names[0], names[-1], gbps(10))
        assert plan.path[0] == names[0]
        assert plan.path[-1] == names[-1]


class TestLatencyHelper:
    def test_path_latency(self):
        from repro.topo.testbed import build_testbed_graph

        graph = build_testbed_graph()
        latency = graph.path_latency_s(["ROADM-I", "ROADM-IV"])
        # 80 km at ~4.9 us/km.
        assert latency == pytest.approx(80 * 4.9e-6)
