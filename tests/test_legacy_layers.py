"""Tests for the legacy SONET / W-DCS / EVC layers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import (
    CapacityExceededError,
    ConfigurationError,
    ResourceError,
)
from repro.legacy import (
    SonetRing,
    WidebandDcs,
    provision_epl,
    sts1_count_for_rate,
)
from repro.legacy.sonet import PROTECTION_SWITCH_TIME_S
from repro.units import DS1_RATE, gbps, mbps


@pytest.fixture
def ring():
    return SonetRing("R1", ["NYC", "DCA", "ATL", "CHI"], line_sts=48)


class TestSonetRingConstruction:
    def test_span_count_equals_nodes(self, ring):
        assert ring.span_count == 4

    def test_working_is_half_line(self, ring):
        assert ring.working_capacity == 24

    def test_too_few_nodes(self):
        with pytest.raises(ConfigurationError):
            SonetRing("R", ["NYC"])

    def test_duplicate_nodes(self):
        with pytest.raises(ConfigurationError):
            SonetRing("R", ["NYC", "NYC"])

    def test_odd_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            SonetRing("R", ["A", "B"], line_sts=3)


class TestSonetProvisioning:
    def test_takes_short_direction_when_equal(self, ring):
        circuit = ring.provision("NYC", "DCA", sts=3)
        assert circuit.spans == [0]
        assert ring.working_free(0) == 21

    def test_capacity_aware_direction_choice(self, ring):
        # Fill the short way so the next circuit routes the long way.
        ring.provision("NYC", "DCA", sts=24)
        circuit = ring.provision("NYC", "DCA", sts=1)
        assert circuit.spans == [1, 2, 3]

    def test_full_ring_blocks(self, ring):
        ring.provision("NYC", "DCA", sts=24)
        ring.provision("DCA", "NYC", sts=24)  # takes the other arc
        with pytest.raises(CapacityExceededError):
            ring.provision("NYC", "DCA", sts=1)

    def test_bad_arguments(self, ring):
        with pytest.raises(ConfigurationError):
            ring.provision("NYC", "NYC")
        with pytest.raises(ConfigurationError):
            ring.provision("NYC", "SEA")
        with pytest.raises(ConfigurationError):
            ring.provision("NYC", "DCA", sts=0)

    def test_release_returns_capacity(self, ring):
        circuit = ring.provision("NYC", "DCA", sts=5)
        ring.release(circuit.circuit_id)
        assert ring.working_free(0) == 24

    def test_release_unknown(self, ring):
        with pytest.raises(ResourceError):
            ring.release("ghost")

    @given(sts=st.integers(min_value=1, max_value=24))
    def test_provision_release_is_lossless(self, sts):
        ring = SonetRing("R", ["A", "B", "C"], line_sts=48)
        before = [ring.working_free(s) for s in range(ring.span_count)]
        circuit = ring.provision("A", "C", sts=sts)
        ring.release(circuit.circuit_id)
        after = [ring.working_free(s) for s in range(ring.span_count)]
        assert before == after


class TestSonetProtection:
    def test_protection_switch_is_subsecond_constant(self):
        assert PROTECTION_SWITCH_TIME_S < 1.0

    def test_span_failure_switches_circuits(self, ring):
        circuit = ring.provision("NYC", "DCA", sts=2)
        switched = ring.fail_span(0)
        assert switched == [circuit]
        assert circuit.on_protection

    def test_unaffected_circuits_stay_working(self, ring):
        affected = ring.provision("NYC", "DCA", sts=1)
        bystander = ring.provision("ATL", "CHI", sts=1)
        ring.fail_span(0)
        assert affected.on_protection
        assert not bystander.on_protection

    def test_double_failure_blocks_protection(self, ring):
        circuit = ring.provision("NYC", "DCA", sts=1)
        ring.fail_span(2)  # pre-existing failure on the protection arc
        switched = ring.fail_span(0)
        assert switched == []
        assert not circuit.on_protection

    def test_repair_reverts(self, ring):
        circuit = ring.provision("NYC", "DCA", sts=2)
        ring.fail_span(0)
        reverted = ring.repair_span(0)
        assert reverted == [circuit]
        assert not circuit.on_protection
        assert ring.working_free(0) == 22

    def test_refail_same_span_is_noop(self, ring):
        ring.provision("NYC", "DCA", sts=1)
        ring.fail_span(0)
        assert ring.fail_span(0) == []

    def test_release_while_on_protection(self, ring):
        circuit = ring.provision("NYC", "DCA", sts=2)
        ring.fail_span(0)
        ring.release(circuit.circuit_id)
        # Protection capacity on the long arc must be returned.
        follower = ring.provision("DCA", "NYC", sts=24)
        assert follower.spans == [1, 2, 3]

    def test_invalid_span(self, ring):
        with pytest.raises(ConfigurationError):
            ring.fail_span(9)


class TestWidebandDcs:
    def test_connect_tracks_capacity(self):
        dcs = WidebandDcs("W1", ds1_capacity=10)
        connection = dcs.connect("officeA", "officeB", ds1_count=2)
        assert connection.rate_bps == pytest.approx(2 * DS1_RATE)
        assert dcs.ds1_free == 6

    def test_exhaustion(self):
        dcs = WidebandDcs("W1", ds1_capacity=2)
        dcs.connect("a", "b", ds1_count=1)
        with pytest.raises(CapacityExceededError):
            dcs.connect("a", "c", ds1_count=1)

    def test_disconnect_returns_capacity(self):
        dcs = WidebandDcs("W1", ds1_capacity=4)
        connection = dcs.connect("a", "b", ds1_count=1)
        dcs.disconnect(connection.connection_id)
        assert dcs.ds1_free == 4
        assert dcs.connections() == []

    def test_validation(self):
        dcs = WidebandDcs("W1")
        with pytest.raises(ConfigurationError):
            dcs.connect("a", "a")
        with pytest.raises(ConfigurationError):
            dcs.connect("a", "b", ds1_count=0)
        with pytest.raises(ResourceError):
            dcs.disconnect("ghost")
        with pytest.raises(ConfigurationError):
            WidebandDcs("W2", ds1_capacity=0)


class TestEthernetPrivateLine:
    def test_gig_e_needs_sts1_21v(self):
        """The textbook VCAT sizing: 1 GbE -> STS-1-21v."""
        assert sts1_count_for_rate(gbps(1)) == 21

    def test_hundred_meg_needs_three(self):
        assert sts1_count_for_rate(mbps(100)) == 3

    def test_rate_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            sts1_count_for_rate(0)

    def test_provision_epl_takes_ring_slots(self, ring):
        epl = provision_epl(ring, "epl-1", "NYC", "DCA", mbps(100))
        assert epl.provisioned
        assert epl.vcat_members == 3
        assert ring.working_free(0) == 21

    def test_epl_too_big_for_ring(self, ring):
        with pytest.raises(CapacityExceededError):
            provision_epl(ring, "epl-1", "NYC", "DCA", gbps(10))

    def test_transport_overhead_positive(self, ring):
        epl = provision_epl(ring, "epl-1", "NYC", "DCA", gbps(1))
        assert 0 < epl.transport_overhead < 0.1
