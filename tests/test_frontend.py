"""The async service frontend: edge gates, backpressure, streaming.

Pins the tentpole properties of :mod:`repro.frontend`:

* the deterministic async runtime (futures resolve as kernel events,
  tasks resume in FIFO order, same seed → same interleaving);
* the three edge gates in order — token-bucket rate limit, *non-mutating*
  quota probe, hysteresis load shedding — every refusal a typed
  :class:`repro.api.Rejected`, never an exception or unbounded queue;
* conservation: ``submitted == admitted + shed + throttled`` for every
  seed (a hypothesis property);
* no starvation: a noisy tenant at 100x its budget cannot degrade a
  compliant tenant's p99 order-to-ACTIVE beyond 2x.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.errors import AdmissionError, ConfigurationError, SimulationError
from repro.facade import build_griphon_testbed
from repro.frontend import (
    STATE_OPEN,
    STATE_SHEDDING,
    BucketSet,
    SimFuture,
    Task,
    TokenBucket,
    gather,
    sleep,
)
from repro.sim.kernel import Simulator


def _p99(samples):
    ordered = sorted(samples)
    return ordered[max(0, int(len(ordered) * 0.99) - 1)]


# -- the deterministic async runtime ----------------------------------------


class TestSimFuture:
    def test_callbacks_fire_as_kernel_events_not_inline(self):
        sim = Simulator()
        future = SimFuture(sim)
        fired = []
        future.add_done_callback(fired.append)
        future.resolve("value")
        assert fired == []  # scheduled, never inline
        sim.run()
        assert fired == ["value"]

    def test_double_resolve_rejected(self):
        future = SimFuture(Simulator())
        future.resolve(1)
        with pytest.raises(SimulationError):
            future.resolve(2)

    def test_result_before_resolve_rejected(self):
        with pytest.raises(SimulationError):
            SimFuture(Simulator()).result()

    def test_callback_after_resolve_still_fires(self):
        sim = Simulator()
        future = SimFuture(sim)
        future.resolve(7)
        fired = []
        future.add_done_callback(fired.append)
        sim.run()
        assert fired == [7]


class TestTask:
    def test_coroutine_sleeps_on_sim_time(self):
        sim = Simulator()
        trace = []

        async def worker(name, delay):
            await sleep(sim, delay)
            trace.append((name, sim.now))

        Task(sim, worker("fast", 1.0))
        Task(sim, worker("slow", 3.0))
        sim.run()
        assert trace == [("fast", 1.0), ("slow", 3.0)]

    def test_gather_preserves_order(self):
        sim = Simulator()

        async def waiter():
            first, second = SimFuture(sim), SimFuture(sim)
            sim.schedule(2.0, first.resolve, "a")
            sim.schedule(1.0, second.resolve, "b")
            return await gather(sim, [first, second])

        task = Task(sim, waiter())
        sim.run()
        assert task.done and task.result == ["a", "b"]

    def test_same_instant_tasks_run_in_creation_order(self):
        sim = Simulator()
        order = []

        async def tagged(tag):
            order.append(tag)

        for tag in ("one", "two", "three"):
            Task(sim, tagged(tag))
        sim.run()
        assert order == ["one", "two", "three"]


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=1.0, burst=2.0, now=0.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # burst spent
        assert bucket.try_take(1.0)  # one token refilled
        assert not bucket.try_take(1.0)

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=3.0, now=0.0)
        assert bucket.available(100.0) == 3.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, burst=1.0, now=0.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, burst=0.0, now=0.0)

    def test_bucket_set_is_lazy(self):
        buckets = BucketSet(rate=1.0, burst=1.0)
        assert len(buckets) == 0
        assert buckets.try_take("tenant-a", 0.0)
        assert len(buckets) == 1  # only the touched tenant materialized


# -- the edge gates ----------------------------------------------------------


@pytest.fixture
def net():
    return build_griphon_testbed(seed=3, latency_cv=0.0)


def _frontend(net, **kwargs):
    kwargs.setdefault("round_interval", 0.01)
    return net.enable_frontend(**kwargs)


class TestEdgeGates:
    def test_rate_limit_throttles_burst_with_typed_rejection(self, net):
        frontend = _frontend(net, bucket_rate=1.0, bucket_burst=2.0)
        net.service_for("csp", max_connections=64)
        tickets = [
            frontend.submit("csp", "PREMISES-A", "PREMISES-B", 1e9)
            for _ in range(3)
        ]
        assert not tickets[0].rejected and not tickets[1].rejected
        assert tickets[2].rejected
        outcome = tickets[2].outcome
        assert isinstance(outcome, api.Rejected)
        assert outcome.code == api.REJECT_RATE_LIMIT
        assert outcome.tenant == "csp"
        counters = net.metrics.counters()
        assert counters["frontend.throttled"] == 1
        assert counters["frontend.throttled.rate_limit"] == 1

    def test_quota_refusal_is_typed_and_counted(self, net):
        frontend = _frontend(net)
        net.service_for("tiny", max_connections=0)
        ticket = frontend.submit("tiny", "PREMISES-A", "PREMISES-B", 1e9)
        assert ticket.rejected
        assert ticket.outcome.code == api.REJECT_QUOTA
        assert "quota" in ticket.outcome.reason
        assert net.metrics.counters()["frontend.throttled.quota"] == 1

    def test_unknown_tenant_is_a_caller_bug(self, net):
        frontend = _frontend(net)
        with pytest.raises(AdmissionError):
            frontend.submit("nobody", "PREMISES-A", "PREMISES-B", 1e9)

    def test_quota_probe_never_mutates_the_ledger(self, net):
        """Regression: the edge probe must behave like ``admission.check``
        — refused (and admitted-but-queued) requests spend no quota."""
        frontend = _frontend(net, bucket_rate=1000.0, bucket_burst=1000.0)
        net.service_for("probe", max_connections=2, max_total_rate_gbps=100.0)
        admission = net.controller.admission
        before = admission.usage("probe")
        # Many probes, including refusals, all at the same instant.
        for _ in range(50):
            frontend.submit("probe", "PREMISES-A", "PREMISES-B", 1e9)
        assert admission.usage("probe") == before
        # The mutating path stays with the backend: run the sim and only
        # then does accepted work appear in the ledger.
        net.run()
        usage = admission.usage("probe")
        assert usage["connections"] <= 2

    def test_shedding_hysteresis_and_hard_bound(self, net):
        frontend = _frontend(
            net,
            queue_capacity=8,
            shed_high=4,
            shed_low=1,
            bucket_rate=1000.0,
            bucket_burst=1000.0,
            pump_interval=5.0,
        )
        net.service_for("csp", max_connections=256,
                        max_total_rate_gbps=10000.0)
        tickets = [
            frontend.submit("csp", "PREMISES-A", "PREMISES-B", 1e9)
            for _ in range(10)
        ]
        # Depth hit shed_high=4 → SHEDDING; everything after is refused.
        assert frontend.state == STATE_SHEDDING
        shed = [t for t in tickets if t.rejected]
        assert all(t.outcome.code == api.REJECT_SHED for t in shed)
        assert len(shed) == 10 - 4
        assert frontend.queue_depth() <= frontend.capacity
        counters = net.metrics.counters()
        assert counters["frontend.shed"] == len(shed)
        assert counters["frontend.shed_transitions"] == 1
        # Draining below shed_low reopens the edge.
        net.run()
        assert frontend.queue_depth() == 0
        assert frontend.state == STATE_OPEN
        late = frontend.submit("csp", "PREMISES-A", "PREMISES-B", 1e9)
        assert not late.rejected

    def test_gauges_report_edge_state(self, net):
        frontend = _frontend(net, queue_capacity=8, shed_high=4, shed_low=1,
                             bucket_rate=1000.0, bucket_burst=1000.0,
                             pump_interval=5.0)
        net.service_for("csp", max_connections=256,
                        max_total_rate_gbps=10000.0)
        for _ in range(6):
            frontend.submit("csp", "PREMISES-A", "PREMISES-B", 1e9)
        gauges = net.metrics.snapshot()["gauges"]
        assert gauges["frontend.queue_depth"] == 4
        assert gauges["frontend.shedding"] == 1
        assert gauges["frontend.tenants"] == 1

    def test_invalid_edge_configuration_rejected(self, net):
        with pytest.raises(ConfigurationError):
            _frontend(net, queue_capacity=0)
        net2 = build_griphon_testbed(seed=3)
        with pytest.raises(ConfigurationError):
            net2.enable_frontend(shed_high=2, shed_low=2, queue_capacity=4)

    def test_enable_frontend_requires_finished_build(self):
        from repro.facade import GriphonNetwork
        from repro.topo.testbed import build_testbed_graph

        net = GriphonNetwork(build_testbed_graph())
        with pytest.raises(ConfigurationError):
            net.enable_frontend()

    def test_enable_frontend_rejects_pipeline_kwargs_when_enabled(self, net):
        net.enable_pipeline()
        with pytest.raises(ConfigurationError):
            net.enable_frontend(round_size=4)


# -- streaming outcomes ------------------------------------------------------


class TestStatusStream:
    def test_await_order_resolves_to_active_without_polling(self, net):
        frontend = _frontend(net)
        net.service_for("csp", max_connections=8)
        seen = []

        async def place_and_wait():
            ticket = frontend.submit("csp", "PREMISES-A", "PREMISES-B", 10e9)
            outcome = await ticket
            seen.append(outcome)
            return outcome

        task = Task(net.sim, place_and_wait())
        net.run()
        assert task.done
        assert isinstance(task.result, api.Active)
        assert seen == [task.result]
        assert net.metrics.counters()["frontend.active"] == 1

    def test_event_stream_vocabulary(self, net):
        frontend = _frontend(net)
        net.service_for("csp", max_connections=8)
        events = []
        frontend.add_listener(
            lambda ticket, event: events.append((ticket.request_id, event))
        )
        ticket = frontend.submit("csp", "PREMISES-A", "PREMISES-B", 10e9)
        net.run()
        assert events == [
            ("req-1", "admitted"),
            ("req-1", "settled"),
            ("req-1", "active"),
        ]
        frontend._intake.teardown(ticket.order_ticket)
        net.run()
        assert events[-1] == ("req-1", "released")

    def test_order_to_active_histogram_has_p99(self, net):
        frontend = _frontend(net)
        net.service_for("csp", max_connections=8)
        frontend.submit("csp", "PREMISES-A", "PREMISES-B", 10e9)
        net.run()
        histogram = net.metrics.snapshot()["histograms"][
            "frontend.order_to_active_s"
        ]
        assert histogram["count"] == 1
        assert histogram["p99"] >= histogram["p50"] > 0

    def test_blocked_order_resolves_with_typed_blocked(self, net):
        frontend = _frontend(net)
        net.service_for("csp", max_connections=8)
        # An endpoint with no NTE → the planner blocks the order.
        ticket = frontend.submit("csp", "PREMISES-A", "ROADM-II", 10e9)
        net.run()
        assert isinstance(ticket.outcome, api.Blocked)


# -- conservation and fairness ----------------------------------------------


class TestConservation:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_every_submission_is_accounted_for(self, seed):
        """shed + admitted + throttled == submitted, for every seed."""
        from repro.frontend.clients import ClientFleet
        from repro.workload.tenants import TenantPopulation

        net = build_griphon_testbed(seed=seed, latency_cv=0.0)
        frontend = net.enable_frontend(
            queue_capacity=16, round_interval=0.01, bucket_rate=2.0
        )
        population = TenantPopulation(50)
        fleet = ClientFleet(
            frontend,
            population,
            net.controller.admission,
            premises=["PREMISES-A", "PREMISES-B", "PREMISES-C"],
            streams=net.streams.spawn("fleet"),
            arrival_rate=30.0,
            duration=5.0,
        )
        fleet.start()
        net.run()
        counters = net.metrics.counters()
        assert counters.get("frontend.submitted", 0) == (
            counters.get("frontend.admitted", 0)
            + counters.get("frontend.shed", 0)
            + counters.get("frontend.throttled", 0)
        )
        # Every admitted order eventually resolves to a typed outcome.
        assert fleet.stats.resolved() == fleet.stats.submitted


def _compliant_latencies(seed, with_noisy):
    """p99 harness: one compliant tenant at a steady trickle, optionally
    a noisy tenant submitting at 100x its request-rate budget."""
    net = build_griphon_testbed(seed=seed, latency_cv=0.0)
    frontend = net.enable_frontend(
        queue_capacity=64, round_interval=0.01, bucket_rate=1.0,
        bucket_burst=4.0,
    )
    net.service_for("compliant", max_connections=2,
                    max_total_rate_gbps=100.0)
    latencies = []
    tickets = []

    def submit_compliant():
        ticket = frontend.submit("compliant", "PREMISES-A", "PREMISES-B", 1e9)
        tickets.append(ticket)
        ticket.future.add_done_callback(
            lambda outcome, _t=ticket: _settle(_t, outcome)
        )

    def _settle(ticket, outcome):
        if isinstance(outcome, api.Active):
            latencies.append(net.sim.now - ticket.submitted_at)
            frontend._intake.teardown(ticket.order_ticket)

    for index in range(6):
        net.sim.schedule_at(100.0 * index, submit_compliant)
    if with_noisy:
        net.service_for("noisy", max_connections=2,
                        max_total_rate_gbps=100.0)

        def flood():
            # 100 submissions per second against a 1/s budget.
            for _ in range(100):
                frontend.submit("noisy", "PREMISES-A", "PREMISES-C", 1e9)

        for tick in range(600):
            net.sim.schedule_at(float(tick), flood)
    net.run()
    return latencies


class TestNoStarvation:
    def test_noisy_tenant_cannot_degrade_compliant_p99(self):
        """A tenant at 100x its budget burns its own bucket (gate 1) and
        its own quota (gate 2) before it can touch the shared queue, so
        the compliant tenant's p99 order-to-ACTIVE stays within 2x."""
        baseline = _compliant_latencies(seed=5, with_noisy=False)
        contended = _compliant_latencies(seed=5, with_noisy=True)
        assert len(baseline) == 6
        # Every compliant order still completes under the flood.
        assert len(contended) == len(baseline)
        assert _p99(contended) <= 2.0 * _p99(baseline)
