"""Tests for arrival processes, demand curves, matrices, and bulk jobs."""

import pytest

from repro.core.connection import ConnectionState
from repro.errors import ConfigurationError
from repro.facade import build_griphon_testbed
from repro.sim import RandomStreams, Simulator
from repro.units import DAY, GBPS, HOUR, TERABYTE
from repro.workload import (
    BulkTransferWorkload,
    DiurnalProfile,
    InteractiveDemand,
    PoissonArrivals,
    synthesize_traffic_matrix,
)


class TestDiurnalProfile:
    def test_peak_at_peak_hour(self):
        profile = DiurnalProfile(base=10.0, amplitude=0.5, peak_hour=14.0)
        assert profile.rate(14 * HOUR) == pytest.approx(15.0)

    def test_trough_opposite_peak(self):
        profile = DiurnalProfile(base=10.0, amplitude=0.5, peak_hour=14.0)
        assert profile.rate(2 * HOUR) == pytest.approx(5.0)

    def test_daily_periodicity(self):
        profile = DiurnalProfile(base=3.0, amplitude=0.3)
        assert profile.rate(5 * HOUR) == pytest.approx(profile.rate(5 * HOUR + DAY))

    def test_bounds(self):
        profile = DiurnalProfile(base=10.0, amplitude=0.8)
        for hour in range(24):
            rate = profile.rate(hour * HOUR)
            assert profile.trough() - 1e-9 <= rate <= profile.peak() + 1e-9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DiurnalProfile(base=0)
        with pytest.raises(ConfigurationError):
            DiurnalProfile(base=1, amplitude=1.5)


class TestPoissonArrivals:
    def test_constant_rate_counts(self):
        sim = Simulator()
        hits = []
        PoissonArrivals(
            sim,
            RandomStreams(1),
            hits.append,
            rate_per_s=1.0,
            stop_at=1000.0,
        )
        sim.run(until=1000.0)
        # ~1000 arrivals expected; allow generous slack.
        assert 850 <= len(hits) <= 1150

    def test_thinned_rate_lower(self):
        sim = Simulator()
        hits = []
        profile = DiurnalProfile(base=0.5, amplitude=0.5)
        PoissonArrivals(
            sim,
            RandomStreams(2),
            hits.append,
            rate_fn=profile.rate,
            max_rate=profile.peak(),
            stop_at=2000.0,
        )
        sim.run(until=2000.0)
        # The first 2000 s sit near the diurnal trough (peak is at 14:00),
        # where the rate is about 0.28/s -> ~560 arrivals; far below the
        # unthinned max-rate bound of 0.75/s (1500 arrivals).
        assert 420 <= len(hits) <= 720

    def test_stop_at_honored(self):
        sim = Simulator()
        hits = []
        PoissonArrivals(
            sim, RandomStreams(3), hits.append, rate_per_s=5.0, stop_at=10.0
        )
        sim.run()
        assert all(t <= 10.0 for t in hits)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            PoissonArrivals(sim, RandomStreams(0), print)
        with pytest.raises(ConfigurationError):
            PoissonArrivals(
                sim, RandomStreams(0), print, rate_fn=lambda t: 1.0
            )
        with pytest.raises(ConfigurationError):
            PoissonArrivals(sim, RandomStreams(0), print, rate_per_s=-1)

    def test_pregenerate_requires_stop_at(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(
                Simulator(),
                RandomStreams(0),
                print,
                rate_per_s=1.0,
                pregenerate=True,
            )

    def test_pregenerate_matches_incremental_constant_rate(self):
        def arrivals(pregenerate):
            sim = Simulator()
            hits = []
            PoissonArrivals(
                sim,
                RandomStreams(7),
                lambda t: hits.append(t),
                rate_per_s=2.0,
                stop_at=500.0,
                pregenerate=pregenerate,
            )
            sim.run()
            return hits

        batched = arrivals(True)
        assert batched == arrivals(False)
        assert len(batched) > 800

    def test_pregenerate_matches_incremental_thinned(self):
        profile = DiurnalProfile(base=0.5, amplitude=0.5)

        def arrivals(pregenerate):
            sim = Simulator()
            hits = []
            PoissonArrivals(
                sim,
                RandomStreams(8),
                lambda t: hits.append(t),
                rate_fn=profile.rate,
                max_rate=profile.peak(),
                stop_at=2000.0,
                pregenerate=pregenerate,
            )
            sim.run()
            return hits

        assert arrivals(True) == arrivals(False)


class TestInteractiveDemand:
    def test_hourly_series_length(self):
        demand = InteractiveDemand(("DC-A", "DC-B"))
        assert len(demand.hourly_series(48)) == 48

    def test_static_beats_tracking_in_capacity_hours(self):
        demand = InteractiveDemand(("DC-A", "DC-B"), base_gbps=5, amplitude=0.6)
        static = demand.capacity_hours_static(24)
        tracking = demand.capacity_hours_tracking(24)
        assert tracking < static

    def test_tracking_covers_demand(self):
        demand = InteractiveDemand(("DC-A", "DC-B"), base_gbps=5, amplitude=0.6)
        assert demand.capacity_hours_tracking(24) >= sum(
            demand.hourly_series(24)
        ) - 1e-6

    def test_validation(self):
        demand = InteractiveDemand(("DC-A", "DC-B"))
        with pytest.raises(ConfigurationError):
            demand.hourly_series(0)
        with pytest.raises(ConfigurationError):
            demand.capacity_hours_tracking(granularity_bps=0)


class TestTrafficMatrix:
    def test_pairs_and_totals(self):
        matrix = synthesize_traffic_matrix(
            ["A", "B", "C"], RandomStreams(1), total_gbps=100
        )
        assert len(matrix.pairs) == 6
        total = matrix.total_bulk_bps() + matrix.total_interactive_bps()
        assert total == pytest.approx(100 * GBPS)

    def test_bulk_dominates(self):
        matrix = synthesize_traffic_matrix(
            ["A", "B", "C"], RandomStreams(1), bulk_share=0.8
        )
        assert matrix.bulk_fraction() == pytest.approx(0.8)

    def test_skewed_pairs(self):
        matrix = synthesize_traffic_matrix(
            ["A", "B", "C", "D", "E"], RandomStreams(5)
        )
        demands = sorted(matrix.bulk.values(), reverse=True)
        assert demands[0] > 3 * demands[-1]  # heavy skew

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            synthesize_traffic_matrix(["A"], RandomStreams(0))
        with pytest.raises(ConfigurationError):
            synthesize_traffic_matrix(["A", "B"], RandomStreams(0), bulk_share=2)
        with pytest.raises(ConfigurationError):
            synthesize_traffic_matrix(["A", "B"], RandomStreams(0), total_gbps=0)


class TestBulkTransferWorkload:
    def make(self, rate_policy="adaptive"):
        net = build_griphon_testbed(seed=3, latency_cv=0.0)
        svc = net.service_for("csp", max_connections=64,
                              max_total_rate_gbps=10000)
        workload = BulkTransferWorkload(
            net.sim,
            net.streams,
            svc,
            premises=["PREMISES-A", "PREMISES-B", "PREMISES-C"],
            mean_volume_bits=2 * TERABYTE,
            rate_policy=rate_policy,
        )
        return net, workload

    def test_job_lifecycle(self):
        net, workload = self.make()
        record = workload.submit_job()
        net.run()
        assert record.completed_at is not None
        assert record.started_at >= record.requested_at
        assert record.completion_time > 0

    def test_connection_torn_down_after_transfer(self):
        net, workload = self.make()
        workload.submit_job()
        net.run()
        live = [
            c
            for c in net.controller.connections.values()
            if c.state is ConnectionState.UP
        ]
        assert live == []

    def test_rate_policy_adaptive(self):
        net, workload = self.make()
        for _ in range(20):
            workload.submit_job()
        rates = {r.rate_bps for r in workload.records}
        assert len(rates) >= 2  # volumes differ enough to pick rates

    def test_heavy_tail_volumes(self):
        net, workload = self.make()
        for _ in range(50):
            workload.submit_job()
        volumes = sorted(r.volume_bits for r in workload.records)
        assert volumes[-1] > 5 * volumes[0]

    def test_blocking_ratio(self):
        net, workload = self.make()
        assert workload.blocking_ratio() == 0.0
        workload.submit_job()
        assert workload.blocking_ratio() in (0.0, 1.0)

    def test_validation(self):
        net, _ = self.make()
        svc = net.service_for("csp2")
        with pytest.raises(ConfigurationError):
            BulkTransferWorkload(net.sim, net.streams, svc, premises=["X"])
        with pytest.raises(ConfigurationError):
            BulkTransferWorkload(
                net.sim, net.streams, svc, premises=["X", "Y"],
                rate_policy="psychic",
            )
