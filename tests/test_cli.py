"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "7", "quickstart"])
        assert args.seed == 7

    def test_table2_iterations(self):
        args = build_parser().parse_args(["table2", "--iterations", "3"])
        assert args.iterations == 3


class TestCommands:
    def test_quickstart(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "setup took" in out
        assert "teardown took" in out
        assert "10 Gbps" in out

    def test_table2(self, capsys):
        assert main(["table2", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "paper mean" in out
        # Three data rows, one per hop count.
        data = [
            line
            for line in out.splitlines()
            if line.strip().startswith(("1 ", "2 ", "3 "))
        ]
        assert len(data) == 3

    def test_trace(self, capsys, tmp_path):
        out_json = tmp_path / "trace.json"
        assert main(
            ["trace", "--iterations", "1", "--json", str(out_json)]
        ) == 0
        out = capsys.readouterr().out
        # The 12G example's span tree...
        assert "12 Gbps" in out
        assert "connection.request" in out
        assert "lightpath.setup" in out
        assert "ems.tune" in out
        # ...and the per-phase Table 2 rows for 1/2/3 hops.
        assert "Table 2 phase breakdown" in out
        data = [
            line
            for line in out.splitlines()
            if line.strip().startswith(("1 ", "2 ", "3 "))
        ]
        assert len(data) == 3
        assert out_json.exists()
        import json

        spans = json.loads(out_json.read_text())
        assert any(s["name"] == "connection.request" for s in spans)

    def test_restore(self, capsys):
        assert main(["restore"]) == 0
        out = capsys.readouterr().out
        assert "restored on" in out
        assert "outage" in out

    def test_operator(self, capsys):
        assert main(["operator"]) == 0
        out = capsys.readouterr().out
        assert "Fiber plant" in out
        assert "Resource pools" in out

    def test_seed_changes_results(self, capsys):
        main(["--seed", "1", "quickstart"])
        first = capsys.readouterr().out
        main(["--seed", "2", "quickstart"])
        second = capsys.readouterr().out
        assert first != second


class TestSweepCommand:
    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "x9"])
        assert args.study == "x9"
        assert args.jobs == 1
        assert args.repeats == 4
        assert args.json is None

    def test_sweep_x9_writes_aggregate(self, capsys, tmp_path):
        out_json = tmp_path / "sweep.json"
        assert main(
            ["sweep", "x9", "--repeats", "1", "--json", str(out_json)]
        ) == 0
        out = capsys.readouterr().out
        assert "sweep x9-availability" in out
        assert "auto_restore=True" in out
        import json

        aggregate = json.loads(out_json.read_text())
        assert aggregate["trial_count"] == 2
        assert not any(t["error"] for t in aggregate["trials"])

    def test_sweep_json_spec_file(self, capsys, tmp_path):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(
                {
                    "name": "mini",
                    "study": "availability",
                    "axes": {"auto_restore": [True]},
                    "fixed": {"horizon_s": 86400.0},
                    "repeats": 2,
                    "base_seed": 5,
                }
            )
        )
        assert main(["sweep", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "sweep mini: 2 trial(s)" in out


class TestShardCommand:
    def test_shard_defaults(self):
        args = build_parser().parse_args(["shard"])
        assert args.regions == 4
        assert args.pops == 8
        assert args.mode == "sharded"

    def test_shard_both_modes_match(self, capsys, tmp_path):
        import json

        out_json = tmp_path / "shard.json"
        assert main(
            [
                "--seed", "3", "shard", "--regions", "2", "--pops", "6",
                "--orders", "3", "--mode", "both", "--json", str(out_json),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "fingerprints match: True" in out
        assert "route-cache" in out
        payload = json.loads(out_json.read_text())
        assert payload["sharded"]["fingerprint"] == (
            payload["monolithic"]["fingerprint"]
        )
        assert payload["sharded"]["audits_ok"]

    def test_sweep_shard_study(self, capsys):
        assert main(["sweep", "shard", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "sweep shard-plan" in out
        assert "route_cache_hits" in out
