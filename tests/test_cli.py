"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "7", "quickstart"])
        assert args.seed == 7

    def test_table2_iterations(self):
        args = build_parser().parse_args(["table2", "--iterations", "3"])
        assert args.iterations == 3


class TestCommands:
    def test_quickstart(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "setup took" in out
        assert "teardown took" in out
        assert "10 Gbps" in out

    def test_table2(self, capsys):
        assert main(["table2", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "paper mean" in out
        lines = [l for l in out.splitlines() if l.strip() and l[0].isdigit() is False]
        # Three data rows, one per hop count.
        data = [l for l in out.splitlines() if l.strip().startswith(("1 ", "2 ", "3 "))]
        assert len(data) == 3

    def test_restore(self, capsys):
        assert main(["restore"]) == 0
        out = capsys.readouterr().out
        assert "restored on" in out
        assert "outage" in out

    def test_operator(self, capsys):
        assert main(["operator"]) == 0
        out = capsys.readouterr().out
        assert "Fiber plant" in out
        assert "Resource pools" in out

    def test_seed_changes_results(self, capsys):
        main(["--seed", "1", "quickstart"])
        first = capsys.readouterr().out
        main(["--seed", "2", "quickstart"])
        second = capsys.readouterr().out
        assert first != second
