"""Property-based integration tests: no resource leaks, ever.

Drives the controller with random sequences of operations — orders at
random rates, teardowns, fiber cuts, repairs, time advancement — then
releases everything and checks the global conservation invariant: apart
from the OTN lines the carrier keeps as infrastructure, every wavelength
channel, transponder, regenerator, NTE interface, and tributary slot is
back in the free pool, and every customer's quota reads zero.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.connection import ConnectionState
from repro.facade import build_griphon_testbed

#: Links of the testbed core that operations may cut/repair.
CORE_LINKS = [
    ("ROADM-I", "ROADM-IV"),
    ("ROADM-I", "ROADM-III"),
    ("ROADM-III", "ROADM-IV"),
    ("ROADM-I", "ROADM-II"),
    ("ROADM-II", "ROADM-III"),
]

PAIRS = [
    ("PREMISES-A", "PREMISES-B"),
    ("PREMISES-A", "PREMISES-C"),
    ("PREMISES-B", "PREMISES-C"),
]

operation = st.one_of(
    st.tuples(
        st.just("request"),
        st.integers(min_value=0, max_value=2),  # pair index
        st.sampled_from([0.3, 1, 3, 10, 12, 40]),  # rate in Gbps
    ),
    st.tuples(st.just("teardown"), st.integers(min_value=0, max_value=30)),
    st.tuples(st.just("cut"), st.integers(min_value=0, max_value=4)),
    st.tuples(st.just("repair"), st.integers(min_value=0, max_value=4)),
    st.tuples(st.just("advance"), st.integers(min_value=1, max_value=600)),
    st.tuples(st.just("bridge"), st.integers(min_value=0, max_value=30)),
    st.tuples(st.just("maintenance"), st.integers(min_value=0, max_value=4)),
)


def teardown_everything(net, svc):
    """Settle the sim, tear down all live connections, repair all links."""
    net.run()
    for a, b in CORE_LINKS:
        net.controller.repair_link(a, b)
    net.run()
    closable = (
        ConnectionState.UP,
        ConnectionState.DEGRADED,
        ConnectionState.FAILED,
        ConnectionState.RESTORING,
    )
    for conn in list(svc.connections()):
        if conn.state in closable:
            svc.teardown_connection(conn.connection_id)
    net.run()


def assert_no_leaks(net):
    """All resources free except those held by carrier OTN lines."""
    controller = net.controller
    # The lightpaths carrying standing OTN lines are infrastructure.
    line_lightpath_ids = set(controller._line_lightpath.values())
    assert set(net.inventory.lightpaths) == line_lightpath_ids
    # Channels: every lit channel belongs to a line lightpath.
    for link in net.inventory.graph.links:
        dwdm = net.inventory.plant.dwdm_link(link.a, link.b)
        for channel in dwdm.occupied_channels:
            assert dwdm.owner_of(channel) in line_lightpath_ids
    # Transponders and regens.
    for pool in net.inventory.transponders.values():
        for ot in pool.transponders:
            assert (not ot.in_use) or ot.owner in line_lightpath_ids
    for pool in net.inventory.regens.values():
        for regen in pool.regenerators:
            assert (not regen.in_use) or regen.owner in line_lightpath_ids
    # OTN tributary slots: no released circuit may hold any.
    for line in net.inventory.otn_lines.values():
        assert line.owners() <= set(net.inventory.circuits)
    assert net.inventory.circuits == {}
    # NTE interfaces.
    for nte in net.inventory.ntes.values():
        assert len(nte.free_interfaces()) == nte.interface_count
    # FXC steering and OTN client ports.
    for fxc in net.inventory.fxcs.values():
        assert fxc.connections() == []
    for switch in net.inventory.otn_switches.values():
        assert len(switch.free_client_ports()) == switch.client_port_count


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=st.lists(operation, max_size=25))
def test_random_operations_never_leak_resources(ops):
    net = build_griphon_testbed(seed=1234, latency_cv=0.0, nte_interfaces=12)
    svc = net.service_for("csp", max_connections=64, max_total_rate_gbps=10000)
    for op in ops:
        kind = op[0]
        if kind == "request":
            _, pair_index, rate = op
            a, b = PAIRS[pair_index]
            svc.request_connection(a, b, rate)
        elif kind == "teardown":
            _, index = op
            net.run()
            live = [
                c
                for c in svc.connections()
                if c.state is ConnectionState.UP
            ]
            if live:
                svc.teardown_connection(
                    live[index % len(live)].connection_id
                )
        elif kind == "cut":
            _, index = op
            a, b = CORE_LINKS[index % len(CORE_LINKS)]
            if (tuple(sorted((a, b)))) not in net.inventory.plant.failed_links():
                net.controller.cut_link(a, b)
        elif kind == "repair":
            _, index = op
            a, b = CORE_LINKS[index % len(CORE_LINKS)]
            net.controller.repair_link(a, b)
        elif kind == "advance":
            _, seconds = op
            net.run(until=net.sim.now + seconds)
        elif kind == "bridge":
            _, index = op
            from repro.errors import GriphonError

            live = [
                c
                for c in svc.connections()
                if c.state is ConnectionState.UP and len(c.lightpath_ids) == 1
                and not c.circuit_ids and not c.evc_ids
            ]
            if live:
                try:
                    net.controller.bridge_and_roll(
                        live[index % len(live)].connection_id
                    )
                except GriphonError:
                    pass  # no disjoint path right now: fine
        elif kind == "maintenance":
            _, index = op
            a, b = CORE_LINKS[index % len(CORE_LINKS)]
            if tuple(sorted((a, b))) not in net.inventory.plant.failed_links():
                net.maintenance.schedule(
                    a, b, start_in=300.0, duration=600.0
                )
    teardown_everything(net, svc)
    assert_no_leaks(net)


@settings(max_examples=10, deadline=None)
@given(
    rates=st.lists(
        st.sampled_from([1, 3, 10, 12, 40]), min_size=1, max_size=6
    )
)
def test_sequential_orders_always_settle(rates):
    """Any mix of rates either comes UP or is cleanly BLOCKED."""
    net = build_griphon_testbed(seed=77, latency_cv=0.0, nte_interfaces=12)
    svc = net.service_for("csp", max_connections=64, max_total_rate_gbps=10000)
    for i, rate in enumerate(rates):
        a, b = PAIRS[i % len(PAIRS)]
        svc.request_connection(a, b, rate)
    net.run()
    for conn in svc.connections():
        assert conn.state in (ConnectionState.UP, ConnectionState.BLOCKED)
        if conn.state is ConnectionState.BLOCKED:
            assert conn.blocked_reason
        else:
            assert conn.setup_duration > 0


@settings(max_examples=10, deadline=None)
@given(
    cut_order=st.permutations([0, 1, 2, 3, 4]),
    repair_order=st.permutations([0, 1, 2, 3, 4]),
)
def test_cut_all_repair_all_restores_service(cut_order, repair_order):
    """After any cut/repair ordering, a connection ends up UP again."""
    net = build_griphon_testbed(seed=88, latency_cv=0.0)
    svc = net.service_for("csp")
    conn = svc.request_connection("PREMISES-A", "PREMISES-C", 10)
    net.run()
    for index in cut_order:
        net.controller.cut_link(*CORE_LINKS[index])
    net.run()
    for index in repair_order:
        net.controller.repair_link(*CORE_LINKS[index])
    net.run()
    assert conn.state is ConnectionState.UP
    lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
    assert net.inventory.plant.path_is_up(lightpath.path)
