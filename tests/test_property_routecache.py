"""Property test: cached RWA planning is indistinguishable from uncached.

Drives random interleavings of ``cut_link`` / ``repair_link`` /
``occupy`` / ``release`` / ``add_link`` against one shared inventory and
checks, after every mutation, that a long-lived cache-enabled
:class:`RwaEngine` produces exactly the plan a fresh uncached engine
computes from scratch — same route, same per-segment wavelengths, same
regen sites, or the same error class when the request is unservable.
"""

import random

import pytest

from repro.core.inventory import InventoryDatabase
from repro.core.rwa import RwaEngine
from repro.errors import NoPathError, WavelengthBlockedError
from repro.sim.randomness import RandomStreams
from repro.topo.generator import generate_backbone
from repro.topo.graph import Link
from repro.units import GBPS


def plan_or_error(engine, source, dest):
    """A comparable outcome: the RwaPlan, or the error class raised."""
    try:
        return engine.plan(source, dest, 10 * GBPS)
    except (NoPathError, WavelengthBlockedError) as exc:
        return type(exc)


def random_mutation(rng, inventory, occupied):
    """Apply one random state change; returns a tag for failure messages."""
    graph = inventory.graph
    plant = inventory.plant
    links = graph.links
    op = rng.choice(["cut", "repair", "occupy", "release", "add_link", "noop"])
    if op == "cut":
        link = rng.choice(links)
        if not plant.dwdm_link(link.a, link.b).failed:
            plant.cut_link(link.a, link.b)
            return f"cut {link.key}"
    elif op == "repair":
        failed = plant.failed_links()
        if failed:
            a, b = rng.choice(failed)
            plant.repair_link(a, b)
            return f"repair {(a, b)}"
    elif op == "occupy":
        link = rng.choice(links)
        dwdm = plant.dwdm_link(link.a, link.b)
        channel = rng.randrange(plant.grid.size)
        if not dwdm.failed and dwdm.owner_of(channel) is None:
            dwdm.occupy(channel, "prop-test")
            occupied.append((link.key, channel))
            return f"occupy {link.key} ch{channel}"
    elif op == "release":
        if occupied:
            key, channel = occupied.pop(rng.randrange(len(occupied)))
            plant.dwdm_link(*key).release(channel, "prop-test")
            return f"release {key} ch{channel}"
    elif op == "add_link":
        names = [node.name for node in graph.nodes]
        a, b = rng.sample(names, 2)
        if b not in graph.neighbors(a):
            graph.add_link(Link(a, b, length_km=rng.uniform(50.0, 800.0)))
            return f"add_link {(a, b)}"
    return "noop"


@pytest.mark.parametrize("seed", [7, 41, 1337])
def test_cached_plans_match_uncached_under_interleavings(seed):
    rng = random.Random(seed)
    graph = generate_backbone(
        RandomStreams(seed), node_count=10, plane_km=1500.0
    )
    inventory = InventoryDatabase(graph)
    cached = RwaEngine(inventory)
    names = sorted(node.name for node in graph.nodes)
    occupied = []

    for step in range(80):
        tag = random_mutation(rng, inventory, occupied)
        source, dest = rng.sample(names, 2)
        fresh = RwaEngine(inventory, route_cache_size=0)
        expected = plan_or_error(fresh, source, dest)
        actual = plan_or_error(cached, source, dest)
        assert actual == expected, (
            f"seed={seed} step={step} after {tag}: "
            f"{source}->{dest} cached={actual!r} uncached={expected!r}"
        )

    # The run must actually have exercised the cache, not just missed.
    assert cached.route_cache.hits > 0
    assert cached.route_cache.invalidations > 0
