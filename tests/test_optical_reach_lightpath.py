"""Tests for the reach model, amplifier chains, and lightpath records."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ConnectionStateError, SignalError
from repro.optical import AmplifierChain, Lightpath, LightpathState, ReachModel
from repro.optical.lightpath import Segment
from repro.topo import Link, NetworkGraph, Node
from repro.units import gbps


def chain_graph(lengths):
    """A linear chain N0-N1-...-Nk with the given link lengths."""
    graph = NetworkGraph()
    graph.add_node(Node("N0"))
    for i, km in enumerate(lengths):
        graph.add_node(Node(f"N{i + 1}"))
        graph.add_link(Link(f"N{i}", f"N{i + 1}", length_km=km))
    return graph


class TestAmplifierChain:
    def test_short_lab_link_has_one_amp(self):
        assert AmplifierChain(60.0).amplifier_count == 1

    def test_long_link_scales_with_span(self):
        assert AmplifierChain(400.0).amplifier_count == 5

    def test_exact_multiple(self):
        assert AmplifierChain(160.0).amplifier_count == 2

    def test_settle_time_scales_with_amps(self):
        short = AmplifierChain(80.0)
        long = AmplifierChain(800.0)
        assert long.transient_settle_time() > short.transient_settle_time()
        assert short.transient_settle_time() == pytest.approx(0.35)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            AmplifierChain(0)
        with pytest.raises(ConfigurationError):
            AmplifierChain(100, span_km=0)
        with pytest.raises(ConfigurationError):
            AmplifierChain(100, settle_per_amp_s=-1)

    @given(km=st.floats(min_value=1, max_value=5000))
    def test_amp_count_positive_and_monotone_in_length(self, km):
        chain = AmplifierChain(km)
        assert chain.amplifier_count >= 1
        longer = AmplifierChain(km + 500)
        assert longer.amplifier_count >= chain.amplifier_count


class TestReachModel:
    def test_default_rates(self):
        model = ReachModel()
        assert model.reach_km(gbps(10)) == 2500.0
        assert model.reach_km(gbps(40)) == 1500.0

    def test_unknown_rate_rejected(self):
        with pytest.raises(SignalError):
            ReachModel().reach_km(gbps(2.5))

    def test_empty_table_rejected(self):
        with pytest.raises(ConfigurationError):
            ReachModel({})

    def test_bad_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            ReachModel({gbps(10): -1})

    def test_needs_regen(self):
        model = ReachModel()
        assert not model.needs_regen(2000, gbps(10))
        assert model.needs_regen(3000, gbps(10))

    def test_no_regen_within_reach(self):
        graph = chain_graph([800, 800])
        sites = ReachModel().regen_sites(graph, ["N0", "N1", "N2"], gbps(10))
        assert sites == []

    def test_regen_placed_before_budget_exceeded(self):
        graph = chain_graph([1200, 1200, 1200])
        sites = ReachModel().regen_sites(
            graph, ["N0", "N1", "N2", "N3"], gbps(10)
        )
        # 1200+1200=2400 fits in 2500, +1200 does not -> regen at N2.
        assert sites == ["N2"]

    def test_forty_gig_needs_more_regens(self):
        graph = chain_graph([1200, 1200, 1200])
        path = ["N0", "N1", "N2", "N3"]
        model = ReachModel()
        assert len(model.regen_sites(graph, path, gbps(40))) > len(
            model.regen_sites(graph, path, gbps(10))
        )

    def test_single_link_beyond_reach_rejected(self):
        graph = chain_graph([3000])
        with pytest.raises(SignalError):
            ReachModel().regen_sites(graph, ["N0", "N1"], gbps(10))

    def test_trivial_path_no_regens(self):
        graph = chain_graph([100])
        assert ReachModel().regen_sites(graph, ["N0"], gbps(10)) == []

    def test_segments_respect_reach_budget(self):
        lengths = [700.0, 900.0, 600.0, 1100.0, 400.0, 800.0]
        graph = chain_graph(lengths)
        path = [f"N{i}" for i in range(len(lengths) + 1)]
        model = ReachModel()
        sites = model.regen_sites(graph, path, gbps(10))
        # Verify each inter-regen segment is within reach.
        boundaries = [path[0]] + sites + [path[-1]]
        indices = [path.index(b) for b in boundaries]
        for start, end in zip(indices, indices[1:]):
            segment_km = graph.path_length_km(path[start : end + 1])
            assert segment_km <= model.reach_km(gbps(10))


class TestLightpath:
    def make(self):
        return Lightpath(
            "lp-1",
            ["ROADM-I", "ROADM-III", "ROADM-IV"],
            gbps(10),
            segments=[Segment(["ROADM-I", "ROADM-III", "ROADM-IV"], 4)],
        )

    def test_accessors(self):
        lp = self.make()
        assert lp.source == "ROADM-I"
        assert lp.destination == "ROADM-IV"
        assert lp.hop_count == 2
        assert lp.channels == [4]

    def test_segment_links(self):
        segment = Segment(["B", "A", "C"], 0)
        assert segment.links == [("A", "B"), ("A", "C")]

    def test_legal_lifecycle(self):
        lp = self.make()
        lp.transition(LightpathState.SETTING_UP)
        lp.transition(LightpathState.UP)
        lp.transition(LightpathState.TEARING_DOWN)
        lp.transition(LightpathState.RELEASED)
        assert lp.state is LightpathState.RELEASED

    def test_failure_and_recovery(self):
        lp = self.make()
        lp.transition(LightpathState.SETTING_UP)
        lp.transition(LightpathState.UP)
        lp.transition(LightpathState.FAILED)
        lp.transition(LightpathState.UP)  # restored
        assert lp.state is LightpathState.UP

    def test_illegal_transition_rejected(self):
        lp = self.make()
        with pytest.raises(ConnectionStateError):
            lp.transition(LightpathState.UP)  # must set up first

    def test_released_is_terminal(self):
        lp = self.make()
        lp.transition(LightpathState.RELEASED)
        with pytest.raises(ConnectionStateError):
            lp.transition(LightpathState.SETTING_UP)

    def test_str_contains_route(self):
        assert "ROADM-I - ROADM-III - ROADM-IV" in str(self.make())
