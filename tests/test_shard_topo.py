"""Three-tier hierarchy: determinism, partition, standalone rebuilds."""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.shard import ShardUnit, build_express_unit, build_region_unit
from repro.topo.hierarchy import (
    EXPRESS,
    build_express_graph,
    build_hierarchy,
    build_region_graph,
    express_link_specs,
    gateway_names,
    region_name,
)
from repro.units import GBPS


def _link_keys(graph):
    return {(link.a, link.b) if link.a <= link.b else (link.b, link.a)
            for link in graph.links}


class TestHierarchyDeterminism:
    def test_same_seed_same_topology(self):
        one = build_hierarchy(seed=5, regions=3, pops_per_region=6,
                              with_premises=True)
        two = build_hierarchy(seed=5, regions=3, pops_per_region=6,
                              with_premises=True)
        assert [n.name for n in one.graph.nodes] == [
            n.name for n in two.graph.nodes
        ]
        assert _link_keys(one.graph) == _link_keys(two.graph)
        assert one.gateways() == two.gateways()
        assert one.express_links == two.express_links

    def test_different_seed_different_mesh(self):
        one = build_hierarchy(seed=5, regions=2, pops_per_region=8)
        two = build_hierarchy(seed=6, regions=2, pops_per_region=8)
        # Node names are positional and identical; the Waxman link sets
        # must differ.
        assert _link_keys(one.graph) != _link_keys(two.graph)

    def test_region_names_and_gateways(self):
        hierarchy = build_hierarchy(seed=0, regions=3, pops_per_region=5,
                                    gateways_per_region=2)
        assert hierarchy.region_names == ["R00", "R01", "R02"]
        assert hierarchy.regions["R01"].gateways == gateway_names(
            "R01", 5, 2
        )
        assert hierarchy.unit_names() == ["R00", "R01", "R02", EXPRESS]


class TestSlicePartition:
    def test_region_and_express_slices_partition_links(self):
        hierarchy = build_hierarchy(seed=9, regions=4, pops_per_region=6,
                                    with_premises=True)
        whole = _link_keys(hierarchy.graph)
        pieces = []
        for name in hierarchy.regions:
            pieces.append(_link_keys(hierarchy.region_graph(name)))
        pieces.append(_link_keys(hierarchy.express_graph()))
        union = set()
        total = 0
        for piece in pieces:
            union |= piece
            total += len(piece)
        assert union == whole
        assert total == len(whole), "a link appeared in two slices"

    def test_express_links_join_distinct_regions(self):
        hierarchy = build_hierarchy(seed=9, regions=4, pops_per_region=6)
        for a, b in hierarchy.express_links:
            assert hierarchy.region_of(a) != hierarchy.region_of(b)


class TestStandaloneRebuild:
    def test_region_graph_rebuilds_identically(self):
        hierarchy = build_hierarchy(seed=13, regions=3, pops_per_region=7)
        for index in range(3):
            name = region_name(index)
            standalone = build_region_graph(13, name, 7)
            sliced = hierarchy.region_graph(name)
            assert {n.name for n in standalone.nodes} == {
                n.name for n in sliced.nodes
            }
            assert _link_keys(standalone) == _link_keys(sliced)

    def test_express_graph_rebuilds_identically(self):
        hierarchy = build_hierarchy(seed=13, regions=3, pops_per_region=7,
                                    gateways_per_region=2)
        standalone = build_express_graph(3, 2, 7)
        sliced = hierarchy.express_graph()
        assert {n.name for n in standalone.nodes} == {
            n.name for n in sliced.nodes
        }
        assert _link_keys(standalone) == _link_keys(sliced)

    def test_single_region_has_no_express(self):
        assert express_link_specs(1, 2, 8) == []
        hierarchy = build_hierarchy(seed=0, regions=1, pops_per_region=4)
        assert hierarchy.unit_names() == ["R00"]

    def test_gateway_count_validation(self):
        with pytest.raises(ConfigurationError):
            gateway_names("R00", 4, 5)


class TestUnitPicklability:
    def test_region_unit_pickle_round_trip(self):
        unit = build_region_unit(21, "R00", 6)
        clone = pickle.loads(pickle.dumps(unit))
        assert isinstance(clone, ShardUnit)
        nodes = sorted(n.name for n in unit.graph.nodes)
        a, b = nodes[0], nodes[-1]
        original = unit.plan(a, b, 10 * GBPS)
        replayed = clone.plan(a, b, 10 * GBPS)
        assert original.path == replayed.path
        assert [s.channel for s in original.segments] == [
            s.channel for s in replayed.segments
        ]

    def test_express_unit_pickle_round_trip(self):
        unit = build_express_unit(3, 2, 6)
        clone = pickle.loads(pickle.dumps(unit))
        assert clone.name == EXPRESS
        assert _link_keys(clone.graph) == _link_keys(unit.graph)

    def test_occupancy_survives_pickling(self):
        unit = build_region_unit(21, "R00", 6)
        nodes = sorted(n.name for n in unit.graph.nodes)
        plan = unit.plan(nodes[0], nodes[-1], 10 * GBPS)
        unit.occupy_plan(plan, "owner-1")
        clone = pickle.loads(pickle.dumps(unit))
        replay = clone.plan(nodes[0], nodes[-1], 10 * GBPS)
        fresh = build_region_unit(21, "R00", 6).plan(
            nodes[0], nodes[-1], 10 * GBPS
        )
        # The clone must remember the occupied channel and avoid it
        # exactly as the original would.
        assert [s.channel for s in replay.segments] != [
            s.channel for s in fresh.segments
        ] or replay.path != fresh.path
