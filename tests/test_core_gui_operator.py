"""Tests for the operator network view."""

import pytest

from repro.core.gui import render_network_view
from repro.facade import build_griphon_testbed


@pytest.fixture
def net():
    return build_griphon_testbed(seed=2, latency_cv=0.0)


class TestOperatorView:
    def test_idle_network(self, net):
        view = render_network_view(net.controller)
        assert "Fiber plant" in view
        assert "Resource pools" in view
        assert "ROADM-I=ROADM-IV" in view
        assert "0/80" in view
        assert "FAILED" not in view

    def test_lit_channels_visible(self, net):
        svc = net.service_for("csp")
        svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        view = render_network_view(net.controller)
        assert "1/80" in view

    def test_ot_usage_visible(self, net):
        svc = net.service_for("csp")
        svc.request_connection("PREMISES-A", "PREMISES-C", 10)
        net.run()
        view = render_network_view(net.controller)
        # 8x10G + 2x40G OTs per node; one 10G in use at each end.
        assert "1/10" in view

    def test_failed_link_flagged(self, net):
        net.controller.auto_restore = False
        net.controller.cut_link("ROADM-I", "ROADM-IV")
        view = render_network_view(net.controller)
        assert "FAILED" in view

    def test_regen_column_present(self, net):
        view = render_network_view(net.controller)
        assert "REGENS IN USE" in view
        assert "0/2" in view
