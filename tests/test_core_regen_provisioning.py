"""Tests for provisioning lightpaths that need OEO regeneration."""

import pytest

from repro.core.inventory import InventoryDatabase
from repro.core.provisioning import LightpathProvisioner
from repro.core.rwa import RwaEngine
from repro.ems.latency import LatencyModel
from repro.ems.roadm_ems import RoadmEms
from repro.errors import TransponderUnavailableError
from repro.optical import LightpathState, WavelengthGrid
from repro.sim import Process, RandomStreams, Simulator
from repro.topo import Link, NetworkGraph, Node
from repro.units import gbps


def long_haul_stack(regens_at_m=2):
    """A 2x2000 km chain A-M-B that forces a regen at M for 10G."""
    graph = NetworkGraph()
    for name in ("A", "M", "B"):
        graph.add_node(Node(name))
    graph.add_link(Link("A", "M", length_km=2000.0))
    graph.add_link(Link("M", "B", length_km=2000.0))
    inventory = InventoryDatabase(graph, WavelengthGrid(8))
    for node in ("A", "M", "B"):
        inventory.install_roadm(node, add_drop_ports=8)
        inventory.install_transponders(node, gbps(10), 4)
    if regens_at_m:
        inventory.install_regens("M", gbps(10), regens_at_m)
    latency = LatencyModel(RandomStreams(0), cv=0.0)
    provisioner = LightpathProvisioner(
        inventory, RoadmEms(inventory.roadms, inventory.plant, latency), latency
    )
    return inventory, provisioner, RwaEngine(inventory)


class TestRegenClaim:
    def test_regen_allocated_and_ports_taken(self):
        inventory, provisioner, rwa = long_haul_stack()
        plan = rwa.plan("A", "B", gbps(10))
        assert plan.regen_sites == ["M"]
        lightpath = provisioner.claim(plan)
        assert len(lightpath.regen_ids) == 1
        regen = inventory.regens["M"].regenerators[0]
        assert regen.in_use
        # The regen site uses two add/drop ports (drop + re-add).
        roadm = inventory.roadms["M"]
        used_ports = [p for p in roadm.ports if p.in_use]
        assert len(used_ports) == 2

    def test_no_regen_available_blocks_and_rolls_back(self):
        inventory, provisioner, rwa = long_haul_stack(regens_at_m=0)
        plan = rwa.plan("A", "B", gbps(10))
        with pytest.raises(TransponderUnavailableError):
            provisioner.claim(plan)
        assert inventory.lightpaths == {}
        assert all(
            not ot.in_use
            for pool in inventory.transponders.values()
            for ot in pool.transponders
        )

    def test_segments_occupy_distinct_links(self):
        inventory, provisioner, rwa = long_haul_stack()
        # Force different channels per segment.
        inventory.plant.dwdm_link("A", "M").occupy(0, "blocker")
        plan = rwa.plan("A", "B", gbps(10))
        lightpath = provisioner.claim(plan)
        assert lightpath.segments[0].channel == 1
        assert lightpath.segments[1].channel == 0
        am = inventory.plant.dwdm_link("A", "M")
        mb = inventory.plant.dwdm_link("M", "B")
        assert am.owner_of(1) == lightpath.lightpath_id
        assert mb.owner_of(0) == lightpath.lightpath_id

    def test_release_frees_regen(self):
        inventory, provisioner, rwa = long_haul_stack()
        lightpath = provisioner.claim(rwa.plan("A", "B", gbps(10)))
        provisioner.release(lightpath)
        assert all(
            not regen.in_use for regen in inventory.regens["M"].regenerators
        )
        roadm = inventory.roadms["M"]
        assert all(not p.in_use for p in roadm.ports)


class TestRegenWorkflow:
    def test_regen_hop_costs_two_add_drops(self):
        _, provisioner, rwa = long_haul_stack()
        lightpath = provisioner.claim(rwa.plan("A", "B", gbps(10)))
        steps = provisioner.setup_steps(lightpath)
        regen_steps = [label for _, label, _ in steps if "regen" in label]
        assert regen_steps == ["regen-drop@M", "regen-add@M"]

    def test_regen_path_slower_than_express_path(self):
        """OEO at an intermediate node takes longer to configure than an
        optical express pass-through."""
        _, provisioner, rwa = long_haul_stack()
        sim = Simulator()
        lightpath = provisioner.claim(rwa.plan("A", "B", gbps(10)))
        Process(sim, provisioner.setup_workflow(lightpath))
        sim.run()
        regen_time = sim.now

        # Same hop count, short links: express instead of regen.
        graph = NetworkGraph()
        for name in ("A", "M", "B"):
            graph.add_node(Node(name))
        graph.add_link(Link("A", "M", length_km=100.0))
        graph.add_link(Link("M", "B", length_km=100.0))
        inventory = InventoryDatabase(graph, WavelengthGrid(8))
        for node in ("A", "M", "B"):
            inventory.install_roadm(node, add_drop_ports=8)
            inventory.install_transponders(node, gbps(10), 4)
        latency = LatencyModel(RandomStreams(0), cv=0.0)
        short_provisioner = LightpathProvisioner(
            inventory,
            RoadmEms(inventory.roadms, inventory.plant, latency),
            latency,
        )
        short_rwa = RwaEngine(inventory)
        sim2 = Simulator()
        lightpath2 = short_provisioner.claim(short_rwa.plan("A", "B", gbps(10)))
        Process(sim2, short_provisioner.setup_workflow(lightpath2))
        sim2.run()
        express_time = sim2.now
        assert regen_time > express_time

    def test_full_lifecycle_with_regen(self):
        _, provisioner, rwa = long_haul_stack()
        sim = Simulator()
        lightpath = provisioner.claim(rwa.plan("A", "B", gbps(10)))
        Process(sim, provisioner.setup_workflow(lightpath))
        sim.run()
        assert lightpath.state is LightpathState.UP
        Process(sim, provisioner.teardown_workflow(lightpath))
        sim.run()
        assert lightpath.state is LightpathState.RELEASED
