"""Tests for advance reservations (calendar BoD)."""

import pytest

from repro.core.calendar import Reservation, ReservationBook, ReservationState
from repro.core.connection import ConnectionState
from repro.errors import AdmissionError, ConfigurationError
from repro.facade import build_griphon_testbed
from repro.units import HOUR


@pytest.fixture
def net():
    return build_griphon_testbed(seed=31, latency_cv=0.0, nte_interfaces=12)


@pytest.fixture
def book(net):
    net.service_for("csp", max_connections=64, max_total_rate_gbps=10000)
    return ReservationBook(net.controller)


class TestBooking:
    def test_booked_then_active_then_completed(self, net, book):
        resv = book.book(
            "csp", "PREMISES-A", "PREMISES-C", 10,
            start=1 * HOUR, end=3 * HOUR,
        )
        assert resv.state is ReservationState.BOOKED
        net.run(until=1.5 * HOUR)
        assert resv.state is ReservationState.ACTIVE
        assert resv.connection.state is ConnectionState.UP
        net.run()
        assert resv.state is ReservationState.COMPLETED
        assert resv.connection.state is ConnectionState.RELEASED

    def test_connection_is_up_by_window_start(self, net, book):
        """Activation leads the window so setup completes in time."""
        resv = book.book(
            "csp", "PREMISES-A", "PREMISES-C", 10,
            start=1 * HOUR, end=2 * HOUR,
        )
        net.run(until=1 * HOUR)
        assert resv.connection is not None
        assert resv.connection.state is ConnectionState.UP

    def test_empty_window_rejected(self, book):
        with pytest.raises(ConfigurationError):
            book.book("csp", "PREMISES-A", "PREMISES-C", 10,
                      start=2 * HOUR, end=2 * HOUR)

    def test_past_window_rejected(self, net, book):
        net.run(until=5 * HOUR)
        with pytest.raises(ConfigurationError):
            book.book("csp", "PREMISES-A", "PREMISES-C", 10,
                      start=1 * HOUR, end=2 * HOUR)

    def test_unknown_customer_rejected(self, book):
        with pytest.raises(AdmissionError):
            book.book("nobody", "PREMISES-A", "PREMISES-C", 10,
                      start=1 * HOUR, end=2 * HOUR)

    def test_negative_lead_rejected(self, net):
        with pytest.raises(ConfigurationError):
            ReservationBook(net.controller, setup_lead_s=-1)

    def test_reservations_listing(self, net, book):
        book.book("csp", "PREMISES-A", "PREMISES-C", 10,
                  start=1 * HOUR, end=2 * HOUR)
        assert len(book.reservations()) == 1
        assert len(book.reservations("csp")) == 1
        assert book.reservations("other") == []


class TestCalendarAdmission:
    def test_overlapping_bookings_capped_by_pool(self, net, book):
        # 8 x 10G OTs per node: the ninth overlapping 10G booking at the
        # same PoP must be refused.
        for i in range(8):
            book.book("csp", "PREMISES-A", "PREMISES-C", 10,
                      start=1 * HOUR, end=3 * HOUR)
        with pytest.raises(AdmissionError):
            book.book("csp", "PREMISES-A", "PREMISES-C", 10,
                      start=2 * HOUR, end=4 * HOUR)

    def test_disjoint_windows_reuse_capacity(self, net, book):
        for i in range(8):
            book.book("csp", "PREMISES-A", "PREMISES-C", 10,
                      start=1 * HOUR, end=3 * HOUR)
        # Same capacity, later window: fine.
        resv = book.book("csp", "PREMISES-A", "PREMISES-C", 10,
                         start=3 * HOUR, end=5 * HOUR)
        assert resv.state is ReservationState.BOOKED

    def test_canceled_bookings_free_calendar(self, net, book):
        held = [
            book.book("csp", "PREMISES-A", "PREMISES-C", 10,
                      start=1 * HOUR, end=3 * HOUR)
            for _ in range(8)
        ]
        book.cancel(held[0].reservation_id)
        resv = book.book("csp", "PREMISES-A", "PREMISES-C", 10,
                         start=1 * HOUR, end=3 * HOUR)
        assert resv.state is ReservationState.BOOKED

    def test_subwavelength_bookings_cheap(self, net, book):
        # 1G bookings cost 1/8 OT in the calendar: many fit.
        for _ in range(16):
            book.book("csp", "PREMISES-A", "PREMISES-C", 1,
                      start=1 * HOUR, end=3 * HOUR)
        assert len(book.reservations()) == 16


class TestCancelAndFailure:
    def test_cancel_booked(self, net, book):
        resv = book.book("csp", "PREMISES-A", "PREMISES-C", 10,
                         start=1 * HOUR, end=2 * HOUR)
        book.cancel(resv.reservation_id)
        assert resv.state is ReservationState.CANCELED
        net.run()
        # Never activated.
        assert resv.connection is None

    def test_cancel_unknown(self, book):
        with pytest.raises(ConfigurationError):
            book.cancel("resv-ghost")

    def test_cancel_active_rejected(self, net, book):
        resv = book.book("csp", "PREMISES-A", "PREMISES-C", 10,
                         start=1 * HOUR, end=3 * HOUR)
        net.run(until=1.5 * HOUR)
        with pytest.raises(ConfigurationError):
            book.cancel(resv.reservation_id)

    def test_activation_failure_recorded(self, net, book):
        """If the network is broken at activation time, the reservation
        records the failure instead of raising."""
        resv = book.book("csp", "PREMISES-A", "PREMISES-C", 10,
                         start=1 * HOUR, end=2 * HOUR)
        # Sever PREMISES-A's access pipe before activation.
        net.controller.auto_restore = False
        net.inventory.plant.cut_link("PREMISES-A", "ROADM-I")
        # Also exhaust the quota path by cutting all core links from I.
        net.inventory.plant.cut_link("ROADM-I", "ROADM-II")
        net.inventory.plant.cut_link("ROADM-I", "ROADM-III")
        net.inventory.plant.cut_link("ROADM-I", "ROADM-IV")
        net.run()
        assert resv.state is ReservationState.ACTIVATION_FAILED
        assert resv.failure_reason


class TestOverlapPredicate:
    def make(self, start, end):
        return Reservation("r", "c", "A", "B", 1.0, start, end)

    def test_overlap_cases(self):
        resv = self.make(10.0, 20.0)
        assert resv.overlaps(15.0, 25.0)
        assert resv.overlaps(5.0, 15.0)
        assert resv.overlaps(12.0, 13.0)
        assert resv.overlaps(0.0, 100.0)

    def test_adjacent_windows_do_not_overlap(self):
        resv = self.make(10.0, 20.0)
        assert not resv.overlaps(20.0, 30.0)
        assert not resv.overlaps(0.0, 10.0)
