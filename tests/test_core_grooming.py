"""Tests for the OTN grooming engine."""

import pytest

from repro.core.grooming import GroomingEngine
from repro.core.inventory import InventoryDatabase
from repro.errors import CapacityExceededError, NoPathError, ResourceError
from repro.optical import WavelengthGrid
from repro.otn import SharedMeshProtection
from repro.otn.circuit import OduCircuitState
from repro.topo.testbed import build_testbed_graph
from repro.units import ODU_LEVELS


def make_inventory(switch_nodes=("ROADM-I", "ROADM-II", "ROADM-III", "ROADM-IV")):
    inventory = InventoryDatabase(build_testbed_graph(), WavelengthGrid(8))
    for node in switch_nodes:
        inventory.install_otn_switch(node)
    return inventory


def line_factory_for(inventory, protection=None, budget=None):
    """A stub factory creating lines freely (or up to a budget)."""
    remaining = {"n": budget if budget is not None else 10**9}

    def factory(a, b):
        if remaining["n"] <= 0:
            raise ResourceError("line budget exhausted")
        remaining["n"] -= 1
        line = inventory.create_otn_line(a, b, level=ODU_LEVELS["ODU2"])
        if protection is not None:
            protection.add_line(line)
        return line

    return factory


class TestRouting:
    def test_switch_path_follows_topology(self):
        inventory = make_inventory()
        engine = GroomingEngine(inventory)
        path = engine.switch_path("ROADM-I", "ROADM-IV")
        assert path == ["ROADM-I", "ROADM-IV"]

    def test_switch_path_avoids_switchless_nodes(self):
        inventory = make_inventory(switch_nodes=("ROADM-I", "ROADM-II", "ROADM-III"))
        engine = GroomingEngine(inventory)
        # ROADM-IV has no switch, so I -> III must go direct or via II.
        path = engine.switch_path("ROADM-I", "ROADM-III")
        assert "ROADM-IV" not in path

    def test_no_switch_mesh_path(self):
        inventory = make_inventory(switch_nodes=("ROADM-I", "ROADM-IV"))
        engine = GroomingEngine(inventory)
        # Direct link exists, so this works...
        engine.switch_path("ROADM-I", "ROADM-IV")
        # ...but with the direct link excluded there is no all-switch path.
        with pytest.raises(NoPathError):
            engine.switch_path(
                "ROADM-I",
                "ROADM-IV",
                excluded_links=(("ROADM-I", "ROADM-IV"),),
            )


class TestEnsureLine:
    def test_creates_line_when_none_exists(self):
        inventory = make_inventory()
        engine = GroomingEngine(
            inventory, line_factory=line_factory_for(inventory)
        )
        line = engine.ensure_line("ROADM-I", "ROADM-IV", 1)
        assert line.key == ("ROADM-I", "ROADM-IV")

    def test_reuses_existing_line(self):
        inventory = make_inventory()
        engine = GroomingEngine(
            inventory, line_factory=line_factory_for(inventory)
        )
        first = engine.ensure_line("ROADM-I", "ROADM-IV", 1)
        second = engine.ensure_line("ROADM-I", "ROADM-IV", 1)
        assert first is second

    def test_no_factory_and_no_line(self):
        inventory = make_inventory()
        engine = GroomingEngine(inventory)
        with pytest.raises(CapacityExceededError):
            engine.ensure_line("ROADM-I", "ROADM-IV", 1)

    def test_factory_failure_translated(self):
        inventory = make_inventory()
        engine = GroomingEngine(
            inventory, line_factory=line_factory_for(inventory, budget=0)
        )
        with pytest.raises(CapacityExceededError):
            engine.ensure_line("ROADM-I", "ROADM-IV", 1)


class TestCircuits:
    def test_claim_allocates_slots(self):
        inventory = make_inventory()
        engine = GroomingEngine(
            inventory, line_factory=line_factory_for(inventory)
        )
        circuit = engine.claim_circuit("ROADM-I", "ROADM-IV", ODU_LEVELS["ODU0"])
        assert circuit.circuit_id in inventory.circuits
        line = inventory.otn_lines[circuit.line_ids[0]]
        assert circuit.circuit_id in line.owners()

    def test_packing_consolidates_onto_one_wavelength(self):
        """Eight ODU0 circuits fit one ODU2 line: one wavelength, not eight."""
        inventory = make_inventory()
        engine = GroomingEngine(
            inventory, line_factory=line_factory_for(inventory)
        )
        for _ in range(8):
            engine.claim_circuit("ROADM-I", "ROADM-IV", ODU_LEVELS["ODU0"])
        assert engine.wavelengths_consumed() == 1
        assert engine.mean_line_fill() == pytest.approx(1.0)

    def test_ninth_circuit_spills_to_second_line(self):
        inventory = make_inventory()
        engine = GroomingEngine(
            inventory, line_factory=line_factory_for(inventory)
        )
        for _ in range(9):
            engine.claim_circuit("ROADM-I", "ROADM-IV", ODU_LEVELS["ODU0"])
        assert engine.wavelengths_consumed() == 2

    def test_rollback_on_partial_failure(self):
        inventory = make_inventory()
        # ROADM-II -> ROADM-IV is two hops; with a budget of one new line
        # the second hop fails and the first hop's slots must roll back.
        engine = GroomingEngine(
            inventory, line_factory=line_factory_for(inventory, budget=1)
        )
        with pytest.raises(CapacityExceededError):
            engine.claim_circuit("ROADM-II", "ROADM-IV", ODU_LEVELS["ODU0"])
        assert inventory.circuits == {}
        for line in inventory.otn_lines.values():
            assert line.free_slot_count() == line.slot_count

    def test_release_circuit_frees_slots(self):
        inventory = make_inventory()
        engine = GroomingEngine(
            inventory, line_factory=line_factory_for(inventory)
        )
        circuit = engine.claim_circuit("ROADM-I", "ROADM-IV", ODU_LEVELS["ODU0"])
        line = inventory.otn_lines[circuit.line_ids[0]]
        engine.release_circuit(circuit)
        assert circuit.circuit_id not in inventory.circuits
        assert line.free_slot_count() == line.slot_count


class TestProtection:
    def test_protected_circuit_registers_backup(self):
        inventory = make_inventory()
        protection = SharedMeshProtection()
        engine = GroomingEngine(
            inventory,
            protection,
            line_factory=line_factory_for(inventory, protection),
        )
        circuit = engine.claim_circuit(
            "ROADM-I", "ROADM-IV", ODU_LEVELS["ODU0"], protect=True
        )
        assert circuit.backup_path is not None
        assert circuit.backup_path != circuit.path
        # The backup is registered: restoring works.
        circuit.transition(OduCircuitState.SETTING_UP)
        circuit.transition(OduCircuitState.UP)
        duration = protection.restore(circuit.circuit_id)
        assert duration < 1.0

    def test_protect_without_manager(self):
        inventory = make_inventory()
        engine = GroomingEngine(
            inventory, line_factory=line_factory_for(inventory)
        )
        with pytest.raises(CapacityExceededError):
            engine.claim_circuit(
                "ROADM-I", "ROADM-IV", ODU_LEVELS["ODU0"], protect=True
            )

    def test_release_unregisters_protection(self):
        inventory = make_inventory()
        protection = SharedMeshProtection()
        engine = GroomingEngine(
            inventory,
            protection,
            line_factory=line_factory_for(inventory, protection),
        )
        circuit = engine.claim_circuit(
            "ROADM-I", "ROADM-IV", ODU_LEVELS["ODU0"], protect=True
        )
        backup_line = circuit.backup_path
        engine.release_circuit(circuit)
        # Reservations must be gone on all lines.
        for line_id in inventory.otn_lines:
            assert protection.reserved_slots(line_id) == 0
