"""Tests for the OSNR-based reach model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SignalError
from repro.optical.impairments import ReachModel
from repro.optical.osnr import OsnrModel
from repro.units import gbps


@pytest.fixture
def model():
    return OsnrModel()


class TestBudget:
    def test_span_count(self, model):
        assert model.span_count(80.0) == 1
        assert model.span_count(81.0) == 2
        assert model.span_count(800.0) == 10

    def test_span_count_rejects_nonpositive(self, model):
        with pytest.raises(ConfigurationError):
            model.span_count(0)

    def test_single_span_osnr(self, model):
        # 58 + 0 - 5.5 - 20 - 0 = 32.5 dB.
        assert model.osnr_db(80.0) == pytest.approx(32.5)

    def test_osnr_falls_3db_per_doubling(self, model):
        one = model.osnr_db(80.0)
        two = model.osnr_db(160.0)
        four = model.osnr_db(320.0)
        assert one - two == pytest.approx(10 * 0.30103, abs=1e-3)
        assert two - four == pytest.approx(10 * 0.30103, abs=1e-3)

    @given(km=st.floats(min_value=1.0, max_value=10000.0))
    def test_osnr_monotone_nonincreasing(self, km):
        model = OsnrModel()
        assert model.osnr_db(km) >= model.osnr_db(km + 500.0)

    def test_bad_construction(self):
        with pytest.raises(ConfigurationError):
            OsnrModel(span_km=0)
        with pytest.raises(ConfigurationError):
            OsnrModel(loss_db_per_km=0)
        with pytest.raises(ConfigurationError):
            OsnrModel(required_osnr_db={})


class TestRequirements:
    def test_higher_rate_needs_more_osnr_than_10g(self, model):
        assert model.required_osnr_db(gbps(40)) > model.required_osnr_db(
            gbps(10)
        )

    def test_unknown_rate(self, model):
        with pytest.raises(SignalError):
            model.required_osnr_db(gbps(2.5))

    def test_viability_flips_with_distance(self, model):
        assert model.viable(800.0, gbps(10))
        assert not model.viable(5000.0, gbps(10))

    def test_viability_flips_with_rate(self, model):
        # Pick a distance where 10G closes but 40G does not.
        km = 2000.0
        assert model.viable(km, gbps(10))
        assert not model.viable(km, gbps(40))


class TestDerivedReach:
    def test_reaches_match_deployed_budgets(self, model):
        """The derived budgets land near the ReachModel's table."""
        table = model.reach_table_km()
        assert table[gbps(10)] == pytest.approx(2500, rel=0.25)
        assert table[gbps(40)] == pytest.approx(1500, rel=0.25)
        assert table[gbps(100)] == pytest.approx(2000, rel=0.30)

    def test_ordering_matches_physics(self, model):
        table = model.reach_table_km()
        assert table[gbps(40)] < table[gbps(100)] < table[gbps(10)]

    def test_derived_table_feeds_reach_model(self, model):
        reach = ReachModel(model.reach_table_km())
        assert reach.needs_regen(3000.0, gbps(10))
        assert not reach.needs_regen(1000.0, gbps(10))

    def test_max_reach_consistent_with_viable(self, model):
        for rate in (gbps(10), gbps(40), gbps(100)):
            reach = model.max_reach_km(rate)
            assert model.viable(reach, rate)
            assert not model.viable(reach + 2 * model.span_km, rate)

    def test_impossible_rate_raises(self):
        model = OsnrModel(required_osnr_db={gbps(10): 40.0})
        with pytest.raises(SignalError):
            model.max_reach_km(gbps(10))
