"""Differential: the worker-pool backend against in-process planning.

The persistent-worker acceptance gate: on the same 2-region hierarchy
and the same order stream — including a fiber-cut round forwarded to
the workers via the ``cut`` RPC and a post-repair round — a
``backend="pool"`` deployment must produce byte-identical structural
outcomes (:func:`~repro.shard.network.outcome_fingerprint`) and typed
order states as the in-process planner, for both the sharded and the
monolithic-twin modes.  Also pins the plant-mirror invariant (after
:meth:`~repro.shard.network.ShardedNetwork.sync_workers`, every
worker's plant digest equals the authoritative controller's) and the
frontend path: a :class:`~repro.shard.ShardIntake` over the pool
backend settles the identical ticket stream.
"""

from repro.core.admission import CustomerProfile
from repro.core.connection import ConnectionState
from repro.shard import ShardIntake, build_sharded_network
from repro.shard.network import outcome_fingerprint
from repro.topo.hierarchy import build_hierarchy
from repro.units import GBPS

#: Cross-region, intra-region, repeated-pair (contention), and an
#: unregistered customer (admission block): UP and BLOCKED outcomes in
#: one stream.
ORDERS = [
    ("csp", "DC-R00-P03", "DC-R01-P04", 10 * GBPS),
    ("csp", "DC-R00-P02", "DC-R00-P05", 10 * GBPS),
    ("csp", "DC-R00-P00", "DC-R01-P03", 10 * GBPS),
    ("csp", "DC-R00-P03", "DC-R01-P04", 10 * GBPS),
    ("ghost", "DC-R00-P02", "DC-R01-P05", 10 * GBPS),
    ("csp", "DC-R01-P01", "DC-R00-P04", 10 * GBPS),
]

#: Placed after the fiber cut: the planner must route around the break.
CUT_ROUND = [
    ("csp", "DC-R00-P01", "DC-R01-P02", 10 * GBPS),
    ("csp", "DC-R00-P04", "DC-R00-P01", 10 * GBPS),
]

#: Placed after the repair: occupancy accumulated through the chaos.
REPAIR_ROUND = [("csp", "DC-R00-P03", "DC-R01-P05", 10 * GBPS)]


def _hierarchy():
    return build_hierarchy(
        seed=11, regions=2, pops_per_region=6, with_premises=True
    )


def _victim_link(orders):
    """A deterministic roadm-roadm hop of the first UP order's plan.

    plan_record is part of the fingerprint, so every backend picks the
    identical link; premises tails are skipped because the chaos hooks
    cut backbone fiber.
    """
    record = next(
        o for o in orders if o.state is ConnectionState.UP
    ).plan_record[0]
    path = record["path"]
    for a, b in zip(path, path[1:]):
        if not a.startswith("DC-") and not b.startswith("DC-"):
            return a, b
    raise AssertionError(f"no backbone hop in {path}")


def _run_deployment(mode, backend):
    """The full differential scenario on one (mode, backend) pair."""
    net = build_sharded_network(
        seed=11, mode=mode, hierarchy=_hierarchy(), backend=backend
    )
    with net:
        net.register_customer(
            CustomerProfile(
                "csp", max_connections=64, max_total_rate_bps=10000 * GBPS
            )
        )
        orders = net.place_orders(ORDERS)
        net.run()
        a, b = _victim_link(orders)
        net.cut_fiber(a, b)
        net.run()
        orders.extend(net.place_orders(CUT_ROUND))
        net.run()
        net.repair_fiber(a, b)
        orders.extend(net.place_orders(REPAIR_ROUND))
        net.run()
        audits = {
            unit: report.ok for unit, report in net.audit_shards().items()
        }
        mirror_ok = None
        if backend == "pool":
            net.sync_workers()
            plants = net.plant_fingerprints()
            mirror_ok = {
                key: fp["state"] == plants[key]
                for key, fp in net.worker_fingerprints().items()
            }
    return orders, audits, mirror_ok


class TestPoolVsInProcess:
    def test_sharded_outcomes_byte_identical(self):
        pooled, pool_audits, mirror_ok = _run_deployment("sharded", "pool")
        local, local_audits, _ = _run_deployment("sharded", "inprocess")
        assert outcome_fingerprint(pooled) == outcome_fingerprint(local)
        # Typed states match pairwise, and the stream is not vacuous:
        # the scenario produces UP and BLOCKED orders.
        assert [o.state for o in pooled] == [o.state for o in local]
        states = {o.state for o in pooled}
        assert ConnectionState.UP in states
        assert ConnectionState.BLOCKED in states
        assert all(pool_audits.values()), pool_audits
        assert all(local_audits.values()), local_audits
        # The mirror invariant: after sync_workers every worker's plant
        # digest equals the authoritative controller's.
        assert mirror_ok and all(mirror_ok.values()), mirror_ok

    def test_monolithic_twin_outcomes_byte_identical(self):
        pooled, _, mirror_ok = _run_deployment("monolithic", "pool")
        local, _, _ = _run_deployment("monolithic", "inprocess")
        assert outcome_fingerprint(pooled) == outcome_fingerprint(local)
        assert mirror_ok == {"mono": True}

    def test_pool_backend_matches_monolithic_pool(self):
        # Transitivity spot-check: sharded-pool == monolithic-pool, so
        # all four (mode, backend) corners plan one structural outcome.
        sharded, _, _ = _run_deployment("sharded", "pool")
        mono, _, _ = _run_deployment("monolithic", "pool")
        assert outcome_fingerprint(sharded) == outcome_fingerprint(mono)


class TestIntakeOverPool:
    def _drive(self, backend):
        net = build_sharded_network(
            seed=11, mode="sharded", hierarchy=_hierarchy(), backend=backend
        )
        with net:
            net.register_customer(
                CustomerProfile(
                    "csp", max_connections=64, max_total_rate_bps=10000 * GBPS
                )
            )
            intake = ShardIntake(net, round_size=4, round_interval=0.01)
            tickets = [
                intake.submit(customer, a, b, rate)
                for customer, a, b, rate in ORDERS
            ]
            net.run()
            outcomes = [
                (
                    ticket.state.value,
                    ticket.reason,
                    type(intake.outcome(ticket)).__name__,
                )
                for ticket in tickets
            ]
        return outcomes

    def test_intake_settles_identical_tickets_over_pool(self):
        assert self._drive("pool") == self._drive("inprocess")
