"""Unit tests: the re-optimization snapshot and planner.

The planner is a pure function of the snapshot, so everything here is
synchronous: fragment a small generated backbone, freeze it, plan, and
inspect the plan — no executor, no simulator events after the freeze.
"""

from repro.core.connection import ConnectionState
from repro.optimize import (
    MigrationPlan,
    NetworkSnapshot,
    plan_migrations,
    slo_link_penalties,
)
from repro.optimize.bench import (
    build_optimize_network,
    fragment_network,
    place_orders,
)

SEED = 7
NODE_COUNT = 24
WARM_ORDERS = 60


def fragmented_network():
    net = build_optimize_network(SEED, node_count=NODE_COUNT)
    service = net.service_for(
        "planner-test", max_connections=4096, max_total_rate_gbps=1000000
    )
    warm = place_orders(net, service, WARM_ORDERS)
    fragment_network(net, service, warm, keep_every=3)
    return net, service


def test_snapshot_captures_only_migratable_demands():
    net, _ = fragmented_network()
    snapshot = NetworkSnapshot.from_controller(net.controller)
    up = [
        c
        for c in net.controller.connections.values()
        if c.state is ConnectionState.UP
        and len(c.lightpath_ids) == 1
        and not c.circuit_ids
    ]
    assert len(snapshot.demands) == len(up)
    # Demands carry the live assignment verbatim.
    for demand in snapshot.demands:
        connection = net.controller.connections[demand.connection_id]
        lightpath = net.inventory.lightpaths[connection.lightpath_ids[0]]
        assert demand.path == tuple(lightpath.path)
        assert demand.channels == tuple(lightpath.channels)
    # Occupancy is a copy, not a live view.
    key, mask = next(iter(snapshot.occupied.items()))
    snapshot.occupied[key] = mask | (1 << 79)
    assert (
        net.inventory.plant.occupancy_snapshot()[key] & (1 << 79)
    ) == 0


def test_snapshot_skips_locked_connections():
    net, _ = fragmented_network()
    baseline = NetworkSnapshot.from_controller(net.controller)
    locked_id = baseline.demands[0].connection_id
    assert net.controller.lock_migration(locked_id, "someone-else")
    snapshot = NetworkSnapshot.from_controller(net.controller)
    assert locked_id not in {d.connection_id for d in snapshot.demands}
    assert len(snapshot.demands) == len(baseline.demands) - 1


def test_plan_reduces_wavelengths_on_fragmented_network():
    net, _ = fragmented_network()
    snapshot = NetworkSnapshot.from_controller(net.controller)
    plan = plan_migrations(snapshot)
    assert plan.moves, "fragmented scenario should yield moves"
    assert plan.wavelengths_after <= plan.wavelengths_before
    assert plan.objective_after < plan.objective_before
    # Plan indices are the execution order.
    assert [m.index for m in plan.moves] == list(range(len(plan.moves)))


def test_plan_is_deterministic_across_rebuilds():
    def build_plan():
        net, _ = fragmented_network()
        snapshot = NetworkSnapshot.from_controller(net.controller)
        return plan_migrations(snapshot)

    assert build_plan().to_dict() == build_plan().to_dict()


def test_new_channels_disjoint_from_all_occupied_slots():
    """Bridge-before-release: a move's target slots must be free while
    every pre-move assignment — including the mover's own — is lit."""
    net, _ = fragmented_network()
    snapshot = NetworkSnapshot.from_controller(net.controller)
    plan = plan_migrations(snapshot)
    occupied = dict(snapshot.occupied)
    for move in plan.moves:
        segments, _ = snapshot.segment_route(move.new_path, move.rate_bps)
        for nodes, channel in zip(segments, move.new_channels):
            for u, v in zip(nodes, nodes[1:]):
                key = (u, v) if u <= v else (v, u)
                assert not occupied.get(key, 0) & (1 << channel), (
                    f"move {move.index} lights occupied slot "
                    f"{key}@{channel}"
                )
        # Advance the occupancy the way the executor will.
        for nodes, channel in zip(segments, move.new_channels):
            for u, v in zip(nodes, nodes[1:]):
                key = (u, v) if u <= v else (v, u)
                occupied[key] = occupied.get(key, 0) | (1 << channel)
        old_segments, _ = snapshot.segment_route(
            move.old_path, move.rate_bps
        )
        for nodes, channel in zip(old_segments, move.old_channels):
            for u, v in zip(nodes, nodes[1:]):
                key = (u, v) if u <= v else (v, u)
                occupied[key] = occupied.get(key, 0) & ~(1 << channel)


def test_depends_on_edges_are_exactly_the_slot_conflicts():
    net, _ = fragmented_network()
    snapshot = NetworkSnapshot.from_controller(net.controller)
    plan = plan_migrations(snapshot)
    released = []
    for move in plan.moves:
        old_segments, _ = snapshot.segment_route(
            move.old_path, move.rate_bps
        )
        new_segments, _ = snapshot.segment_route(
            move.new_path, move.rate_bps
        )
        new_slots = {
            ((u, v) if u <= v else (v, u), ch)
            for nodes, ch in zip(new_segments, move.new_channels)
            for u, v in zip(nodes, nodes[1:])
        }
        expected = tuple(
            sorted(
                j
                for j, freed in enumerate(released)
                if freed & new_slots
            )
        )
        assert move.depends_on == expected, (
            f"move {move.index}: depends_on {move.depends_on} != "
            f"recomputed {expected}"
        )
        old_slots = {
            ((u, v) if u <= v else (v, u), ch)
            for nodes, ch in zip(old_segments, move.old_channels)
            for u, v in zip(nodes, nodes[1:])
        }
        released.append(old_slots - new_slots)


def test_channel_packing_never_buys_a_longer_route():
    net, _ = fragmented_network()
    snapshot = NetworkSnapshot.from_controller(net.controller)
    plan = plan_migrations(snapshot)
    for move in plan.moves:
        assert len(move.new_path) <= len(move.old_path), (
            f"move {move.index} lengthened the route "
            f"{move.old_path} -> {move.new_path}"
        )


def test_plan_respects_max_moves():
    net, _ = fragmented_network()
    snapshot = NetworkSnapshot.from_controller(net.controller)
    unbounded = plan_migrations(snapshot)
    assert len(unbounded.moves) > 1
    capped = plan_migrations(snapshot, max_moves=1)
    assert len(capped.moves) == 1
    assert capped.moves[0].to_dict() == unbounded.moves[0].to_dict()


def test_transponder_headroom_freezes_demands():
    # Two transponders per end: one in use per live connection leaves
    # exactly one spare, so a single connection per endpoint pair is
    # migratable — with zero spares nothing may move.
    net = build_optimize_network(SEED, node_count=NODE_COUNT)
    service = net.service_for(
        "frozen-test", max_connections=4096, max_total_rate_gbps=1000000
    )
    place_orders(net, service, 12)
    snapshot = NetworkSnapshot.from_controller(net.controller)
    # Artificially zero out every endpoint's transponder headroom.
    snapshot.free_transponders = {
        key: 0 for key in snapshot.free_transponders
    }
    plan = plan_migrations(snapshot)
    assert not plan.moves
    assert sorted(plan.frozen_demands) == sorted(
        d.connection_id for d in snapshot.demands
    )


def test_plan_round_trips_through_dict():
    net, _ = fragmented_network()
    snapshot = NetworkSnapshot.from_controller(net.controller)
    plan = plan_migrations(snapshot)
    clone = MigrationPlan.from_dict(plan.to_dict())
    assert clone.to_dict() == plan.to_dict()


def test_slo_penalties_raise_link_costs_in_snapshot():
    net, _ = fragmented_network()
    plain = NetworkSnapshot.from_controller(net.controller)
    assert all(cost == 1.0 for cost in plain.link_costs.values())
    key = next(iter(plain.link_costs))
    net.inventory.plant.dwdm_link(*key).set_degradation("test", 3.0)
    penalties = slo_link_penalties(net.controller)
    assert penalties == {key: 3.0}
    snapshot = NetworkSnapshot.from_controller(
        net.controller, link_penalties=penalties
    )
    assert snapshot.link_costs[key] == 4.0
    others = [k for k in snapshot.link_costs if k != key]
    assert all(snapshot.link_costs[k] == 1.0 for k in others)


def test_slo_engine_breaches_add_flat_penalty():
    class FakeEngine:
        def __init__(self, keys):
            self._keys = keys

        def impacted_link_keys(self):
            return set(self._keys)

    net, _ = fragmented_network()
    key = sorted(
        link.key for link in net.inventory.graph.links
    )[0]
    penalties = slo_link_penalties(
        net.controller, engine=FakeEngine([key]), breach_penalty=4.0
    )
    assert penalties[key] == 4.0
