#!/usr/bin/env python
"""Capacity planning: static leases vs bandwidth on demand.

The economics behind the paper's motivation (§1): inter-DC demand is a
diurnal interactive floor plus bursty bulk replication.  This example
compares, for one data-center pair on the continental backbone:

* the capacity-hours a statically peak-provisioned lease burns;
* the capacity-hours BoD burns tracking demand hourly at 1G granularity;
* bulk-transfer completion on a BoD wavelength versus a NetStitcher-
  style store-and-forward scheduler riding the static pipe's leftovers.

Run:
    python examples/capacity_planning.py
"""

from repro import build_griphon_backbone
from repro.baselines import StaticProvisioningPlan, StoreForwardScheduler
from repro.units import GBPS, format_duration, gbps, terabytes, transfer_time
from repro.workload import InteractiveDemand


def main() -> None:
    # The interactive floor between the east and west coast DCs.
    demand = InteractiveDemand(
        ("DC-EAST", "DC-WEST"), base_gbps=6.0, amplitude=0.6, peak_hour=20.0
    )
    series = demand.hourly_series(24)
    static = StaticProvisioningPlan(series, granularity_bps=gbps(10))
    tracking_ch = demand.capacity_hours_tracking(24, granularity_bps=gbps(1))

    print("interactive demand, one day, DC-EAST <-> DC-WEST")
    print(f"  peak demand:            {demand.peak_bps() / GBPS:.1f} G")
    print(f"  static lease:           {static.leased_capacity_bps / GBPS:.0f} G around the clock")
    print(f"  static capacity-hours:  {static.capacity_hours() / GBPS:.0f} G-h "
          f"(utilization {static.utilization():.0%})")
    print(f"  BoD capacity-hours:     {tracking_ch / GBPS:.0f} G-h "
          f"({tracking_ch / static.capacity_hours():.0%} of static)")
    print()

    # A 20 TB nightly replication job.
    volume = terabytes(20)
    print("20 TB bulk replication job")

    # Option 1: BoD wavelength through the real controller.
    net = build_griphon_backbone(seed=3)
    service = net.service_for("acme-cloud")
    conn = service.request_connection("DC-EAST", "DC-WEST", 10)
    net.run()
    bod_total = conn.setup_duration + transfer_time(volume, conn.rate_bps)
    print(f"  BoD 10G wavelength:       {format_duration(bod_total)} "
          f"(incl. {format_duration(conn.setup_duration)} setup)")

    # Option 2: store-and-forward over the static pipe's leftovers.
    leftover = [static.leased_capacity_bps - d for d in series]
    scheduler = StoreForwardScheduler({"east-west": leftover})
    snf = scheduler.hop_completion_time("east-west", volume)
    print(f"  store-and-forward:        {format_duration(snf)} "
          "(no new capacity, leftover bandwidth only)")

    # Option 3: the ideal lower bound.
    print(f"  dedicated 10G (ideal):    "
          f"{format_duration(transfer_time(volume, gbps(10)))}")
    print()
    print(
        "BoD matches the dedicated bound to within its one-minute setup; "
        "store-and-forward"
    )
    print(
        f"needs {snf / bod_total:.1f}x longer here because the "
        "peak-provisioned pipe leaves little headroom at night's end."
    )

    service.teardown_connection(conn.connection_id)
    net.run()


if __name__ == "__main__":
    main()
