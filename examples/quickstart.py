#!/usr/bin/env python
"""Quickstart: order bandwidth on demand between two data centers.

Builds the paper's Fig. 4 testbed, orders a 10 Gbps wavelength
connection between two customer premises, watches it come up in about a
minute (versus weeks for a manually provisioned private line), then
tears it down in about ten seconds.

Run:
    python examples/quickstart.py
"""

from repro import build_griphon_testbed
from repro.core.gui import render_connections
from repro.units import format_duration


def main() -> None:
    # A deterministic network: same seed, same timings.
    net = build_griphon_testbed(seed=42)

    # Each cloud service provider gets its own isolated service handle.
    service = net.service_for("acme-cloud")

    # Order 10 Gbps between two data-center premises.  The request
    # returns immediately; provisioning runs in simulated time.
    conn = service.request_connection("PREMISES-A", "PREMISES-C", rate_gbps=10)
    print(f"requested: {conn}")

    # Advance the simulation until the EMS workflows finish.
    net.run()
    print(f"up after:  {format_duration(conn.setup_duration)}")
    print()
    print(render_connections(service))
    print()

    # Tear the connection down when the transfer is done.
    service.teardown_connection(conn.connection_id)
    before = net.sim.now
    net.run()
    print(f"torn down in {format_duration(net.sim.now - before)}")
    print(f"final state: {conn.state.value}")


if __name__ == "__main__":
    main()
