#!/usr/bin/env python
"""A month of fiber cuts: what automated restoration buys.

Subjects one 10 Gbps inter-DC connection to a simulated month of random
fiber cuts (network-wide MTBF of two days, physical repairs averaging
six hours) under two regimes — GRIPhoN's automated restoration versus
today's wait-for-the-splice-crew — and reports the availability gap.

Run:
    python examples/reliability_study.py
"""

from repro import build_griphon_testbed
from repro.metrics import (
    downtime_minutes_per_year,
    measured_availability,
    nines,
)
from repro.units import DAY, HOUR
from repro.workload import FiberCutInjector

HORIZON = 28 * DAY


def run_month(auto_restore: bool):
    net = build_griphon_testbed(seed=123, auto_restore=auto_restore)
    service = net.service_for("acme-cloud")
    conn = service.request_connection("PREMISES-A", "PREMISES-C", 10)
    net.run()
    injector = FiberCutInjector(
        net.controller,
        net.streams,
        mean_time_between_cuts_s=2 * DAY,
        mean_repair_s=6 * HOUR,
        stop_at=HORIZON,
    )
    net.run(until=HORIZON + 2 * DAY)
    net.run()
    if conn.outage_started_at is not None:
        conn.end_outage(net.sim.now)
    availability = measured_availability(conn, conn.up_at, HORIZON)
    return availability, len(injector.records)


def main() -> None:
    print("one simulated month, network MTBF 2 days, repairs ~6 h\n")
    for label, auto in (
        ("GRIPhoN automated restoration", True),
        ("manual repair only (today)", False),
    ):
        availability, cuts = run_month(auto)
        print(f"{label}:")
        print(f"  fiber cuts endured:   {cuts}")
        print(f"  availability:         {availability:.5f} "
              f"({nines(availability):.1f} nines)")
        print(f"  downtime equivalent:  "
              f"{downtime_minutes_per_year(availability):,.0f} min/year\n")
    print(
        "Same fiber, same cuts - the only difference is who re-routes "
        "the traffic, and how fast."
    )


if __name__ == "__main__":
    main()
