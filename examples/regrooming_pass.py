#!/usr/bin/env python
"""Network re-grooming: moving connections back onto better paths.

Paper §4: connections provisioned while the best route was unavailable
end up on detours; re-grooming migrates them back with bridge-and-roll.
This example provisions during an outage, repairs the span, runs a
re-grooming pass, and shows the operator view before and after.

Run:
    python examples/regrooming_pass.py
"""

from repro import build_griphon_testbed
from repro.core.gui import render_network_view
from repro.core.regrooming import RegroomingEngine


def main() -> None:
    net = build_griphon_testbed(seed=17, nte_interfaces=12)
    service = net.service_for("acme-cloud", max_connections=32)

    # The direct ROADM-I = ROADM-IV span is down when the orders arrive,
    # so everything detours through ROADM-III.
    net.controller.cut_link("ROADM-I", "ROADM-IV")
    connections = [
        service.request_connection("PREMISES-A", "PREMISES-C", 10)
        for _ in range(3)
    ]
    net.run()
    graph = net.inventory.graph
    print("provisioned during the outage:")
    for conn in connections:
        path = net.inventory.lightpaths[conn.lightpath_ids[0]].path
        km = graph.path_length_km(path)
        print(f"  {conn.connection_id}: {' - '.join(path)} ({km:g} km)")
    print()

    # The span is repaired; the short route is available again.
    net.controller.repair_link("ROADM-I", "ROADM-IV")
    engine = RegroomingEngine(net.controller)
    candidates = engine.scan()
    print(f"re-grooming scan: {len(candidates)} candidate(s)")
    for candidate in candidates:
        print(
            f"  {candidate.connection_id}: {candidate.current_km:g} km -> "
            f"{candidate.best_km:g} km "
            f"({candidate.improvement:.0%} shorter)"
        )
    print()

    report = engine.run_pass()
    net.run()
    print(f"migrated {len(report.migrated)} connection(s) via bridge-and-roll")
    for conn in connections:
        path = net.inventory.lightpaths[conn.lightpath_ids[0]].path
        km = graph.path_length_km(path)
        hit_ms = conn.total_outage_s * 1000
        print(
            f"  {conn.connection_id}: now {' - '.join(path)} ({km:g} km), "
            f"total hit {hit_ms:.0f} ms"
        )
    print()
    print(render_network_view(net.controller))


if __name__ == "__main__":
    main()
