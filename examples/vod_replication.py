#!/usr/bin/env python
"""Video-on-demand content replication across three data centers.

The testbed's motivating application (paper §3): VoD servers at each
customer premises replicate content to the other sites.  This example
replicates a 40 TB library from PREMISES-A to both other premises over
on-demand 10G wavelengths, then augments one leg to 12 Gbps using the
paper's composite trick — one 10G wavelength plus two 1G OTN circuits —
when a priority catalog refresh needs more headroom.

Run:
    python examples/vod_replication.py
"""

from repro import build_griphon_testbed
from repro.core.gui import render_connections, render_interfaces
from repro.units import HOUR, format_duration, terabytes, transfer_time


def main() -> None:
    net = build_griphon_testbed(seed=7)
    service = net.service_for("vod-provider")
    library = terabytes(40)

    # Fan the library out from PREMISES-A over two 10G connections.
    legs = {}
    for destination in ("PREMISES-B", "PREMISES-C"):
        legs[destination] = service.request_connection(
            "PREMISES-A", destination, rate_gbps=10
        )
    net.run()
    for destination, conn in legs.items():
        print(
            f"{destination}: {conn.state.value} in "
            f"{format_duration(conn.setup_duration)}"
        )

    # Schedule each leg's teardown when its copy completes.
    for conn in legs.values():
        duration = transfer_time(library, conn.rate_bps)
        net.sim.schedule(
            duration,
            service.teardown_connection,
            conn.connection_id,
        )
        print(
            f"{conn.premises_b}: 40 TB at 10G takes "
            f"{format_duration(duration)}"
        )
    net.run()
    print(f"replication finished at t={format_duration(net.sim.now)}")
    print()

    # A priority refresh to PREMISES-B needs 12 Gbps: the controller
    # realizes it as one 10G wavelength + two 1G OTN circuits instead
    # of burning a second 10G wavelength (paper §2.2).
    refresh = service.request_connection("PREMISES-A", "PREMISES-B", 12)
    net.run()
    print(f"priority refresh: {refresh}")
    print(
        f"  realized as {len(refresh.lightpath_ids)} wavelength(s) + "
        f"{len(refresh.circuit_ids)} x 1G OTN circuit(s)"
    )
    print()
    print(render_connections(service))
    print()
    print(render_interfaces(service))

    # Hold the refresh for two hours, then release everything.
    net.sim.schedule(
        2 * HOUR, service.teardown_connection, refresh.connection_id
    )
    net.run()
    print()
    print(f"all capacity returned: {len(net.inventory.lightpaths)} lightpaths")


if __name__ == "__main__":
    main()
