#!/usr/bin/env python
"""Config-driven experiments with the scenario runner.

A scenario is plain data — timed actions against a network — so whole
experiments can live in JSON files or be generated in loops.  This
example runs "a rough Friday": an evening of orders, a fiber cut during
the busy hour, an overnight maintenance window, and morning
housekeeping, then prints the availability report.

Run:
    python examples/scenario_runner.py
"""

from repro import build_griphon_testbed
from repro.scenario import Scenario, run_scenario
from repro.units import HOUR

ROUGH_FRIDAY = {
    "name": "rough-friday",
    "duration_s": 18 * HOUR,
    "events": [
        # 17:00 - the evening's connections come up.
        {"at": 0, "action": "request",
         "params": {"customer": "acme", "a": "PREMISES-A",
                    "b": "PREMISES-C", "rate_gbps": 10}},
        {"at": 60, "action": "request",
         "params": {"customer": "acme", "a": "PREMISES-A",
                    "b": "PREMISES-B", "rate_gbps": 12}},
        {"at": 120, "action": "request",
         "params": {"customer": "globex", "a": "PREMISES-B",
                    "b": "PREMISES-C", "rate_gbps": 1}},
        # 20:00 - a backhoe finds the busiest span.
        {"at": 3 * HOUR, "action": "cut",
         "params": {"a": "ROADM-I", "b": "ROADM-IV"}},
        # 23:00 - the splice crew finishes.
        {"at": 6 * HOUR, "action": "repair",
         "params": {"a": "ROADM-I", "b": "ROADM-IV"}},
        # 01:00 - planned maintenance elsewhere, behind bridge-and-roll.
        {"at": 8 * HOUR, "action": "maintenance",
         "params": {"a": "ROADM-I", "b": "ROADM-III",
                    "duration": 4 * HOUR}},
        # 07:00 - morning housekeeping.
        {"at": 14 * HOUR, "action": "regroom", "params": {}},
        {"at": 15 * HOUR, "action": "teardown", "params": {"index": 2}},
        {"at": 16 * HOUR, "action": "reclaim",
         "params": {"holding_time_s": 0}},
    ],
}


def main() -> None:
    net = build_griphon_testbed(seed=99, nte_interfaces=12)
    scenario = Scenario.from_dict(ROUGH_FRIDAY)
    result = run_scenario(net, scenario)

    print(f"scenario: {scenario.name} ({len(scenario.events)} events)\n")
    for line in result.log:
        print(line)
    if result.errors:
        print("\nerrors:")
        for error in result.errors:
            print(f"  {error}")
    print("\navailability over the night:")
    for connection_id, availability in result.availability_report().items():
        print(f"  {connection_id}: {availability:.5f}")


if __name__ == "__main__":
    main()
