#!/usr/bin/env python
"""Planned maintenance with automated bridge-and-roll.

A carrier needs a four-hour maintenance window on a fiber span that
carries a customer's wavelength connection.  With GRIPhoN the scheduler
migrates the connection to a disjoint path beforehand (a ~50 ms roll
hit); without coordination the customer would eat a restoration outage
— or, in the manual world, the whole window (paper §1, Table 1).

Run:
    python examples/maintenance_bridge_roll.py
"""

from repro import build_griphon_testbed
from repro.units import HOUR, format_duration


def run_window(use_bridge_and_roll: bool) -> float:
    net = build_griphon_testbed(seed=13)
    service = net.service_for("acme-cloud")
    conn = service.request_connection("PREMISES-A", "PREMISES-C", 10)
    net.run()
    path = net.inventory.lightpaths[conn.lightpath_ids[0]].path
    record = net.maintenance.schedule(
        path[0],
        path[1],
        start_in=900.0,  # window opens in 15 minutes
        duration=4 * HOUR,
        use_bridge_and_roll=use_bridge_and_roll,
    )
    net.run()
    assert record.completed
    if use_bridge_and_roll:
        assert record.migrated == [conn.connection_id]
    return conn.total_outage_s


def main() -> None:
    print("maintenance window: 4 hours on a span carrying one 10G customer")
    print()
    with_bridge = run_window(use_bridge_and_roll=True)
    without = run_window(use_bridge_and_roll=False)
    print(f"customer outage WITH bridge-and-roll:    {format_duration(with_bridge)}")
    print(f"customer outage WITHOUT (auto-restore):  {format_duration(without)}")
    print(f"customer outage in the manual world:     {format_duration(4 * HOUR)}")
    print()
    ratio = without / with_bridge
    print(
        f"bridge-and-roll reduced the maintenance impact by {ratio:,.0f}x "
        "versus uncoordinated maintenance with automated restoration,"
    )
    print(
        f"and by {4 * HOUR / with_bridge:,.0f}x versus today's manual "
        "operations."
    )


if __name__ == "__main__":
    main()
