#!/usr/bin/env python
"""Scheduled nightly backups with advance reservations.

Three cloud providers book the *same* pool of transponders for
staggered two-hour backup windows.  The reservation book admits all of
them (their windows don't overlap), activates each connection a couple
of minutes before its window so the ~1 minute setup is done in time,
and releases the capacity at window close — classic calendar-based
bandwidth on demand.

Run:
    python examples/scheduled_backups.py
"""

from repro import build_griphon_testbed
from repro.core.calendar import ReservationBook, ReservationState
from repro.units import HOUR, format_duration


def main() -> None:
    # A deliberately small pool: 4 x 10G transponders per node.
    net = build_griphon_testbed(
        seed=5, ots_per_node_10g=4, nte_interfaces=12
    )
    book = ReservationBook(net.controller)

    windows = {
        "alpha-cloud": (1 * HOUR, 3 * HOUR),
        "beta-storage": (3 * HOUR, 5 * HOUR),
        "gamma-cdn": (5 * HOUR, 7 * HOUR),
    }
    for customer, (start, end) in windows.items():
        net.service_for(customer, max_connections=16)
        for _ in range(4):  # each wants the whole pool for its window
            book.book(customer, "PREMISES-A", "PREMISES-C", 10, start, end)
        print(
            f"{customer}: booked 4 x 10G for "
            f"{format_duration(start)} - {format_duration(end)}"
        )

    # A conflicting booking is refused at *booking* time, not at 3 am.
    try:
        book.book("alpha-cloud", "PREMISES-A", "PREMISES-C", 10,
                  1.5 * HOUR, 2.5 * HOUR)
    except Exception as exc:  # AdmissionError
        print(f"\noverlapping 5th booking refused: {exc}")

    net.run()
    print()
    for customer in windows:
        done = [
            r
            for r in book.reservations(customer)
            if r.state is ReservationState.COMPLETED
        ]
        setups = [r.connection.setup_duration for r in done]
        print(
            f"{customer}: {len(done)}/4 windows served, setup "
            f"{format_duration(max(setups))} each (hidden by the "
            "activation lead)"
        )
    print()
    print(
        "12 backup windows served by a pool that holds only 4 concurrent "
        "10G connections."
    )


if __name__ == "__main__":
    main()
