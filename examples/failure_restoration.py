#!/usr/bin/env python
"""Fiber cuts: automated detection, localization, and restoration.

Demonstrates the GRIPhoN controller's failure handling (paper §2.2):

* a conduit cut takes down a wavelength connection; the controller
  localizes it, re-plans around the failed SRLG, and re-provisions in
  about a minute — versus 4-12 hours of manual restoration today;
* a sub-wavelength (OTN) circuit on the same cut restores in under a
  second via shared-mesh protection;
* after repair, bridge-and-roll reverts the wavelength connection to
  its original path almost hitlessly.

Run:
    python examples/failure_restoration.py
"""

from repro import build_griphon_testbed
from repro.core.gui import render_fault_panel
from repro.units import format_duration


def main() -> None:
    net = build_griphon_testbed(seed=11)
    service = net.service_for("acme-cloud")

    wave = service.request_connection("PREMISES-A", "PREMISES-C", 10)
    sub = service.request_connection("PREMISES-A", "PREMISES-C", 1)
    net.run()
    wave_path = net.inventory.lightpaths[wave.lightpath_ids[0]].path
    print(f"wavelength connection up on {' - '.join(wave_path)}")
    print(f"sub-wavelength circuit up ({sub.kind.value})")
    print()

    # Cut the first span of the wavelength path (a backhoe finds the
    # conduit).  The controller reacts on its own.
    a, b = wave_path[0], wave_path[1]
    print(f"*** fiber cut on {a} = {b} ***")
    net.controller.cut_link(a, b)
    print(render_fault_panel(service))
    net.run()
    print()
    print("after automated restoration:")
    print(f"  wavelength outage: {format_duration(wave.total_outage_s)}")
    print(f"  sub-wavelength outage: {format_duration(sub.total_outage_s)}")
    new_path = net.inventory.lightpaths[wave.lightpath_ids[0]].path
    print(f"  wavelength restored on {' - '.join(new_path)}")
    print(render_fault_panel(service))
    print()

    # The cable is spliced; revert to the shorter original path using
    # bridge-and-roll (the 'reversion' use of §2.2) with a ~50 ms hit.
    net.controller.repair_link(a, b)
    outage_before = wave.total_outage_s
    summary = {}
    net.controller.bridge_and_roll(
        wave.connection_id, on_done=summary.update
    )
    net.run()
    print(f"repair + reversion via bridge-and-roll:")
    print(f"  bridge built in {format_duration(summary['bridge_s'])} (hitless)")
    print(f"  roll hit: {format_duration(summary['hit_s'])}")
    print(f"  now on {' - '.join(summary['new_path'])}")
    print(
        "  total additional outage during reversion: "
        f"{format_duration(wave.total_outage_s - outage_before)}"
    )


if __name__ == "__main__":
    main()
